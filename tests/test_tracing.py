"""In-pause span tracing: recorder, Chrome export, attribution, CLI.

The invariants under test, in order of importance:

* **Zero overhead when off** — a VM built without ``tracing=True`` has no
  span tracer anywhere a hot path could reach, and the collector's span
  helper returns a module-level no-op singleton (no per-call allocation).
* **Counters equal spans** — :class:`~repro.gc.stats.PhaseTimer` feeds the
  same two ``perf_counter`` readings to the ``GcStats`` accumulator and the
  span begin/end, so summing span durations reproduces the timer fields
  bit-for-bit.
* **Spans observe, never change** — deterministic work counters are
  identical with tracing on and off, on every collector.
* **The export conforms** — Chrome ``trace_event`` JSON with balanced B/E
  pairs, monotonic timestamps, and pid/tid on every event, so Perfetto
  loads it.
"""

from __future__ import annotations

import json

import pytest

from repro.__main__ import main
from repro.gc import base as gc_base
from repro.gc.stats import GcStats, PhaseTimer
from repro.runtime.vm import VirtualMachine
from repro.tracing import (
    MARK_ATTRIBUTION_UNTAGGED,
    TRACE_SCHEMA,
    SpanTracer,
    aggregate_spans,
    chrome_trace_events,
    collapsed_stacks,
    piggyback_report,
    render_piggyback,
    render_span_table,
    trace_payload,
    validate_chrome_trace,
    write_chrome_trace,
    write_flamegraph,
)
from repro.workloads.jbb import JbbConfig, run_pseudojbb

#: Every (collector, sweep_mode) combination with a distinct code path.
CONFIGS = [
    ("marksweep", "eager"),
    ("marksweep", "lazy"),
    ("generational", "eager"),
    ("generational", "lazy"),
    ("semispace", None),
]


def _traced_vm(collector: str, sweep_mode, tracing=True, **kwargs) -> VirtualMachine:
    if sweep_mode is not None:
        kwargs["sweep_mode"] = sweep_mode
    return VirtualMachine(
        heap_bytes=1 << 20, collector=collector, tracing=tracing, **kwargs
    )


def _run_workload(vm: VirtualMachine) -> None:
    run_pseudojbb(
        vm,
        JbbConfig(
            iterations=2,
            transactions_per_iteration=150,
            assert_dead_orders=True,
            gc_per_iteration=True,
        ),
    )
    vm.gc("test: final collection")


class TestSpanTracer:
    def test_begin_end_pairs(self):
        tracer = SpanTracer()
        with tracer.span("collect", kind="full"):
            with tracer.span("pause"):
                pass
        assert tracer.spans_begun == tracer.spans_ended == 2
        assert tracer.open_depth == 0
        phs = [e[0] for e in tracer.events]
        assert phs == ["B", "B", "E", "E"]

    def test_instants_and_counters(self):
        tracer = SpanTracer()
        tracer.instant("assertion_armed", cat="assertion", site="here")
        tracer.counter("sweep_debt", chunks=3)
        phs = {e[0] for e in tracer.events}
        assert phs == {"i", "C"}

    def test_snapshot_events_is_a_copy(self):
        tracer = SpanTracer()
        tracer.instant("x")
        snap = tracer.snapshot_events()
        tracer.instant("y")
        assert len(snap) == 1


class TestZeroOverheadWhenOff:
    def test_off_by_default(self):
        vm = VirtualMachine(heap_bytes=1 << 20)
        assert vm.span_tracer is None
        assert vm.collector.span_tracer is None

    @pytest.mark.parametrize("collector,sweep_mode", CONFIGS)
    def test_no_span_objects_allocated_when_disabled(self, collector, sweep_mode):
        vm = _traced_vm(collector, sweep_mode, tracing=False)
        # The disabled span helper is one attribute load + an identity
        # return of the module singleton: nothing is allocated per call.
        span = vm.collector._span("collect", kind="full")
        assert span is gc_base._NOOP_SPAN
        _run_workload(vm)
        assert vm.stats.collections > 0
        assert vm.span_tracer is None

    def test_phase_timer_without_spans_matches_legacy(self):
        stats = GcStats()
        with PhaseTimer(stats, "gc_seconds"):
            pass
        assert stats.gc_seconds > 0.0


class TestCounterIdentity:
    @pytest.mark.parametrize("collector,sweep_mode", CONFIGS)
    def test_tracing_never_changes_collector_work(self, collector, sweep_mode):
        seen = {}
        for tracing in (False, True):
            vm = _traced_vm(collector, sweep_mode, tracing=tracing)
            _run_workload(vm)
            vm.collector.sweep_all()
            s = vm.stats
            seen[tracing] = (
                s.collections,
                s.objects_traced,
                s.edges_traced,
                s.objects_freed,
                s.bytes_freed,
            )
        assert seen[False] == seen[True]


class TestTimerSpanUnification:
    """sum(span durations) must equal the GcStats timers *exactly* —
    PhaseTimer hands the same two clock readings to both sides."""

    SPAN_TO_TIMER = {
        "pause": "gc_seconds",
        "mark": "mark_seconds",
        "sweep": "sweep_seconds",
        "lazy_sweep_slice": "lazy_sweep_seconds",
        "ownership_phase": "ownership_phase_seconds",
    }

    @pytest.mark.parametrize("collector,sweep_mode", CONFIGS)
    def test_span_sums_equal_timers(self, collector, sweep_mode):
        vm = _traced_vm(collector, sweep_mode)
        _run_workload(vm)
        vm.collector.sweep_all()
        totals: dict[str, float] = {}
        stack = []
        for event in vm.span_tracer.events:
            if event[0] == "B":
                stack.append((event[1], event[3]))
            elif event[0] == "E":
                name, begin_ts = stack.pop()
                totals[name] = totals.get(name, 0.0) + (event[2] - begin_ts)
        assert not stack
        for span_name, timer_attr in self.SPAN_TO_TIMER.items():
            timer_value = getattr(vm.stats, timer_attr)
            span_sum = totals.get(span_name, 0.0)
            # Exact float equality on purpose: identical readings summed
            # in identical order.  Any drift means a phase bypassed the
            # unified PhaseTimer.
            assert span_sum == timer_value, (span_name, span_sum, timer_value)


class TestNestingInvariants:
    #: Allowed parents per span name (None = top level).
    ALLOWED_PARENTS = {
        "collect": {None},
        "prologue": {"collect"},
        "pause": {"collect"},
        "ownership_phase": {"pause"},
        "mark": {"pause"},
        "root_scan": {"mark"},
        "mark_drain": {"mark"},
        "sweep": {"collect", "prologue", "pause", None},
        "lazy_sweep_slice": {"sweep"},
        "snapshot_serialize": {"collect", None},
    }

    @pytest.mark.parametrize("collector,sweep_mode", CONFIGS)
    def test_span_parents(self, collector, sweep_mode):
        vm = _traced_vm(collector, sweep_mode)
        _run_workload(vm)
        vm.collector.sweep_all()
        stack: list[str] = []
        seen: set[str] = set()
        for event in vm.span_tracer.events:
            if event[0] == "B":
                name = event[1]
                parent = stack[-1] if stack else None
                allowed = self.ALLOWED_PARENTS.get(name)
                assert allowed is not None, f"unknown span {name!r}"
                assert parent in allowed, (name, parent)
                stack.append(name)
                seen.add(name)
            elif event[0] == "E":
                assert stack, "unbalanced end"
                assert event[1] == stack.pop()
        assert not stack
        assert {"collect", "pause", "mark", "root_scan", "mark_drain"} <= seen

    def test_minor_collections_get_minor_kind(self):
        vm = _traced_vm("generational", "eager")
        _run_workload(vm)
        kinds = {
            e[4].get("kind")
            for e in vm.span_tracer.events
            if e[0] == "B" and e[1] == "collect" and e[4]
        }
        assert "minor" in kinds or "full" in kinds
        # A minor collect span must never contain another collect span.
        depth = 0
        for event in vm.span_tracer.events:
            if event[0] == "B" and event[1] == "collect":
                assert depth == 0, "nested collect spans"
                depth += 1
            elif event[0] == "E" and event[1] == "collect":
                depth -= 1


class TestChromeExport:
    @pytest.mark.parametrize("collector,sweep_mode", CONFIGS)
    def test_schema_conformance(self, collector, sweep_mode, tmp_path):
        vm = _traced_vm(collector, sweep_mode)
        _run_workload(vm)
        path = tmp_path / "trace.json"
        summary = write_chrome_trace(vm.span_tracer, str(path), meta={"w": "test"})
        assert summary["file_bytes"] > 0
        problems = validate_chrome_trace(str(path))
        assert problems == []
        payload = json.loads(path.read_text())
        assert payload["otherData"]["schema"] == TRACE_SCHEMA
        assert payload["otherData"]["w"] == "test"
        events = payload["traceEvents"]
        assert all("pid" in e and "tid" in e for e in events)
        metadata = [e for e in events if e["ph"] == "M"]
        assert {e["name"] for e in metadata} >= {"process_name", "thread_name"}

    def test_timestamps_rebased_and_monotonic(self):
        vm = _traced_vm("marksweep", "eager")
        _run_workload(vm)
        events = chrome_trace_events(vm.span_tracer)
        timed = [e for e in events if e["ph"] != "M"]
        assert timed[0]["ts"] >= 0.0
        assert all(a["ts"] <= b["ts"] for a, b in zip(timed, timed[1:]))

    def test_validator_catches_unbalanced_events(self):
        payload = {
            "traceEvents": [
                {"name": "x", "ph": "B", "ts": 0, "pid": 1, "tid": 1},
            ],
            "displayTimeUnit": "ms",
        }
        assert validate_chrome_trace(payload)

    def test_validator_catches_nonmonotonic_ts(self):
        payload = {
            "traceEvents": [
                {"name": "x", "ph": "B", "ts": 5, "pid": 1, "tid": 1},
                {"name": "x", "ph": "E", "ts": 1, "pid": 1, "tid": 1},
            ],
            "displayTimeUnit": "ms",
        }
        assert validate_chrome_trace(payload)


class TestAssertionLifecycleInstants:
    def test_register_armed_checked_violated(self):
        vm = VirtualMachine(heap_bytes=1 << 20, tracing=True)
        from repro.heap.object_model import FieldKind

        node = vm.define_class("Node", [("next", FieldKind.REF)])
        with vm.scope():
            keep = vm.new(node)
            vm.statics.set_ref("keep", keep.address)
            vm.assertions.assert_dead(keep, site="test: still rooted")
        vm.gc("test: check assertions")
        instants = {
            e[1] for e in vm.span_tracer.events if e[0] == "i" and e[2] == "assertion"
        }
        assert {"assertion_register", "assertion_armed",
                "assertion_checked", "assertion_violated"} <= instants

    def test_satisfied_assertion_has_no_violation_instant(self):
        vm = VirtualMachine(heap_bytes=1 << 20, tracing=True)
        from repro.heap.object_model import FieldKind

        node = vm.define_class("Node", [("next", FieldKind.REF)])
        with vm.scope():
            doomed = vm.new(node)
            vm.assertions.assert_dead(doomed, site="test: truly dead")
        vm.gc("test: check assertions")
        instants = [e[1] for e in vm.span_tracer.events if e[0] == "i"]
        assert "assertion_checked" in instants
        assert "assertion_violated" not in instants


class TestMarkAttributionAndFlame:
    def _attributed_vm(self) -> VirtualMachine:
        vm = VirtualMachine(
            heap_bytes=1 << 20, tracing=SpanTracer(attribute_marks=True)
        )
        _run_workload(vm)
        return vm

    def test_attribution_keyed_by_type_and_site(self):
        vm = self._attributed_vm()
        attribution = vm.span_tracer.mark_attribution
        assert attribution, "no mark work attributed"
        for (type_name, site), (objects, nbytes) in attribution.items():
            assert isinstance(type_name, str) and type_name
            assert site == MARK_ATTRIBUTION_UNTAGGED or isinstance(site, str)
            assert objects > 0 and nbytes > 0

    def test_collapsed_stacks_format(self, tmp_path):
        vm = self._attributed_vm()
        stacks = collapsed_stacks(vm.span_tracer)
        assert stacks
        for line in stacks:
            frames, _, value = line.rpartition(" ")
            assert frames.startswith("collect;mark_drain;")
            assert int(value) > 0
        by_objects = collapsed_stacks(vm.span_tracer, weight="objects")
        assert len(by_objects) == len(stacks)
        out = tmp_path / "mark.folded"
        summary = write_flamegraph(vm.span_tracer, str(out))
        assert summary["stacks"] == len(stacks)
        assert out.read_text().count("\n") == len(stacks)

    def test_bad_weight_rejected(self):
        with pytest.raises(ValueError):
            collapsed_stacks(SpanTracer(), weight="seconds")

    def test_attribution_off_by_default(self):
        vm = _traced_vm("marksweep", "eager")
        _run_workload(vm)
        assert vm.span_tracer.mark_attribution == {}


class TestAggregationAndReport:
    def test_aggregate_totals_and_self_times(self):
        vm = _traced_vm("marksweep", "lazy")
        _run_workload(vm)
        vm.collector.sweep_all()
        agg = aggregate_spans(vm.span_tracer.events)
        for row in agg.values():
            assert row["self_s"] <= row["total_s"] + 1e-12
            assert row["max_s"] <= row["total_s"] + 1e-12
        # Children are contained in the parent's total.
        assert agg["root_scan"]["total_s"] + agg["mark_drain"]["total_s"] <= (
            agg["mark"]["total_s"] + 1e-9
        )
        table = render_span_table(agg)
        assert "mark_drain" in table and "span" in table

    def test_aggregate_tolerates_live_recording(self):
        tracer = SpanTracer()
        tracer.begin("collect")
        tracer.begin("pause")
        tracer.end()
        agg = aggregate_spans(tracer.snapshot_events())
        assert "pause" in agg and "collect" not in agg

    def test_piggyback_report_decomposition(self):
        vm = VirtualMachine(heap_bytes=64 << 10, tracing=True)
        _run_workload(vm)
        report = piggyback_report(vm)
        components = report["components"]
        assert set(components) == {
            "plain_trace", "path_bookkeeping", "inline_header_checks", "other",
        }
        pct_sum = sum(c["pct_of_mark"] for c in components.values())
        assert pct_sum == pytest.approx(100.0, abs=0.5)
        seconds_sum = sum(c["seconds"] for c in components.values())
        assert seconds_sum == pytest.approx(report["mark_seconds"], rel=1e-6)
        rendered = render_piggyback(report)
        assert "mark_drain attribution" in rendered
        assert "%" in rendered

    def test_piggyback_replay_is_read_only(self):
        vm = VirtualMachine(heap_bytes=64 << 10, tracing=True)
        _run_workload(vm)
        vm.collector.sweep_all()
        before = vm.stats.snapshot()["counters"]
        live_before = len(vm.heap)
        piggyback_report(vm)
        assert vm.stats.snapshot()["counters"] == before
        assert len(vm.heap) == live_before
        from repro.gc.verify import verify_heap

        assert verify_heap(vm, raise_on_error=False) == []


class TestLazySliceTelemetry:
    def test_slice_latency_recorded(self):
        vm = VirtualMachine(heap_bytes=1 << 20, sweep_mode="lazy")
        _run_workload(vm)
        vm.collector.sweep_all()
        summary = vm.telemetry.summary()
        slices = summary["lazy_sweep_slices"]
        assert slices["chunks_swept"] > 0
        assert slices["latency_seconds"]["count"] > 0
        assert "lazy sweep" in vm.telemetry.render()

    def test_eager_mode_records_no_slices(self):
        vm = VirtualMachine(heap_bytes=1 << 20, sweep_mode="eager")
        _run_workload(vm)
        assert vm.telemetry.summary()["lazy_sweep_slices"]["chunks_swept"] == 0


class TestCliTrace:
    def test_trace_run_lusearch(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        flame = tmp_path / "mark.folded"
        rc = main([
            "trace", "run", "--workload", "lusearch",
            "--out", str(out), "--flame", str(flame),
        ])
        assert rc == 0
        assert validate_chrome_trace(str(out)) == []
        assert flame.read_text().strip()
        assert "Perfetto" in capsys.readouterr().out or out.exists()

    def test_trace_run_swapleak(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        rc = main(["trace", "run", "--workload", "swapleak", "--out", str(out)])
        assert rc == 0
        assert validate_chrome_trace(str(out)) == []
        assert "swapleak" in capsys.readouterr().out

    def test_trace_run_unknown_workload(self, tmp_path, capsys):
        rc = main([
            "trace", "run", "--workload", "nope",
            "--out", str(tmp_path / "t.json"),
        ])
        assert rc == 2
        assert "unknown workload" in capsys.readouterr().out

    def test_trace_report_prints_attribution(self, capsys):
        rc = main(["trace", "report", "--workload", "pseudojbb", "--assertions"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "mark_drain attribution" in out
        assert "%" in out
        assert "ownership phase" in out

    def test_top_fixed_frames(self, capsys):
        rc = main([
            "top", "--workload", "pseudojbb",
            "--interval", "0.01", "--frames", "2",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "repro top" in out
        assert "pauses:" in out
        assert "hottest phases" in out
