"""The virtual machine facade: wiring heap, collector, threads, assertions.

A :class:`VirtualMachine` is the unit everything else composes around.  The
three configurations the paper benchmarks map directly onto its
constructor:

* **Base** — ``VirtualMachine(assertions=False)``: no assertion engine, no
  path tracking; the collector's hot loops contain no assertion code.
* **Infrastructure** — ``VirtualMachine(assertions=True)`` with no
  assertions registered: every header-bit check and the path-tracking
  worklist are active, but there is nothing to find.
* **WithAssertions** — same VM with assertions registered through
  ``vm.assertions``.

Example::

    vm = VirtualMachine(heap_bytes=1 << 20)
    node = vm.define_class("Node", [("next", FieldKind.REF), ("value", FieldKind.INT)])
    with vm.scope():
        a = vm.new(node)
        vm.statics.set_ref("head", a.address)
        vm.assertions.assert_dead(a, site="demo.py:12")
    vm.gc()                       # a is still reachable from the static
    print(vm.assertions.violations.lines[0])
"""

from __future__ import annotations

import contextlib
from typing import TYPE_CHECKING, Iterator, Optional, Sequence, Union

from repro.core.api import GcAssertions
from repro.core.engine import AssertionEngine
from repro.core.reactions import ReactionPolicy
from repro.errors import RuntimeFault
from repro.gc.base import Collector
from repro.gc.generational import GenerationalCollector
from repro.gc.marksweep import MarkSweepCollector
from repro.gc.semispace import SemiSpaceCollector
from repro.heap.heap import ObjectHeap
from repro.heap.layout import NULL
from repro.heap.object_model import ClassDescriptor, FieldKind, HeapObject
from repro.runtime.classes import ClassRegistry
from repro.runtime.handles import Handle, HandleScope
from repro.runtime.threads import MutatorThread, StaticRoots
from repro.telemetry import Telemetry
from repro.tracing.spans import SpanTracer

if TYPE_CHECKING:
    from repro.monitor.timeseries import MonitorHub

#: Default heap budget: generous for unit tests, overridden by benchmarks
#: (which size heaps at 2x the workload minimum, like the paper).
DEFAULT_HEAP_BYTES = 16 * 1024 * 1024

_COLLECTORS = {
    "marksweep": MarkSweepCollector,
    "semispace": SemiSpaceCollector,
    "generational": GenerationalCollector,
}

FieldSpec = Sequence[tuple[str, Union[FieldKind, str]]]


class VirtualMachine:
    """A managed runtime with a tracing collector and GC assertions."""

    def __init__(
        self,
        heap_bytes: int = DEFAULT_HEAP_BYTES,
        collector: Union[str, Collector] = "marksweep",
        assertions: bool = True,
        track_paths: Optional[bool] = None,
        policy: Optional[ReactionPolicy] = None,
        ownership_mode: str = "two-phase",
        nursery_fraction: Optional[float] = None,
        sweep_mode: Optional[str] = None,
        telemetry: Union[bool, Telemetry] = True,
        tracing: Union[bool, "SpanTracer"] = False,
        hardened: bool = False,
        max_heap_bytes: Optional[int] = None,
        monitor: Union[bool, "MonitorHub"] = False,
        gc_workers: Optional[int] = None,
        paranoid: bool = False,
    ):
        self.classes = ClassRegistry()
        self.engine: Optional[AssertionEngine] = (
            AssertionEngine(self.classes, policy, ownership_mode) if assertions else None
        )
        if isinstance(collector, Collector):
            self.collector = collector
            if self.engine is not None and collector.engine is None:
                # A pre-built collector adopts this VM's assertion engine.
                collector.engine = self.engine
                collector.track_paths = True if track_paths is None else track_paths
        else:
            try:
                factory = _COLLECTORS[collector]
            except KeyError:
                raise RuntimeFault(
                    f"unknown collector {collector!r}; pick from {sorted(_COLLECTORS)}"
                ) from None
            kwargs = {}
            if hardened:
                # Fault tolerance opt-in: integrity sentinel, quarantine,
                # engine degradation, OOM recovery (see DESIGN.md).
                kwargs["hardened"] = True
            if max_heap_bytes is not None:
                kwargs["max_heap_bytes"] = max_heap_bytes
            if collector == "generational" and nursery_fraction is not None:
                kwargs["nursery_fraction"] = nursery_fraction
            if sweep_mode is not None:
                if collector not in ("marksweep", "generational"):
                    raise RuntimeFault(
                        f"sweep_mode is a mark-sweep option; {collector!r} does not sweep"
                    )
                kwargs["sweep_mode"] = sweep_mode
            if gc_workers is not None:
                if collector not in ("marksweep", "generational"):
                    raise RuntimeFault(
                        f"gc_workers is a mark-sweep option; {collector!r} "
                        "has no parallel mark phase"
                    )
                if gc_workers < 0:
                    raise RuntimeFault(f"gc_workers must be >= 0, got {gc_workers}")
                # 0 (or None) keeps the legacy sequential path; >= 1 builds
                # the zone-sharded heap and routes full-GC mark drains
                # through the parallel coordinator (workers=1 runs the same
                # coordinator inline — the counter-identity baseline).
                kwargs["gc_workers"] = gc_workers
            self.collector = factory(
                heap_bytes, engine=self.engine, track_paths=track_paths, **kwargs
            )
        self.collector.attach(self)
        if paranoid:
            # Paranoid wellformedness walks around every collection (PR 10).
            # Set post-attach so it works for pre-built collector instances
            # too; off (the default) costs one falsy attribute test per GC.
            self.collector.paranoid = True
        if self.engine is not None:
            self.engine.vm = self

        #: Telemetry hub (``None`` when built with ``telemetry=False`` — the
        #: zero-overhead disabled mode; the collector emit path then reduces
        #: to one ``is None`` test).
        if isinstance(telemetry, Telemetry):
            self.telemetry: Optional[Telemetry] = telemetry
        else:
            self.telemetry = Telemetry() if telemetry else None
        self.collector.telemetry = self.telemetry

        #: Span recorder (``None`` when built with ``tracing=False``, the
        #: default — then no span object is ever allocated anywhere; see
        #: :mod:`repro.tracing.spans` for the zero-overhead contract).
        if isinstance(tracing, SpanTracer):
            self.span_tracer: Optional[SpanTracer] = tracing
        else:
            self.span_tracer = SpanTracer() if tracing else None
        self.collector.span_tracer = self.span_tracer

        #: Continuous-monitoring hub (``None`` when built with
        #: ``monitor=False``, the default — then no monitor object exists
        #: anywhere and the telemetry fan-out has no extra sink; see
        #: :mod:`repro.monitor` for the zero-overhead contract).
        #: ``monitor=True`` arms a hub with the stock SLO catalog; pass a
        #: pre-built :class:`~repro.monitor.timeseries.MonitorHub` to
        #: choose objectives.  Requires telemetry (lazy import keeps the
        #: monitor package off the common construction path).
        self.monitor: Optional["MonitorHub"] = None
        if monitor:
            from repro.monitor.slo import default_slos
            from repro.monitor.timeseries import MonitorHub as _Hub

            hub = monitor if isinstance(monitor, _Hub) else _Hub(default_slos())
            hub.attach(self)

        self.statics = StaticRoots()
        self.threads: list[MutatorThread] = []
        self.main_thread = self.new_thread("main")
        self._current = self.main_thread
        self.assertions: Optional[GcAssertions] = (
            GcAssertions(self) if self.engine is not None else None
        )
        #: Callables invoked after every collection as ``observer(vm, freed)``
        #: — used by profiling baselines (Cork-style growth, staleness).
        self.gc_observers: list = []
        #: Optional read-barrier hook ``hook(HeapObject)`` invoked on handle
        #: field reads; installed by the staleness baseline, None otherwise.
        self.access_hook = None
        #: Snapshot policy (see :mod:`repro.snapshot.capture`); None means
        #: the capture machinery is completely inert.
        self.snapshot_policy = None
        #: Service attachment points, keyed by fault kind ("session-kill",
        #: "conn-drop").  A :class:`~repro.service.session.TenantSession`
        #: registers its hooks here; the fault injector's session faults
        #: look them up and stay inert on VMs with no session attached.
        self.service_hooks: dict = {}
        #: Current allocation-site tag; stamped onto objects allocated while
        #: an :meth:`alloc_site` scope is open, None otherwise.
        self._alloc_site: Optional[str] = None

    # -- properties ---------------------------------------------------------------------

    @property
    def heap(self) -> ObjectHeap:
        return self.collector.heap

    @property
    def stats(self):
        return self.collector.stats

    @property
    def current_thread(self) -> MutatorThread:
        return self._current

    # -- threads ----------------------------------------------------------------------

    def new_thread(self, name: Optional[str] = None) -> MutatorThread:
        thread = MutatorThread(len(self.threads), name or f"thread-{len(self.threads)}")
        self.threads.append(thread)
        return thread

    @contextlib.contextmanager
    def on_thread(self, thread: MutatorThread) -> Iterator[MutatorThread]:
        """Temporarily make ``thread`` the current (allocating) thread."""
        previous, self._current = self._current, thread
        try:
            yield thread
        finally:
            self._current = previous

    @contextlib.contextmanager
    def scope(
        self,
        label: str = "scope",
        thread: Optional[MutatorThread] = None,
    ) -> Iterator[HandleScope]:
        """Open a handle scope: allocations inside stay rooted until exit."""
        thread = thread or self._current
        scope = HandleScope(label)
        thread.scopes.append(scope)
        try:
            yield scope
        finally:
            thread.scopes.remove(scope)

    # -- classes -----------------------------------------------------------------------

    def define_class(
        self,
        name: str,
        fields: FieldSpec = (),
        superclass: Optional[Union[ClassDescriptor, str]] = None,
    ) -> ClassDescriptor:
        normalized = [
            (fname, kind if isinstance(kind, FieldKind) else FieldKind(kind))
            for fname, kind in fields
        ]
        return self.classes.define(name, normalized, superclass)

    def array_class(self, element: Union[ClassDescriptor, FieldKind, str]) -> ClassDescriptor:
        if isinstance(element, str):
            element = (
                FieldKind(element)
                if element in FieldKind._value2member_map_
                else self.classes.get(element)
            )
        return self.classes.array_of(element)

    # -- allocation ----------------------------------------------------------------------

    def new(
        self,
        cls: Union[ClassDescriptor, str],
        thread: Optional[MutatorThread] = None,
        **field_values,
    ) -> Handle:
        """Allocate an instance; keyword arguments initialize fields.

        The new object is registered in the allocating thread's current
        handle scope (if any) and in its region queue (if a region is
        active, per §2.3.2).
        """
        if isinstance(cls, str):
            cls = self.classes.get(cls)
        if cls.is_array:
            raise RuntimeFault(f"use new_array() to allocate array class {cls.name}")
        thread = thread or self._current
        obj = self.collector.allocate(cls)
        if self._alloc_site is not None:
            obj.alloc_site = self._alloc_site
        thread.note_allocation(obj.address)
        if thread.scopes:
            thread.scopes[-1].register(obj.address)
        handle = Handle(self, obj)
        for fname, value in field_values.items():
            handle[fname] = value
        return handle

    def new_array(
        self,
        element: Union[ClassDescriptor, FieldKind, str],
        length: int,
        thread: Optional[MutatorThread] = None,
    ) -> Handle:
        if length < 0:
            raise RuntimeFault(f"array length must be >= 0, got {length}")
        cls = self.array_class(element)
        thread = thread or self._current
        obj = self.collector.allocate(cls, length)
        if self._alloc_site is not None:
            obj.alloc_site = self._alloc_site
        thread.note_allocation(obj.address)
        if thread.scopes:
            thread.scopes[-1].register(obj.address)
        return Handle(self, obj)

    @contextlib.contextmanager
    def alloc_site(self, site: str) -> Iterator[None]:
        """Tag every allocation in this scope with ``site``.

        The tag surfaces in violation reports ("Allocated: epoch N at
        <site>") and in heap snapshots, making both actionable without a
        debugger.  Scopes nest; the innermost tag wins.
        """
        previous, self._alloc_site = self._alloc_site, site
        try:
            yield
        finally:
            self._alloc_site = previous

    def handle(self, target: Union[HeapObject, int]) -> Handle:
        if isinstance(target, HeapObject):
            return Handle(self, target)
        return Handle(self, self.heap.get(target))

    # -- reference stores (write barrier) ----------------------------------------------------

    def write_ref(self, obj: HeapObject, slot: int, address: int) -> None:
        self.collector.write_barrier(obj, address)
        obj.slots[slot] = address

    # -- collection ------------------------------------------------------------------------

    def gc(self, reason: str = "explicit") -> None:
        """Trigger a full collection (checks every registered assertion)."""
        self.collector.collect(reason)

    def minor_gc(self, reason: str = "explicit-minor") -> None:
        """Trigger a minor collection (generational collector only)."""
        minor = getattr(self.collector, "collect_minor", None)
        if minor is None:
            raise RuntimeFault(f"{self.collector.name} has no minor collections")
        minor(reason)

    # -- heap snapshots -----------------------------------------------------------------

    def install_snapshot_policy(self, policy) -> None:
        """Wire a :class:`repro.snapshot.capture.SnapshotPolicy` into this
        VM: the collector consults it when building tracers, and its
        violation trigger observes completed collections."""
        self.snapshot_policy = policy
        self.collector.snapshot_policy = policy
        policy.vm = self
        self.gc_observers.append(policy._after_gc)

    def capture_snapshot(self, path: str, trigger: str = "manual") -> dict:
        """Write a heap snapshot *now* (no collection, no policy needed)."""
        from repro.snapshot.capture import capture_snapshot

        return capture_snapshot(self, path, trigger=trigger)

    # -- collector callbacks -------------------------------------------------------------------

    def root_entries(self) -> Iterator[tuple[str, int]]:
        yield from self.statics.root_entries()
        for thread in self.threads:
            yield from thread.root_entries()

    def apply_forwarding(self, fwd: dict[int, int]) -> None:
        self.statics.apply_forwarding(fwd)
        for thread in self.threads:
            thread.apply_forwarding(fwd)

    def purge_dead_metadata(self, freed: set[int]) -> None:
        """Drop per-thread metadata (region queues) for freed addresses.

        Called by collectors *before* any freed address can be recycled.
        """
        for thread in self.threads:
            thread.purge_freed(freed)

    def on_gc_complete(self, freed: set[int]) -> None:
        self.purge_dead_metadata(freed)
        for observer in self.gc_observers:
            observer(self, freed)

    def null_roots(self, victims: set[int]) -> None:
        self.statics.null_out(victims)
        for thread in self.threads:
            thread.null_out(victims)

    # -- diagnostics --------------------------------------------------------------------------

    def describe(self) -> str:
        return (
            f"VM[{self.collector.describe()}, {len(self.threads)} threads, "
            f"{self.heap.stats.objects_live} objects live]"
        )

    def violation_lines(self) -> list[str]:
        if self.engine is None:
            return []
        return list(self.engine.log.lines)
