"""The §2.7 path-tracking worklist: full root-to-object paths."""

import pytest

from repro.heap.object_model import FieldKind
from repro.runtime.vm import VirtualMachine
from tests.conftest import build_chain, make_node_class


class TestPathReporting:
    def test_path_runs_root_to_object(self, vm, node_class):
        nodes = build_chain(vm, node_class, 4)
        vm.assertions.assert_dead(nodes[3], site="path-test")
        vm.gc()
        violation = vm.engine.log.violations[0]
        assert violation.path.type_names() == ["Node"] * 4
        assert "static 'head'" in violation.path.root_description

    def test_path_identifies_frame_root(self, vm, node_class):
        frame = vm.current_thread.push_frame("holder_method")
        with vm.scope():
            node = vm.new(node_class)
            frame.set_ref("keeper", node.address)
        vm.assertions.assert_dead(node, site="frame-path")
        vm.gc()
        violation = vm.engine.log.violations[0]
        assert "keeper" in violation.path.root_description
        assert "holder_method" in violation.path.root_description

    def test_path_entries_are_instances_not_just_types(self, vm, node_class):
        nodes = build_chain(vm, node_class, 3)
        vm.assertions.assert_dead(nodes[2], site="instances")
        vm.gc()
        entries = vm.engine.log.violations[0].path.entries
        addresses = [e.address for e in entries]
        assert addresses == [n.obj.address for n in nodes]
        hashes = {e.identity_hash for e in entries}
        assert len(hashes) == 3  # distinct instances

    def test_path_through_arrays_names_array_types(self, vm, node_class):
        with vm.scope():
            arr = vm.new_array(node_class, 3)
            target = vm.new(node_class)
            arr[1] = target
            vm.statics.set_ref("arr", arr.address)
            vm.assertions.assert_dead(target, site="array-path")
        vm.gc()
        names = vm.engine.log.violations[0].path.type_names()
        assert names == ["Node[]", "Node"]

    def test_direct_root_reference_path(self, vm, node_class):
        with vm.scope():
            node = vm.new(node_class)
            vm.statics.set_ref("direct", node.address)
            vm.assertions.assert_dead(node, site="direct")
        vm.gc()
        violation = vm.engine.log.violations[0]
        assert violation.path.type_names() == ["Node"]
        assert "direct" in violation.path.root_description

    def test_figure1_rendering_format(self, vm, node_class):
        nodes = build_chain(vm, node_class, 2)
        vm.assertions.assert_dead(nodes[1], site="fmt")
        vm.gc()
        text = vm.engine.log.violations[0].render()
        assert text.startswith("Warning: an object that was asserted dead is reachable.")
        assert "Type: Node" in text
        assert "Path to object:" in text
        assert "->" in text

    def test_deep_path_complete(self, vm, node_class):
        nodes = build_chain(vm, node_class, 50)
        vm.assertions.assert_dead(nodes[-1], site="deep")
        vm.gc()
        assert len(vm.engine.log.violations[0].path) == 50


class TestPathTrackingToggle:
    def test_disabled_paths_still_detect_violations(self, node_class):
        vm = VirtualMachine(heap_bytes=1 << 20, track_paths=False)
        cls = make_node_class(vm)
        nodes = build_chain(vm, cls, 3)
        vm.assertions.assert_dead(nodes[2], site="no-paths")
        vm.gc()
        assert len(vm.engine.log) == 1
        violation = vm.engine.log.violations[0]
        assert violation.path is None or len(violation.path) <= 1

    def test_tagged_entries_counted_only_when_tracking(self):
        vm_on = VirtualMachine(heap_bytes=1 << 20, track_paths=True)
        cls_on = make_node_class(vm_on)
        build_chain(vm_on, cls_on, 10)
        vm_on.gc()
        assert vm_on.stats.path_entries_tagged >= 10

        vm_off = VirtualMachine(heap_bytes=1 << 20, track_paths=False)
        cls_off = make_node_class(vm_off)
        build_chain(vm_off, cls_off, 10)
        vm_off.gc()
        assert vm_off.stats.path_entries_tagged == 0

    def test_marking_identical_with_and_without_tracking(self):
        results = []
        for track in (True, False):
            vm = VirtualMachine(heap_bytes=1 << 20, track_paths=track)
            cls = make_node_class(vm)
            nodes = build_chain(vm, cls, 20)
            nodes[10]["next"] = None
            vm.gc()
            results.append(vm.heap.stats.objects_live)
        assert results[0] == results[1]


class _PathProbe:
    """Engine stub recording the cheap path API at every first encounter."""

    def __init__(self):
        self.rows = []

    def on_first_encounter(self, obj, tracer, parent):
        cheap = tracer.current_path_addresses(obj.address)
        root_desc, full = tracer.current_path(obj)
        self.rows.append((obj.address, tracer.path_depth(), cheap, full, root_desc))

    def on_repeat_encounter(self, obj, tracer, parent):
        pass


class TestCheapPathApi:
    """current_path_addresses/path_depth: the no-materialization variants."""

    def _trace_with_probe(self, vm):
        from repro.gc.stats import GcStats
        from repro.gc.tracer import Tracer

        probe = _PathProbe()
        tracer = Tracer(vm.heap, GcStats(), probe, track_paths=True)
        tracer.trace(vm.root_entries())
        return probe, tracer

    def test_cheap_addresses_agree_with_full_path(self, vm, node_class):
        nodes = build_chain(vm, node_class, 6)
        probe, _tracer = self._trace_with_probe(vm)
        assert probe.rows, "probe saw no encounters"
        for _address, _depth, cheap, full, _root in probe.rows:
            assert cheap == [obj.address for obj in full]

    def test_deepest_node_path_is_the_chain(self, vm, node_class):
        nodes = build_chain(vm, node_class, 6)
        probe, _tracer = self._trace_with_probe(vm)
        tail = nodes[-1].obj.address
        rows = [row for row in probe.rows if row[0] == tail]
        assert rows[0][2] == [n.obj.address for n in nodes]

    def test_depth_counts_parents_only(self, vm, node_class):
        build_chain(vm, node_class, 4)
        probe, _tracer = self._trace_with_probe(vm)
        for _address, depth, cheap, _full, _root in probe.rows:
            # The tip is appended by current_path_addresses; the worklist
            # holds its (possibly empty) parent chain.
            assert depth in (len(cheap), len(cheap) - 1)

    def test_empty_outside_a_drain(self, vm, node_class):
        build_chain(vm, node_class, 3)
        _probe, tracer = self._trace_with_probe(vm)
        assert tracer.current_path_addresses() == []
        assert tracer.path_depth() == 0

    def test_tracking_disabled_returns_just_the_tip(self, vm, node_class):
        from repro.gc.stats import GcStats
        from repro.gc.tracer import Tracer

        tracer = Tracer(vm.heap, GcStats(), None, track_paths=False)
        assert tracer.current_path_addresses(0x1000) == [0x1000]
        assert tracer.current_path_addresses() == []


class TestBaseConfigurationHasNoInfrastructure:
    def test_base_vm_has_no_engine(self, base_vm):
        assert base_vm.engine is None
        assert base_vm.assertions is None

    def test_base_vm_collects_correctly(self, base_vm):
        cls = make_node_class(base_vm)
        nodes = build_chain(base_vm, cls, 6)
        nodes[2]["next"] = None
        base_vm.gc()
        assert base_vm.heap.stats.objects_live == 3

    def test_base_vm_counts_no_header_checks(self, base_vm):
        cls = make_node_class(base_vm)
        build_chain(base_vm, cls, 6)
        base_vm.gc()
        assert base_vm.stats.header_bit_checks == 0
