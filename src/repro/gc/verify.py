"""Heap integrity verification.

A debugging/testing aid that walks the entire VM state and checks the
invariants every collector must preserve.  Used by the property-based tests
after random mutation/GC sequences, and available to users as
``verify_heap(vm)`` when debugging collector extensions.

Checked invariants:

* every reference slot holds NULL or the address of a live object;
* every root (static, frame local, handle scope) points at a live object;
* no live object carries the MARK, OWNED, or FREED bits between collections;
* object addresses agree with the heap table and are word aligned;
* space accounting covers at least the live bytes;
* assertion-registry addresses (dead sites, unshared sites, owners, ownees)
  all refer to live objects — a stale entry would corrupt checking after
  address reuse;
* region queues only contain live addresses.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import HeapError
from repro.heap import header as hdr
from repro.heap.layout import NULL, is_aligned

if TYPE_CHECKING:
    from repro.runtime.vm import VirtualMachine


class HeapVerificationError(HeapError):
    """Raised when :func:`verify_heap` finds a broken invariant."""


def _fail(problems: list[str], message: str) -> None:
    problems.append(message)


def verify_heap(vm: "VirtualMachine", raise_on_error: bool = True) -> list[str]:
    """Verify all heap/VM invariants; returns the list of problems found."""
    problems: list[str] = []
    heap = vm.heap

    # Lazy sweep modes defer reclamation; finish it so the invariants below
    # (no MARK bits between collections, registry liveness, accounting) are
    # judged against an exact heap.
    vm.collector.sweep_all()

    # -- object table and headers ------------------------------------------------
    for obj in heap:
        if not is_aligned(obj.address):
            _fail(problems, f"{obj!r}: unaligned address")
        if heap.maybe(obj.address) is not obj:
            _fail(problems, f"{obj!r}: table entry mismatch")
        if obj.status & hdr.FREED_BIT:
            _fail(problems, f"{obj!r}: live object carries FREED bit")
        if obj.status & hdr.MARK_BIT:
            _fail(problems, f"{obj!r}: MARK bit set outside a collection")
        if obj.status & hdr.OWNED_BIT:
            _fail(problems, f"{obj!r}: OWNED bit set outside a collection")
        for ref in obj.reference_slots():
            if ref != NULL and not heap.contains(ref):
                _fail(problems, f"{obj!r}: dangling reference {ref:#x}")
        for idx in obj.weak_slot_indices():
            weak = obj.slots[idx]
            if weak != NULL and not heap.contains(weak):
                _fail(problems, f"{obj!r}: dangling weak reference {weak:#x}")

    # -- roots ----------------------------------------------------------------------
    for description, address in vm.root_entries():
        if not heap.contains(address):
            _fail(problems, f"root {description}: dangling address {address:#x}")

    # -- region queues ----------------------------------------------------------------
    for thread in vm.threads:
        for address in thread.region_queue:
            if not heap.contains(address):
                _fail(
                    problems,
                    f"thread {thread.name!r}: region queue holds dead {address:#x}",
                )

    # -- space accounting --------------------------------------------------------------
    live_bytes = heap.live_bytes()
    in_use = vm.collector.bytes_in_use()
    if in_use < live_bytes:
        _fail(
            problems,
            f"space accounting: {in_use} bytes in use < {live_bytes} live bytes",
        )

    # -- assertion registry ---------------------------------------------------------------
    engine = vm.engine
    if engine is not None:
        registry = engine.registry
        for address in registry.dead_sites:
            if not heap.contains(address):
                _fail(problems, f"registry: dead site for dead address {address:#x}")
        for address in registry.unshared_sites:
            if not heap.contains(address):
                _fail(problems, f"registry: unshared site for dead address {address:#x}")
        for owner_address, record in registry.owners.items():
            if not heap.contains(owner_address):
                _fail(problems, f"registry: owner record for dead {owner_address:#x}")
            if record.ownees != sorted(record.ownees):
                _fail(problems, f"registry: ownee array unsorted for {owner_address:#x}")
            for ownee_address in record.ownees:
                if not heap.contains(ownee_address):
                    _fail(
                        problems,
                        f"registry: ownee {ownee_address:#x} of {owner_address:#x} is dead",
                    )
                if registry.ownee_owner.get(ownee_address) != owner_address:
                    _fail(
                        problems,
                        f"registry: reverse index disagrees for {ownee_address:#x}",
                    )
        for ownee_address, owner_address in registry.ownee_owner.items():
            record = registry.owners.get(owner_address)
            if record is None or not record.contains(ownee_address)[0]:
                _fail(
                    problems,
                    f"registry: ownee_owner entry {ownee_address:#x} not in owner record",
                )

    if problems and raise_on_error:
        raise HeapVerificationError(
            f"{len(problems)} heap invariant violation(s):\n  " + "\n  ".join(problems)
        )
    return problems
