"""_209_db workload: healthy runs and the external-cache leak."""

import pytest

from repro.core.reporting import AssertionKind
from repro.runtime.vm import VirtualMachine
from repro.workloads.db import Database, DbConfig, run_db

SMALL = dict(initial_entries=60, operations=300, gc_every=100)


def db_vm():
    return VirtualMachine(heap_bytes=8 << 20)


class TestHealthy:
    def test_paper_assertions_quiet(self):
        vm = db_vm()
        result = run_db(
            vm,
            DbConfig(**SMALL, assert_ownedby_entries=True, assert_dead_on_delete=True),
        )
        assert result.violations == 0
        assert result.adds > 0 and result.deletes > 0 and result.finds > 0

    def test_every_add_asserts_ownership(self):
        vm = db_vm()
        result = run_db(vm, DbConfig(**SMALL, assert_ownedby_entries=True))
        counts = vm.assertions.call_counts()
        assert counts["assert-ownedby"] == result.adds

    def test_every_delete_asserts_dead(self):
        vm = db_vm()
        result = run_db(vm, DbConfig(**SMALL, assert_dead_on_delete=True))
        counts = vm.assertions.call_counts()
        assert counts["assert-dead"] == result.deletes

    def test_final_size_consistent(self):
        vm = db_vm()
        result = run_db(vm, DbConfig(**SMALL))
        assert result.final_size == result.adds - result.deletes

    def test_deterministic(self):
        runs = [run_db(db_vm(), DbConfig(**SMALL, seed=5)) for _ in range(2)]
        assert runs[0] == runs[1]

    def test_sort_orders_entries(self):
        vm = db_vm()
        config = DbConfig(initial_entries=30, operations=0)
        database = Database(vm, config)
        for _ in range(30):
            database.add()
        database.delete()  # perturb
        database.sort()
        ids = [e["id"] for e in database.entries if e is not None]
        assert ids == sorted(ids)

    def test_ownees_purged_as_entries_die(self):
        vm = db_vm()
        run_db(vm, DbConfig(**SMALL, assert_ownedby_entries=True))
        vm.gc()
        # Registered ownees equal the live entries exactly.
        live_entries = sum(1 for o in vm.heap if o.cls.name == "spec.db.Entry")
        assert vm.assertions.live_ownees() == live_entries


class TestExternalCacheLeak:
    """§2.5.2's motivating pattern: container + cache sharing."""

    #: A small key space and find-heavy mix so cache hits (and therefore
    #: leaked entries) occur reliably.
    LEAKY = dict(
        initial_entries=60,
        operations=400,
        key_space=100,
        find_weight=8,
        gc_every=100,
    )

    def test_leak_detected_by_both_assertions(self):
        vm = db_vm()
        result = run_db(
            vm,
            DbConfig(
                **self.LEAKY,
                leak_external_cache=True,
                assert_ownedby_entries=True,
                assert_dead_on_delete=True,
            ),
        )
        assert result.violations > 0
        kinds = {v.kind for v in vm.engine.log}
        assert AssertionKind.DEAD in kinds
        assert AssertionKind.OWNED_BY in kinds

    def test_leak_path_points_at_cache(self):
        vm = db_vm()
        run_db(
            vm,
            DbConfig(
                **self.LEAKY, leak_external_cache=True, assert_ownedby_entries=True
            ),
        )
        owned = vm.engine.log.of_kind(AssertionKind.OWNED_BY)
        assert owned, "cache leak must surface ownership violations"
        assert "foundCache" in owned[0].path.root_description

    def test_no_false_positives_without_deletes(self):
        vm = db_vm()
        run_db(
            vm,
            DbConfig(
                initial_entries=50,
                operations=100,
                add_weight=1,
                delete_weight=0,
                find_weight=5,
                gc_every=50,
                leak_external_cache=True,  # cache exists but nothing deleted
                assert_ownedby_entries=True,
            ),
        )
        assert len(vm.engine.log) == 0
