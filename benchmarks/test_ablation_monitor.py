"""Ablation abl-monitor: the standing cost of the continuous-monitoring hub.

The monitoring layer's acceptance bar: a hub with the full stock SLO
catalog attached must price in at no more than ~5% of GC time over the
same VM running telemetry alone.  The hub is one extra sink on the
per-collection fan-out — time-series appends, one MMU evaluation, and
five SLO probes per collection; nothing per allocation or per traced
object.  Every deterministic work counter must be bit-identical: the hub
observes collections, it must never change them.
"""

from __future__ import annotations

from benchmarks.conftest import trials
from repro.bench.methodology import confidence_interval_90, mean
from repro.monitor import MonitorHub, default_slos
from repro.runtime.vm import VirtualMachine
from repro.workloads.suite import HEAP_BUDGETS
from repro.workloads.synthetic import PROFILES, run_synthetic

PROFILE = "bloat"  # the GC-heaviest suite member, as in abl-tracing

#: Wall-clock bound, with headroom over the ~1.05 acceptance target for
#: interpreter jitter on loaded CI machines.  The counter-identity
#: assertion is the hard gate.
MAX_GC_TIME_RATIO = 1.5


def _run(armed: bool):
    vm = VirtualMachine(
        heap_bytes=HEAP_BUDGETS[PROFILE], assertions=False, telemetry=True
    )
    hub = MonitorHub(default_slos()).attach(vm) if armed else None
    run_synthetic(vm, PROFILES[PROFILE])
    vm.collector.sweep_all()
    if hub is not None:
        assert hub.gc_events_seen == vm.stats.collections
        # A healthy synthetic run must not page: the catalog's alerts are
        # for real incidents, not for the benchmark harness itself.
        assert not [a for a in hub.alerts if a.objective == "no-degradation"]
    return vm.stats.gc_seconds, vm.stats.snapshot()


def test_monitor_hub_overhead(once, figure_report):
    def run():
        armed = [_run(True) for _ in range(trials())]
        plain = [_run(False) for _ in range(trials())]
        return armed, plain

    armed, plain = once(run)
    on_times = [t for t, _s in armed]
    off_times = [t for t, _s in plain]
    ratio = mean(on_times) / mean(off_times)
    figure_report.append(
        "Ablation abl-monitor (SLO-armed monitor hub on/off, GC time on 'bloat'):\n"
        f"  off:   {mean(off_times) * 1e3:.1f} ms ±{confidence_interval_90(off_times) * 1e3:.1f}\n"
        f"  armed: {mean(on_times) * 1e3:.1f} ms ±{confidence_interval_90(on_times) * 1e3:.1f}\n"
        f"  ratio: {ratio:.3f} (target <=1.05, asserted <=1.5 for CI noise)"
    )
    assert ratio < MAX_GC_TIME_RATIO

    # The hub observes collections without changing them: every
    # deterministic work counter is identical whether it is attached or not.
    assert armed[0][1]["counters"] == plain[0][1]["counters"]


def test_monitor_off_leaves_no_trace(once):
    """Without ``monitor=``, the VM carries no monitoring state at all."""

    def run():
        vm = VirtualMachine(
            heap_bytes=HEAP_BUDGETS[PROFILE], assertions=False, telemetry=True
        )
        sinks_before = len(vm.telemetry.sinks)
        run_synthetic(vm, PROFILES[PROFILE])
        return vm, sinks_before

    vm, sinks_before = once(run)
    assert vm.monitor is None
    assert len(vm.telemetry.sinks) == sinks_before  # no hub on the fan-out
