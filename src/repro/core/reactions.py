"""Reaction policies: what the collector does when an assertion triggers.

§2.6 of the paper lists three possible reactions:

* **LOG** — "Log an error, but continue executing."  The default, chosen by
  the paper "so that we retain the semantics of the program without any
  assertions."
* **HALT** — "Log an error and halt.  [...] used for assertions whose
  failure indicates a non-recoverable error."  Modeled by raising
  :class:`~repro.errors.AssertionViolationHalt` once the collection has
  finished (the heap is left consistent).
* **FORCE** — "Force the assertion to be true.  In the case of lifetime
  assertions, the garbage collector can force objects to be reclaimed by
  nulling out all incoming references.  This might allow a program to run
  longer without running out of memory but risks introducing a null pointer
  exception."  Only lifetime (assert-dead) violations are forcible.

The paper's future work asks for "a programmatic interface that would allow
the programmer to test the conditions directly and take action in an
application-specific manner", and notes "it might make sense to support
different actions based on the class of assertion that is violated" —
:class:`ReactionPolicy` supports both: per-kind policies and user handlers
that may override the reaction per violation.
"""

from __future__ import annotations

import enum
from typing import Callable, Optional

from repro.core.reporting import AssertionKind, Violation
from repro.errors import ConfigurationError


class Reaction(enum.Enum):
    LOG = "log"
    HALT = "halt"
    FORCE = "force"

    @property
    def is_forcing(self) -> bool:
        return self is Reaction.FORCE


#: A handler receives the violation and may return a Reaction to override
#: the configured policy for this violation (None keeps the policy).
Handler = Callable[[Violation], Optional[Reaction]]

#: Assertion kinds whose violations can be forced true by reclaiming the
#: object (nulling incoming references).
FORCIBLE_KINDS = frozenset({AssertionKind.DEAD, AssertionKind.ALLDEAD})


class ReactionPolicy:
    """Per-assertion-kind reaction configuration plus programmatic handlers."""

    def __init__(self, default: Reaction = Reaction.LOG):
        self.default = default
        self._per_kind: dict[AssertionKind, Reaction] = {}
        self.handlers: list[Handler] = []

    def set_reaction(self, kind: AssertionKind, reaction: Reaction) -> None:
        if reaction.is_forcing and kind not in FORCIBLE_KINDS:
            raise ConfigurationError(
                f"{kind.value} violations cannot be forced true; only lifetime "
                f"assertions ({', '.join(sorted(k.value for k in FORCIBLE_KINDS))}) can"
            )
        self._per_kind[kind] = reaction

    def set_default(self, reaction: Reaction) -> None:
        if reaction.is_forcing:
            raise ConfigurationError(
                "FORCE cannot be the default reaction; set it per kind"
            )
        self.default = reaction

    def add_handler(self, handler: Handler) -> None:
        """Register a programmatic violation handler (paper §2.6 future work)."""
        self.handlers.append(handler)

    def reaction_for(self, violation: Violation) -> Reaction:
        """Resolve the reaction, letting handlers override the static policy."""
        reaction = self._per_kind.get(violation.kind, self.default)
        for handler in self.handlers:
            override = handler(violation)
            if override is not None:
                if override.is_forcing and violation.kind not in FORCIBLE_KINDS:
                    raise ConfigurationError(
                        f"handler requested FORCE for non-forcible {violation.kind.value}"
                    )
                reaction = override
        return reaction
