"""Property-based longBTree testing against a dict model."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.runtime.vm import VirtualMachine
from repro.workloads.jbb.btree import LongBTree
from tests.conftest import make_node_class

KEYS = st.integers(0, 200)

#: Operation sequences: ("insert", k) / ("remove", k) / ("get", k).
ops_strategy = st.lists(
    st.tuples(st.sampled_from(["insert", "remove", "get"]), KEYS),
    max_size=120,
)


def fresh_tree(degree):
    vm = VirtualMachine(heap_bytes=32 << 20)
    cls = make_node_class(vm)
    tree = LongBTree.new(vm, degree=degree)
    vm.statics.set_ref("tree", tree.handle.address)
    return vm, cls, tree


@given(ops=ops_strategy, degree=st.integers(2, 5))
@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_btree_matches_dict_model(ops, degree):
    vm, cls, tree = fresh_tree(degree)
    model: dict[int, int] = {}
    for op, key in ops:
        if op == "insert":
            with vm.scope():
                inserted = tree.insert(key, vm.new(cls, value=key))
            assert inserted == (key not in model)
            model[key] = key
        elif op == "remove":
            removed = tree.remove(key)
            if key in model:
                assert removed is not None and removed["value"] == key
                del model[key]
            else:
                assert removed is None
        else:
            got = tree.get(key)
            if key in model:
                assert got is not None and got["value"] == key
            else:
                assert got is None
        assert len(tree) == len(model)
    assert list(tree.keys()) == sorted(model)
    tree.check_invariants()


@given(keys=st.lists(KEYS, unique=True, min_size=1, max_size=80), degree=st.integers(2, 4))
@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_insert_all_remove_all(keys, degree):
    vm, cls, tree = fresh_tree(degree)
    with vm.scope():
        for k in keys:
            tree.insert(k, vm.new(cls, value=k))
    tree.check_invariants()
    assert list(tree.keys()) == sorted(keys)
    for k in keys:
        assert tree.remove(k) is not None
        tree.check_invariants()
    assert len(tree) == 0


@given(keys=st.lists(KEYS, unique=True, min_size=2, max_size=60))
@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_removed_values_unreachable_kept_values_live(keys):
    """GC-level property: removal makes values collectable, retention keeps
    them live — the exact property the orderTable leak violates."""
    vm, cls, tree = fresh_tree(3)
    handles = {}
    with vm.scope():
        for k in keys:
            handle = vm.new(cls, value=k)
            tree.insert(k, handle)
            handles[k] = handle
    removed = keys[: len(keys) // 2]
    kept = keys[len(keys) // 2 :]
    for k in removed:
        tree.remove(k)
    vm.gc()
    for k in removed:
        assert not handles[k].is_live
    for k in kept:
        assert handles[k].is_live
        assert tree.get(k)["value"] == k


@given(ops=ops_strategy)
@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_btree_consistent_under_interleaved_gc(ops):
    """Random GC interleavings never corrupt the structure."""
    vm, cls, tree = fresh_tree(2)
    model: dict[int, int] = {}
    for i, (op, key) in enumerate(ops):
        if op == "insert":
            with vm.scope():
                tree.insert(key, vm.new(cls, value=key))
            model[key] = key
        elif op == "remove":
            tree.remove(key)
            model.pop(key, None)
        if i % 7 == 0:
            vm.gc()
    vm.gc()
    assert list(tree.keys()) == sorted(model)
    tree.check_invariants()
