"""Collector base class and the engine protocol collectors call into.

A collector owns the allocation policy (spaces) and the collection
algorithm; the *assertion engine* (see :mod:`repro.core.engine`) plugs into
well-defined hook points.  When no engine is attached and path tracking is
off, a collector behaves exactly like the unmodified VM — the paper's
**Base** configuration.  With an engine attached but no assertions
registered, the per-object hook costs are still paid — the paper's
**Infrastructure** configuration.  Registered assertions add their own
checking work on top — **WithAssertions**.
"""

from __future__ import annotations

from typing import Optional, Protocol, TYPE_CHECKING

from repro.errors import AssertionViolationHalt, HeapError, HeapExhausted
from repro.gc.stats import GcStats, PhaseTimer, RecoveryStats
from repro.gc.tracer import Tracer
from repro.gc.verify import (
    HeapVerificationError,
    Quarantine,
    SentinelReport,
    run_sentinel,
    verify_heap,
)
from repro.heap import header as hdr
from repro.heap.heap import ObjectHeap
from repro.heap.layout import NULL
from repro.heap.object_model import ClassDescriptor, HeapObject

if TYPE_CHECKING:
    from repro.runtime.vm import VirtualMachine
    from repro.telemetry import Telemetry, _PendingCollection


class _NoopSpan:
    """The do-nothing span context handed out when tracing is off.

    A single module-level instance (it is stateless), so the disabled path
    never allocates — the property the zero-overhead test pins.
    """

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass


_NOOP_SPAN = _NoopSpan()


class AssertionEngineProtocol(Protocol):
    """Hook points a collector offers to the assertion machinery."""

    def gc_begin(self, collector: "Collector") -> None: ...

    def pre_mark(self, collector: "Collector", tracer: Tracer) -> None:
        """Runs before root scanning — the §2.5.2 ownership phase."""

    def on_first_encounter(self, obj: HeapObject, tracer: Tracer, parent) -> None: ...

    def on_repeat_encounter(self, obj: HeapObject, tracer: Tracer, parent) -> None: ...

    def post_mark(self, collector: "Collector", tracer: Tracer) -> None:
        """Runs after marking, before sweeping (FORCE reactions, limits)."""

    def gc_end(self, collector: "Collector", freed: set[int]) -> None:
        """Runs after reclamation with the set of freed addresses."""

    def purge(self, freed: set[int]) -> None:
        """Drop metadata for freed addresses without checking assertions.

        Used by minor collections (which reclaim objects but, per §2.2,
        check nothing) and by collectors that may recycle freed addresses
        before the collection finishes — the purge must precede any reuse.
        """

    def finalize(self, collector: "Collector") -> None:
        """Per-GC accounting and violation dispatch (purge must already
        have happened)."""

    def apply_forwarding(self, fwd: dict[int, int]) -> None:
        """Rewrite engine metadata after a copying collection."""


class Collector:
    """Base class for all collectors."""

    #: Human-readable collector name (used in logs and bench output).
    name = "abstract"
    #: True when the collector can move objects (handles must expect it).
    moving = False

    def __init__(
        self,
        heap_bytes: int,
        engine: Optional[AssertionEngineProtocol] = None,
        track_paths: Optional[bool] = None,
        hardened: bool = False,
        max_heap_bytes: Optional[int] = None,
    ):
        self.heap = ObjectHeap()
        self.heap_bytes = heap_bytes
        self.engine = engine
        #: Hardened mode: pre/post-GC integrity sentinel with quarantine,
        #: mid-mark recovery, and engine-exception containment.  Off by
        #: default — the sentinel is an O(heap) scan per collection, so it is
        #: a chaos/diagnostics knob, not a production default.
        self.hardened = hardened
        #: Growth ceiling for OOM recovery; None disables heap growth.
        self.max_heap_bytes = max_heap_bytes
        #: Counters for the recovery paths (kept out of GcStats on purpose:
        #: GcStats counters are gated bit-identical across benchmark modes).
        self.recovery = RecoveryStats()
        #: Addresses fenced off as corrupt; dead to the allocator forever.
        self.quarantine = Quarantine()
        # Path tracking defaults on exactly when the assertion infrastructure
        # is present, mirroring the paper's Infrastructure configuration.
        self.track_paths = (engine is not None) if track_paths is None else track_paths
        self.stats = GcStats()
        self.vm: Optional["VirtualMachine"] = None
        self.gc_log: list[str] = []
        #: Telemetry hub, attached by the VM; None means the emit path is a
        #: single attribute load + ``is None`` test (the Base configuration).
        self.telemetry: Optional["Telemetry"] = None
        #: Snapshot policy, installed via the VM; None (the default) keeps
        #: the capture machinery entirely out of the collection path.
        self.snapshot_policy = None
        #: Sink filled by the current collection's tracer, awaiting the
        #: post-pause :meth:`_snapshot_flush`.
        self._snapshot_pending = None
        #: Span recorder (:class:`repro.tracing.spans.SpanTracer`), attached
        #: by a VM built with ``tracing=True``.  None means every emit site
        #: is one attribute load + ``is None`` test and no span object of
        #: any kind is allocated — the same zero-overhead bar as telemetry.
        self.span_tracer = None
        #: Parallel marking (PR 7).  ``gc_workers == 0`` is the legacy
        #: sequential path, byte-identical to pre-zone behaviour; ``>= 1``
        #: routes full-GC mark drains through the zone-sharded coordinator
        #: (:mod:`repro.gc.parallel`) when a ``zone_map`` is set.  Subclasses
        #: that support zoning assign both.
        self.gc_workers = 0
        self.zone_map = None
        #: :class:`~repro.gc.parallel.ParallelMarkReport` of the most recent
        #: parallel mark (bench and tests read it), or None.
        self.last_parallel_mark = None
        #: Paranoid mode (PR 10): run the full wellformedness walker around
        #: every collection and raise :class:`~repro.gc.verify.HeapVerificationError`
        #: on any finding.  Off by default; when off the cost is one falsy
        #: attribute test per collection (the same zero-overhead bar as
        #: telemetry/tracing) and ``paranoid_walks`` stays 0.  Deliberately a
        #: plain attribute, not a GcStats counter — GcStats stays bit-identical
        #: across modes.
        self.paranoid = False
        self.paranoid_walks = 0

    # -- wiring ---------------------------------------------------------------------

    def attach(self, vm: "VirtualMachine") -> None:
        self.vm = vm

    def _roots(self):
        assert self.vm is not None, "collector used before attach()"
        return self.vm.root_entries()

    # -- mutator interface ------------------------------------------------------------

    def allocate(self, cls: ClassDescriptor, length: int = 0) -> HeapObject:
        """Allocate an instance, collecting on pressure; raises on true OOM."""
        raise NotImplementedError

    def write_barrier(self, src: HeapObject, new_address: int) -> None:
        """Reference-store hook (used by the generational collector)."""

    def collect(self, reason: str = "explicit") -> None:
        raise NotImplementedError

    # -- telemetry emit path ----------------------------------------------------------

    def _telemetry_begin(self, kind: str, trigger: str) -> Optional["_PendingCollection"]:
        """Open a per-collection telemetry record; None when disabled."""
        telemetry = self.telemetry
        if telemetry is None or not telemetry.enabled:
            return None
        return telemetry.begin_collection(self, kind, trigger)

    def _telemetry_end(self, pending: Optional["_PendingCollection"]) -> None:
        """Close the record opened by :meth:`_telemetry_begin` (emits the
        GcEvent, samples the census, feeds the histograms and sinks)."""
        if pending is not None:
            self.telemetry.finish_collection(pending, self)

    def _telemetry_allocation(self, nbytes: int) -> None:
        """Record one allocation request size (hot path: keep it tiny)."""
        telemetry = self.telemetry
        if telemetry is not None and telemetry.enabled:
            telemetry.record_allocation(nbytes)

    # -- span emit path ----------------------------------------------------------------

    def _span(self, name: str, **args):
        """A span context for phase ``name`` — the shared no-op when off."""
        tracer = self.span_tracer
        if tracer is None:
            return _NOOP_SPAN
        return tracer.span(name, **args)

    # -- shared helpers ---------------------------------------------------------------

    def _make_tracer(self, reason: str = "collect") -> Tracer:
        policy = self.snapshot_policy
        if policy is None:
            return Tracer(self.heap, self.stats, self.engine, self.track_paths)
        sink = policy.begin_capture(self, reason)
        self._snapshot_pending = sink
        if sink is not None and self.span_tracer is not None:
            self.span_tracer.instant(
                "snapshot_capture", cat="snapshot", trigger=sink.trigger
            )
        return Tracer(
            self.heap, self.stats, self.engine, self.track_paths, snapshot=sink
        )

    def _snapshot_flush(self) -> None:
        """Serialize a capture buffered during this collection, if any.

        Collectors call this *after* their ``gc_seconds`` timer closes:
        the file write is mutator-side cost, not pause time.  A failing
        serializer (disk full, injected IOError) must never stall the
        mutator, so failures are contained here and recorded.
        """
        sink = self._snapshot_pending
        if sink is not None:
            self._snapshot_pending = None
            try:
                with self._span("snapshot_serialize", cat="snapshot"):
                    self.snapshot_policy.finish_capture(self, sink)
            except Exception as exc:
                self.recovery.snapshot_failures += 1
                self.gc_log.append(
                    f"snapshot serialization failed: {type(exc).__name__}: {exc}"
                )
                telemetry = self.telemetry
                if telemetry is not None and telemetry.enabled:
                    telemetry.record_degradation(
                        "snapshot",
                        f"{type(exc).__name__}: {exc}",
                        seq=self.stats.collections,
                    )

    def _engine_call(self, phase: str, fn, *args) -> None:
        """Invoke one engine hook; in hardened mode, contain its exceptions.

        The never-propagate rule: an engine bug (or injected fault) degrades
        checking for this collection instead of killing the pause.  Halts
        are the engine *working as designed* and heap errors are the heap's
        problem — both propagate.
        """
        if not self.hardened:
            fn(*args)
            return
        try:
            fn(*args)
        except (AssertionViolationHalt, HeapError):
            raise
        except Exception as exc:
            note = getattr(self.engine, "note_degraded", None)
            if note is not None:
                note(phase, exc)
            else:
                self.recovery.engine_degradations += 1

    def _parallel_eligible(self, tracer: Tracer) -> bool:
        """True when this mark drain may run on the zone-sharded pool.

        The parallel drains replicate the two *fused* loop bodies (plain
        and inline-engine); anything that needs the general dispatching
        drain — a snapshot sink capturing mid-trace, an unspecialized
        tracer, an engine without ``INLINE_HEADER_CHECKS`` — falls back to
        the sequential path for that collection.
        """
        if self.gc_workers <= 0 or self.zone_map is None:
            return False
        if tracer.snapshot is not None or not tracer.specialized:
            return False
        engine = tracer.engine
        return engine is None or getattr(engine, "INLINE_HEADER_CHECKS", False)

    def _parallel_marker(self, tracer: Tracer):
        from repro.gc.parallel import ParallelMarker

        return ParallelMarker(self, self.gc_workers, self.zone_map)

    def _mark_once(self, tracer: Tracer) -> None:
        engine = self.engine
        spans = self.span_tracer
        if engine is not None:
            self._engine_call("gc_begin", engine.gc_begin, self)
            with PhaseTimer(
                self.stats, "ownership_phase_seconds", spans, "ownership_phase"
            ):
                self._engine_call("pre_mark", engine.pre_mark, self, tracer)
        parallel = self._parallel_eligible(tracer)
        if spans is None:
            with PhaseTimer(self.stats, "mark_seconds"):
                if parallel:
                    self._parallel_marker(tracer).mark(tracer, self._roots())
                else:
                    tracer.trace(self._roots())
        else:
            # The root scan and the drain get child spans of their own; the
            # loops themselves are untouched (spans are phase-granular).
            with PhaseTimer(self.stats, "mark_seconds", spans, "mark"):
                with spans.span("root_scan"):
                    tracer.scan_roots(self._roots())
                with spans.span("mark_drain"):
                    if parallel:
                        self._parallel_marker(tracer).drain(tracer)
                    else:
                        tracer.drain()
            if spans.attribute_marks:
                # Between mark end and sweep begin the mark bits identify
                # exactly this cycle's traced set — the attribution window.
                spans.record_mark_attribution(self.heap)
        if engine is not None:
            self._engine_call("post_mark", engine.post_mark, self, tracer)

    def _run_mark_phase(self, tracer: Tracer) -> Tracer:
        """Mark the heap; in hardened mode, recover from a mid-mark fault.

        Recovery drops any pending snapshot capture, clears the partial
        mark state, quarantines detected corruption (or degrades the
        engine, for non-heap faults), and re-runs the *entire* mark phase
        with a fresh tracer — ``pre_mark`` must re-run because clearing
        OWNED bits would otherwise fabricate unowned-ownee violations.  A
        second failure propagates: one recovery attempt per pause.

        Returns the tracer that actually completed the mark (callers that
        consult tracer state must use the return value).
        """
        if not self.hardened:
            self._mark_once(tracer)
            return tracer
        try:
            self._mark_once(tracer)
            return tracer
        except AssertionViolationHalt:
            raise
        except Exception as exc:
            if self._snapshot_pending is not None:
                self._snapshot_pending = None
                self.recovery.snapshots_dropped += 1
            self._clear_all_marks()
            if isinstance(exc, HeapError):
                # Corruption surfaced mid-trace: repair what the sentinel
                # can and retrace over the fenced heap.
                report = self._sentinel_check("mid-mark")
                if report is None or report.clean:
                    # The fault's cause was not repairable (or not findable);
                    # still record the degradation before the retrace.
                    self.recovery.heap_degradations += 1
                    self.gc_log.append(
                        f"mid-mark heap fault: {type(exc).__name__}: {exc}"
                    )
            else:
                note = getattr(self.engine, "note_degraded", None)
                if note is not None:
                    note("mark", exc)
            retry = Tracer(self.heap, self.stats, self.engine, self.track_paths)
            self._mark_once(retry)
            return retry

    def _clear_all_marks(self) -> None:
        """Reset per-collection header bits after an aborted mark."""
        clear = ~(hdr.MARK_BIT | hdr.OWNED_BIT)
        for obj in self.heap:
            obj.status &= clear

    def _purge_before_reuse(self, freed: set[int]) -> None:
        """Drop address-keyed metadata for ``freed`` before any reuse.

        Lazy chunk sweeps call this per chunk, so a freed cell's address can
        be recycled by the very next allocation without aliasing a stale
        registry entry or region-queue slot.
        """
        if self.engine is not None:
            self.engine.purge(freed)
        if self.vm is not None:
            self.vm.purge_dead_metadata(freed)

    def _finish_mark_only(self, cutoff: int, fwd: Optional[dict[int, int]] = None) -> None:
        """Pause-end duties when the sweep is deferred (lazy mode).

        Dead objects are still in the heap table, so liveness is decided by
        mark bits (plus the ``alloc_seq`` epoch for objects installed after
        the trace) instead of table membership.  Metadata purging happens
        per chunk as debt is repaid; violation dispatch can run now because
        the engine detected everything during marking.
        """
        self._process_weak_references_marked(cutoff, fwd)
        if self.engine is not None:
            self.engine.finalize(self)
        if self.vm is not None:
            self.vm.on_gc_complete(set())

    def _process_weak_references_marked(
        self, cutoff: int, fwd: Optional[dict[int, int]] = None
    ) -> None:
        """Mark-bit variant of :meth:`process_weak_references`.

        Used at a lazy pause end: a dead target is still *in* the table, so
        ``heap.contains`` would wrongly report it live.  Dead holders are
        skipped (the eager path never sees them either — they are evicted
        before weak processing), keeping ``weak_refs_cleared`` identical
        between modes.
        """
        heap = self.heap
        stats = self.stats
        mark_bit = hdr.MARK_BIT
        for obj in list(heap.weak_holders):
            if not (obj.status & mark_bit or obj.alloc_seq > cutoff):
                continue  # holder itself is pending garbage
            slots = obj.slots
            for idx in obj.weak_slot_indices():
                address = slots[idx]
                if address == NULL:
                    continue
                if fwd:
                    address = fwd.get(address, address)
                target = heap.maybe(address)
                if target is not None and (
                    target.status & mark_bit or target.alloc_seq > cutoff
                ):
                    slots[idx] = address
                    continue
                slots[idx] = NULL
                stats.weak_refs_cleared += 1

    def _finish_collection(self, freed: set[int], fwd: Optional[dict[int, int]] = None) -> None:
        if fwd:
            if self.engine is not None:
                self.engine.apply_forwarding(fwd)
            if self.vm is not None:
                self.vm.apply_forwarding(fwd)
        self.process_weak_references(fwd)
        if self.engine is not None:
            self.engine.gc_end(self, freed)
        if self.vm is not None:
            self.vm.on_gc_complete(freed)

    def process_weak_references(self, fwd: Optional[dict[int, int]] = None) -> None:
        """Clear weak slots whose target died; forward ones whose target moved."""
        heap = self.heap
        for obj in list(heap.weak_holders):
            slots = obj.slots
            for idx in obj.weak_slot_indices():
                address = slots[idx]
                if address == NULL:
                    continue
                if fwd:
                    address = fwd.get(address, address)
                if heap.contains(address):
                    slots[idx] = address
                else:
                    slots[idx] = NULL
                    self.stats.weak_refs_cleared += 1

    # -- hardened recovery surface ------------------------------------------------------

    def _sentinel_check(self, phase: str) -> Optional[SentinelReport]:
        """Pre/post-GC integrity sentinel: repair + quarantine, never raise.

        Callers must only invoke this when mark bits are legitimately clear
        (after ``sweep_all``, or when this collector has no sweep debt) —
        lazy-sweep survivors carry MARK bits until their chunk is swept.
        """
        if not self.hardened or self.vm is None:
            return None
        # In paranoid mode the sentinel also scrubs allocator free lists, so
        # the wellformedness walk that follows starts from a repaired heap.
        report = run_sentinel(
            self.vm, self.quarantine, phase=phase, scrub_freelists=self.paranoid
        )
        if not report.clean:
            self._heap_degraded(report)
        return report

    def _heap_degraded(self, report: SentinelReport) -> None:
        """Record one sentinel scan that found (and fenced) corruption."""
        recovery = self.recovery
        recovery.heap_degradations += 1
        recovery.objects_quarantined += report.objects_quarantined
        recovery.refs_fenced += report.refs_fenced + report.roots_fenced
        recovery.stale_bits_cleared += report.stale_bits_cleared
        recovery.cells_fenced += report.freelist_scrubbed
        self.gc_log.append(report.render())
        telemetry = self.telemetry
        if telemetry is not None and telemetry.enabled:
            telemetry.record_degradation(
                "heap",
                f"{report.phase}: {len(report.problems)} problem(s), "
                f"{report.repairs()} repair(s)",
                seq=self.stats.collections,
            )
        spans = self.span_tracer
        if spans is not None:
            spans.instant(
                "heap_degraded",
                cat="gc",
                phase=report.phase,
                problems=len(report.problems),
                repairs=report.repairs(),
            )

    def _paranoid_check(self, phase: str) -> None:
        """Paranoid wellformedness walk around a collection.

        Runs the object-graph verifier in its non-mutating form (pending lazy
        garbage is excluded rather than swept — the walk must never change
        what the collection it brackets would have done) plus the allocator
        walker from :mod:`repro.verify.paranoid`.  Any finding raises a typed
        :class:`~repro.gc.verify.HeapVerificationError` naming the phase.

        Callers gate on ``if self.paranoid:`` and invoke this *outside* the
        timed pause, so ``gc_time_ratio`` for the off configuration stays at
        1.00× and the on configuration charges the walk to wall clock, not to
        the pause ledger.
        """
        if self.vm is None:
            return
        self.paranoid_walks += 1
        problems = verify_heap(
            self.vm, raise_on_error=False, finish_lazy_sweep=False, paranoid=True
        )
        if problems:
            raise HeapVerificationError(
                f"paranoid[{phase}] walk after gc#{self.stats.collections} found "
                f"{len(problems)} problem(s): " + "; ".join(problems[:5]),
                problems=problems,
            )

    def _fence_aliased_cell(self, space, address: int, cell: int) -> None:
        """Quarantine a free-list cell that aliased a live object.

        Corrupted free-list metadata handed out an address the heap already
        tracks.  The address is fenced (never reused), the double byte
        charge from the aliased commit is undone, and the legitimate
        occupant is untouched.
        """
        self.quarantine.fence(address)
        self.recovery.cells_fenced += 1
        uncommit = getattr(space, "uncommit", None)
        if uncommit is not None and cell > 0:
            uncommit(address, cell)
        self.gc_log.append(
            f"aliased free-list cell {address:#x} ({cell} bytes) fenced"
        )
        telemetry = self.telemetry
        if telemetry is not None and telemetry.enabled:
            telemetry.record_degradation(
                "heap",
                f"aliased free-list cell {address:#x} fenced",
                seq=self.stats.collections,
            )

    def _try_grow(self) -> bool:
        """Grow the heap toward ``max_heap_bytes``; False when at the limit.

        The OOM-recovery ladder's last rung before :class:`HeapExhausted`:
        emergency full collection and ``sweep_all`` have already run, so a
        1.5× (min one page) growth is the only remaining option.
        """
        limit = self.max_heap_bytes
        if limit is None or self.heap_bytes >= limit:
            return False
        new_total = min(limit, max(self.heap_bytes + 4096, self.heap_bytes * 3 // 2))
        delta = new_total - self.heap_bytes
        if delta <= 0:
            return False
        self._grow_spaces(delta)
        self.heap_bytes = new_total
        self.recovery.heap_growths += 1
        self.gc_log.append(f"heap grown by {delta} bytes to {new_total}")
        telemetry = self.telemetry
        if telemetry is not None and telemetry.enabled:
            telemetry.record_degradation(
                "heap_grown",
                f"+{delta} bytes to {new_total}",
                seq=self.stats.collections,
            )
        spans = self.span_tracer
        if spans is not None:
            spans.instant("heap_grown", cat="gc", delta=delta, total=new_total)
        return True

    def _grow_spaces(self, delta: int) -> None:
        """Distribute ``delta`` new bytes across this collector's spaces."""
        raise NotImplementedError

    def _top_retained(self, limit: int = 5) -> list[tuple[str, int]]:
        """Top retained-size entries for OOM triage, via an in-memory snapshot."""
        if self.vm is None:
            return []
        from repro.snapshot.format import HeapSnapshot, ObjectRecord
        from repro.snapshot.retained import top_retained

        heap = self.heap
        pending = self.pending_garbage_predicate()
        objects: dict[int, ObjectRecord] = {}
        for obj in heap:
            if pending is not None and pending(obj):
                continue
            edges = tuple(
                ref for ref in obj.reference_slots() if ref != NULL and heap.contains(ref)
            )
            objects[obj.address] = ObjectRecord(
                obj.address, obj.cls.name, obj.size_bytes, edges=edges
            )
        roots = [(desc, addr) for desc, addr in self.vm.root_entries() if addr in objects]
        snapshot = HeapSnapshot({"collector": self.name}, roots, objects)
        return [
            (f"{type_name}@{addr:#x}", retained)
            for addr, type_name, retained in top_retained(snapshot, limit=limit)
        ]

    def _oom(self, cls: ClassDescriptor, nbytes: int, reason: str) -> HeapExhausted:
        message = (
            f"{self.name}: cannot allocate {nbytes} bytes for {cls.name} ({reason}); "
            f"heap budget {self.heap_bytes} bytes, "
            f"{self.heap.stats.objects_live} objects live"
        )
        census: dict[str, tuple[int, int]] = {}
        top: list[tuple[str, int]] = []
        try:
            pending = self.pending_garbage_predicate()
            for obj in self.heap:
                if pending is not None and pending(obj):
                    continue
                count, total = census.get(obj.cls.name, (0, 0))
                census[obj.cls.name] = (count + 1, total + obj.size_bytes)
            top = self._top_retained()
        except Exception:
            # Triage is best-effort: an OOM report must never be masked by a
            # failure while assembling its own diagnostics.
            pass
        return HeapExhausted(
            message,
            requested_bytes=nbytes,
            type_name=cls.name,
            heap_bytes=self.heap_bytes,
            census=census,
            top_retained=top,
        )

    # -- lazy-sweep surface (no-ops for eager-only collectors) ---------------------------

    def sweep_all(self) -> None:
        """Finish any deferred sweep work so reclamation is exact *now*.

        The escape hatch lazy mode needs for consumers whose semantics
        require an up-to-date heap table — ``verify_heap``, the class
        census, assert-dead probing after an explicit GC.  Eager collectors
        have nothing deferred, so the base implementation is a no-op.
        """

    def sweep_debt(self) -> int:
        """Unswept chunks outstanding from the last collection (0 = exact)."""
        return 0

    def pending_garbage_predicate(self):
        """``None``, or a predicate marking objects that are dead but not
        yet swept — table walkers (census) use it to skip pending garbage."""
        return None

    # -- introspection -----------------------------------------------------------------

    def bytes_in_use(self) -> int:
        raise NotImplementedError

    def describe(self) -> str:
        return (
            f"{self.name}(heap={self.heap_bytes}B, "
            f"engine={'on' if self.engine else 'off'}, "
            f"paths={'on' if self.track_paths else 'off'})"
        )

    @staticmethod
    def clear_gc_bits(obj: HeapObject) -> None:
        """Reset per-collection header state on a survivor."""
        obj.status &= ~(hdr.MARK_BIT | hdr.OWNED_BIT)
