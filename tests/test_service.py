"""The multi-tenant assertion service: wire protocol, admission, sessions.

Coverage map:

* framing — round-trip across arbitrary chunk boundaries, truncated and
  oversized frames rejected, unknown keys preserved (the same forward-
  compatibility discipline as the gc-event schema);
* admission — budget ledger, session cap, Retry-After rejections, and
  the acceptance-criteria ramp: 100+ concurrent sessions under budget
  with overflow rejected, never crashed;
* isolation — a session run through the server is **bit-identical** (GC
  counters + violation sets) to the same workload run directly on a VM,
  and a killed tenant perturbs nobody (the chaos cell);
* backpressure — bounded outbound queues shed gc-event frames and count
  them; critical frames always deliver;
* serving — /metrics carries tenant-labelled families that pass the
  exposition conformance checker.
"""

from __future__ import annotations

import json
import struct

import pytest

from repro.errors import SessionKilled, WireProtocolError
from repro.runtime.vm import VirtualMachine
from repro.service import (
    AdmissionController,
    AssertionService,
    FrameDecoder,
    FrameQueue,
    LoadgenConfig,
    ServiceClient,
    ServiceConfig,
    TenantSession,
    encode_frame,
    resolve_workload,
    run_loadgen,
)
from repro.service.wire import MAX_FRAME_BYTES


# -- wire protocol ----------------------------------------------------------------------


class TestFraming:
    def test_round_trip(self):
        frames = [
            {"type": "hello", "schema": "repro-wire/1"},
            {"type": "open", "tenant": "acme", "workload": "swapleak"},
            {"type": "violation", "message": "x" * 500, "gc_number": 3},
        ]
        blob = b"".join(encode_frame(f) for f in frames)
        decoder = FrameDecoder()
        assert decoder.feed(blob) == frames
        decoder.finish()  # clean boundary

    def test_round_trip_one_byte_chunks(self):
        frames = [{"type": "ping", "n": i} for i in range(5)]
        blob = b"".join(encode_frame(f) for f in frames)
        decoder = FrameDecoder()
        out = []
        for i in range(len(blob)):
            out.extend(decoder.feed(blob[i:i + 1]))
        assert out == frames
        assert decoder.frames_decoded == 5

    def test_truncated_frame_rejected_at_eof(self):
        blob = encode_frame({"type": "open", "tenant": "t"})
        decoder = FrameDecoder()
        assert decoder.feed(blob[:-3]) == []
        assert decoder.pending_bytes > 0
        with pytest.raises(WireProtocolError, match="truncated"):
            decoder.finish()

    def test_oversized_frame_rejected_before_buffering(self):
        # A hostile length prefix is refused from the 4-byte header alone.
        prefix = struct.pack(">I", MAX_FRAME_BYTES + 1)
        decoder = FrameDecoder()
        with pytest.raises(WireProtocolError, match="exceeds"):
            decoder.feed(prefix)

    def test_oversized_payload_rejected_on_encode(self):
        with pytest.raises(WireProtocolError, match="over the"):
            encode_frame({"blob": "x" * (MAX_FRAME_BYTES + 10)})

    def test_zero_length_frame_rejected(self):
        with pytest.raises(WireProtocolError, match="zero-length"):
            FrameDecoder().feed(struct.pack(">I", 0))

    def test_non_object_payload_rejected(self):
        body = json.dumps([1, 2, 3]).encode()
        blob = struct.pack(">I", len(body)) + body
        with pytest.raises(WireProtocolError, match="JSON object"):
            FrameDecoder().feed(blob)

    def test_undecodable_body_rejected(self):
        body = b"\xff\xfe{not json"
        blob = struct.pack(">I", len(body)) + body
        with pytest.raises(WireProtocolError, match="undecodable"):
            FrameDecoder().feed(blob)

    def test_unknown_keys_preserved(self):
        """Forward compatibility: a newer peer's extra keys survive the
        decode untouched — the gc-event v1 -> v2 discipline on the wire."""
        frame = {"type": "open", "tenant": "t", "future_field": {"nested": 1}}
        (decoded,) = FrameDecoder().feed(encode_frame(frame))
        assert decoded["future_field"] == {"nested": 1}


# -- admission control ------------------------------------------------------------------


class TestAdmission:
    def test_budget_ledger(self):
        ctl = AdmissionController(budget_bytes=1000)
        assert ctl.try_admit(600).admitted
        decision = ctl.try_admit(600)
        assert not decision.admitted
        assert decision.reason == "budget"
        assert decision.retry_after_s > 0
        ctl.release(600)
        assert ctl.try_admit(600).admitted
        snap = ctl.snapshot()
        assert snap["admitted_total"] == 2
        assert snap["rejected_total"] == 1
        assert snap["rejected_by_reason"] == {"budget": 1}

    def test_session_cap(self):
        ctl = AdmissionController(budget_bytes=10_000, max_sessions=2)
        assert ctl.try_admit(10).admitted
        assert ctl.try_admit(10).admitted
        decision = ctl.try_admit(10)
        assert not decision.admitted and decision.reason == "sessions"

    def test_peak_tracking(self):
        ctl = AdmissionController(budget_bytes=1000)
        ctl.try_admit(100)
        ctl.try_admit(100)
        ctl.release(100)
        ctl.try_admit(50)
        assert ctl.snapshot()["peak_sessions"] == 2
        assert ctl.snapshot()["peak_committed_bytes"] == 200

    def test_unbalanced_release_is_a_bug(self):
        ctl = AdmissionController(budget_bytes=1000)
        with pytest.raises(AssertionError, match="ledger"):
            ctl.release(10)


# -- frame queue backpressure -----------------------------------------------------------


class TestFrameQueue:
    def test_sheds_gc_events_when_full(self):
        queue = FrameQueue(max_frames=2)
        assert queue.push({"type": "gc-event", "seq": 1})
        assert queue.push({"type": "gc-event", "seq": 2})
        assert not queue.push({"type": "gc-event", "seq": 3})
        assert queue.dropped_frames == 1

    def test_critical_frames_never_shed(self):
        queue = FrameQueue(max_frames=1)
        queue.push({"type": "gc-event", "seq": 1})
        assert queue.push({"type": "violation", "message": "m"})
        assert queue.push({"type": "result", "outcome": "completed"})
        assert queue.dropped_frames == 0
        kinds = [frame["type"] for frame, _t in queue.drain()]
        assert kinds == ["gc-event", "violation", "result"]
        assert len(queue) == 0


# -- tenant sessions --------------------------------------------------------------------


def _run_direct(workload: str, overrides=None) -> tuple[dict, list[str]]:
    """The baseline leg: same workload, same VM configuration, no service."""
    heap_bytes, runner = resolve_workload(workload, overrides=overrides)
    vm = VirtualMachine(
        heap_bytes=heap_bytes, assertions=True, telemetry=True,
        hardened=True, max_heap_bytes=heap_bytes * 2,
    )
    runner(vm)
    vm.collector.sweep_all()
    return vm.stats.snapshot()["counters"], vm.violation_lines()


class TestTenantSession:
    def test_lifecycle_and_bit_identity(self):
        overrides = {"swaps": 24}
        heap_bytes, runner = resolve_workload("swapleak", overrides=overrides)
        session = TenantSession("s1", "acme", heap_bytes)
        assert session.state == "admitted"
        frame = session.run(runner)
        assert session.state == "draining"
        assert session.outcome == "completed"
        session.evict()
        assert session.state == "evicted"

        counters, violations = _run_direct("swapleak", overrides)
        assert frame["counters"] == counters
        assert frame["violations"] == violations
        assert session.violation_frames == len(violations)

    def test_streams_violations_and_gc_events(self):
        heap_bytes, runner = resolve_workload("swapleak", overrides={"swaps": 16})
        session = TenantSession("s1", "acme", heap_bytes, queue_frames=10_000)
        session.run(runner)
        frames = [frame for frame, _t in session.queue.drain()]
        kinds = {frame["type"] for frame in frames}
        assert "violation" in kinds and "gc-event" in kinds and "result" in kinds
        violation = next(f for f in frames if f["type"] == "violation")
        assert violation["kind"] == "assert-dead"
        assert violation["session"] == "s1"

    def test_slow_consumer_sheds_only_gc_events(self):
        heap_bytes, runner = resolve_workload("swapleak", overrides={"swaps": 24})
        session = TenantSession("s1", "acme", heap_bytes, queue_frames=2)
        frame = session.run(runner)
        assert session.queue.dropped_frames > 0
        assert frame["dropped_frames"] == session.queue.dropped_frames
        # The critical result frame rode over the full queue regardless.
        kinds = [f["type"] for f, _t in session.queue.drain()]
        assert "result" in kinds

    def test_conn_drop_discards_but_completes(self):
        heap_bytes, runner = resolve_workload("swapleak", overrides={"swaps": 16})
        session = TenantSession("s1", "acme", heap_bytes)
        session.drop_connection()
        frame = session.run(runner)
        assert session.outcome == "completed"
        assert session.discarded_frames > 0
        assert len(session.queue) == 0  # nothing reached the queue
        assert frame["counters"]["collections"] > 0

    def test_kill_hook_raises_session_killed(self):
        heap_bytes, _runner = resolve_workload("swapleak")
        session = TenantSession("s1", "acme", heap_bytes)
        with pytest.raises(SessionKilled):
            session.vm.service_hooks["session-kill"]()

    def test_killed_session_is_an_outcome_not_an_escape(self):
        heap_bytes, _runner = resolve_workload("swapleak", overrides={"swaps": 16})
        session = TenantSession("s1", "acme", heap_bytes)

        def killed_runner(vm):
            raise SessionKilled("injected mid-workload")

        frame = session.run(killed_runner)
        assert session.outcome == "killed"
        assert frame["outcome"] == "killed"

    def test_register_assertion_instances(self):
        heap_bytes, runner = resolve_workload("swapleak", overrides={"swaps": 8})
        session = TenantSession("s1", "acme", heap_bytes)
        session.register_assertion(
            {"kind": "instances", "class": "SObject", "limit": 2}
        )
        session.run(runner)
        assert any(
            "instances" in line.lower() or "SObject" in line
            for line in session.vm.violation_lines()
        )

    def test_register_assertion_rejects_unknown_kind(self):
        heap_bytes, _runner = resolve_workload("swapleak")
        session = TenantSession("s1", "acme", heap_bytes)
        with pytest.raises(WireProtocolError, match="unknown wire assertion"):
            session.register_assertion({"kind": "mystery"})
        with pytest.raises(WireProtocolError, match="'class' string"):
            session.register_assertion({"kind": "instances", "class": 3, "limit": "x"})

    def test_resolve_workload_unknown_name(self):
        with pytest.raises(WireProtocolError, match="unknown workload"):
            resolve_workload("not-a-workload")


# -- the server, end to end -------------------------------------------------------------


@pytest.fixture
def service():
    with AssertionService(ServiceConfig(http_port=None)) as svc:
        yield svc


class TestServerEndToEnd:
    def test_hello_welcome(self, service):
        with ServiceClient("127.0.0.1", service.port) as client:
            welcome = client.hello()
            assert welcome["schema"] == "repro-wire/1"

    def test_session_through_server_is_bit_identical(self, service):
        overrides = {"swaps": 24}
        with ServiceClient("127.0.0.1", service.port) as client:
            client.hello()
            opened = client.open("acme", "swapleak", overrides=overrides)
            assert opened["type"] == "opened"
            streamed = []
            result = client.submit(opened["session"], collect=streamed)
            closed = client.close_session(opened["session"], collect=streamed)
        assert result["outcome"] == "completed"
        assert closed["type"] == "closed"

        counters, violations = _run_direct("swapleak", overrides)
        assert result["counters"] == counters
        assert result["violations"] == violations
        assert sum(1 for f in streamed if f["type"] == "violation") == len(violations)
        assert any(f["type"] == "gc-event" for f in streamed)

    def test_program_submission(self, service):
        source = """
        class Node { var next: Node; }
        def main(): int {
          var n: Node = new Node();
          n = null;
          gc();
          return 0;
        }
        """
        with ServiceClient("127.0.0.1", service.port) as client:
            client.hello()
            opened = client.open("lab", "swapleak")
            result = client.submit(opened["session"], program=source)
            client.close_session(opened["session"])
        assert result["outcome"] == "completed"
        assert result["counters"]["collections"] >= 1

    def test_explicit_gc_and_stats_frames(self, service):
        with ServiceClient("127.0.0.1", service.port) as client:
            client.hello()
            opened = client.open("acme", "swapleak")
            client.send({"type": "gc", "session": opened["session"]})
            ok = client.recv_until("ok")
            assert ok["re"] == "gc"
            stats = client.stats()
            assert stats["admission"]["active_sessions"] == 1
            client.close_session(opened["session"])

    def test_unknown_frame_type_gets_error_not_disconnect(self, service):
        with ServiceClient("127.0.0.1", service.port) as client:
            error = (client.send({"type": "frobnicate"}), client.recv())[1]
            assert error["type"] == "error"
            # Still alive afterwards:
            client.send({"type": "ping"})
            assert client.recv()["type"] == "pong"

    def test_double_submit_rejected(self, service):
        with ServiceClient("127.0.0.1", service.port) as client:
            client.hello()
            opened = client.open("acme", "swapleak", overrides={"swaps": 8})
            client.submit(opened["session"])
            second = client.submit(opened["session"])
            assert second["type"] == "error"
            assert "draining" in second["error"]

    def test_admission_rejection_has_retry_after(self):
        config = ServiceConfig(http_port=None, heap_budget_bytes=1)
        with AssertionService(config) as svc:
            with ServiceClient("127.0.0.1", svc.port) as client:
                client.hello()
                rejected = client.open("acme", "swapleak")
                assert rejected["type"] == "rejected"
                assert rejected["reason"] == "budget"
                assert rejected["retry_after_s"] > 0

    def test_abandoned_connection_releases_budget(self, service):
        with ServiceClient("127.0.0.1", service.port) as client:
            client.hello()
            client.open("acme", "swapleak")
            # Vanish without closing the session.
        deadline = __import__("time").monotonic() + 5.0
        while __import__("time").monotonic() < deadline:
            if service.admission.snapshot()["committed_bytes"] == 0:
                break
            __import__("time").sleep(0.02)
        snap = service.admission.snapshot()
        assert snap["committed_bytes"] == 0
        assert snap["active_sessions"] == 0


# -- service-level metrics and SLOs -----------------------------------------------------


class TestServing:
    def test_metrics_endpoint_has_tenant_families(self):
        with AssertionService(ServiceConfig()) as svc:
            with ServiceClient("127.0.0.1", svc.port) as client:
                client.hello()
                opened = client.open("acme", "swapleak", overrides={"swaps": 16})
                client.submit(opened["session"])
                client.close_session(opened["session"])
            import urllib.request

            body = urllib.request.urlopen(f"{svc.http.url}/metrics").read().decode()
            health = json.loads(
                urllib.request.urlopen(f"{svc.http.url}/health").read().decode()
            )
        from repro.telemetry.sinks import validate_exposition

        assert validate_exposition(body) == []
        assert 'tenant="acme"' in body
        assert "repro_service_sessions_active" in body
        assert "repro_service_admission_latency_seconds_count" in body
        assert "repro_mmu_ratio" in body  # shared hub families ride along
        assert health["healthy"] is True

    def test_admission_latency_slo_fires_on_sustained_breach(self):
        from repro.service.metrics import ServiceMetrics

        metrics = ServiceMetrics(admission_latency_slo_s=0.010)
        for i in range(300):
            # Mono span stamps: received at t, decided 0.5s later.
            metrics.observe_admission_latency(100.0, 100.5, wall_time=float(i))
        status = metrics.slo_status()
        assert status["healthy"] is False
        assert "admission-latency" in status["firing"]
        assert metrics.alerts  # the transition was recorded

    def test_delivery_lag_slo_stays_healthy_under_fast_delivery(self):
        from repro.service.metrics import ServiceMetrics

        metrics = ServiceMetrics(delivery_lag_slo_s=0.200)
        for i in range(300):
            metrics.observe_delivery_lag(100.0, 100.001, wall_time=float(i))
        assert metrics.slo_status()["healthy"] is True


# -- tenant isolation (the chaos contract) ----------------------------------------------


class TestTenantIsolation:
    def test_killed_tenant_perturbs_nobody(self):
        from repro.faults.chaos import run_tenant_isolation_cell

        cell = run_tenant_isolation_cell(seed=0)
        assert cell.ok, cell.render()
        assert cell.kinds_applied == {"conn-drop", "session-kill"}


# -- load generator ---------------------------------------------------------------------


class TestLoadgen:
    def test_quick_flow_run(self):
        report = run_loadgen(LoadgenConfig(quick=True, sessions=6, seed=5))
        assert report.ok, report.render()
        assert report.completed == 6
        assert report.errors == 0
        assert report.violation_frames > 0  # swapleak guarantees these
        assert report.open_latency.count == 6

    def test_ramp_drives_admission_to_the_limit(self):
        """The acceptance shape in miniature: more sessions than budget,
        peak pinned at capacity, overflow rejected — never crashed."""
        heap_bytes, _runner = resolve_workload("swapleak")
        capacity = 4
        report = run_loadgen(LoadgenConfig(
            sessions=capacity + 3,
            mode="ramp",
            seed=1,
            heap_budget_bytes=capacity * heap_bytes * 2,
            mix=(("swapleak", 1),),
        ))
        assert report.errors == 0
        assert report.peak_concurrent == capacity
        assert report.rejected == 3
        assert report.completed == capacity

    def test_hundred_concurrent_sessions(self):
        """Acceptance criteria: >=100 concurrent sessions under the heap
        budget, with admission rejections (not crashes) past the budget."""
        heap_bytes, _runner = resolve_workload("xalan")
        capacity = 100
        report = run_loadgen(LoadgenConfig(
            sessions=capacity + 10,
            mode="ramp",
            seed=0,
            heap_budget_bytes=capacity * heap_bytes * 2,
            mix=(("xalan", 1),),
        ))
        assert report.errors == 0
        assert report.peak_concurrent >= 100
        assert report.rejected == 10
        assert report.completed == capacity
