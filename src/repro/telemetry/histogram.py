"""Streaming log-scale histograms for the telemetry layer.

The distributions we care about — GC pause times, allocation sizes, ownees
checked per collection — span several orders of magnitude, so fixed
*log-scale* buckets give constant relative resolution with a small, bounded
footprint (the classic HdrHistogram / Prometheus trade-off).  Bucket
boundaries are computed once at construction; recording is a binary search
(memoized for the repeated integer sizes an allocator produces) and
percentile queries interpolate within the owning bucket.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Optional


class LogHistogram:
    """Fixed log-scale bucket histogram with streaming percentile summaries.

    ``lo``/``hi`` bound the well-resolved range; values below ``lo`` land in
    the first bucket and values above ``hi`` in a final overflow bucket, so
    no observation is ever lost.  ``buckets_per_decade`` sets the relative
    resolution (5 per decade ≈ ±29% per bucket).
    """

    __slots__ = (
        "lo",
        "hi",
        "bounds",
        "counts",
        "count",
        "total",
        "min_value",
        "max_value",
        "_bucket_memo",
    )

    def __init__(self, lo: float, hi: float, buckets_per_decade: int = 5):
        if lo <= 0 or hi <= lo:
            raise ValueError(f"need 0 < lo < hi, got lo={lo!r} hi={hi!r}")
        decades = math.log10(hi / lo)
        n = max(1, math.ceil(decades * buckets_per_decade))
        ratio = (hi / lo) ** (1.0 / n)
        self.lo = lo
        self.hi = hi
        #: Upper (inclusive) bound of each regular bucket; the overflow
        #: bucket beyond ``bounds[-1]`` has no upper bound.
        self.bounds: list[float] = [lo * ratio**i for i in range(1, n + 1)]
        self.counts: list[int] = [0] * (n + 1)
        self.count = 0
        self.total = 0.0
        self.min_value: Optional[float] = None
        self.max_value: Optional[float] = None
        self._bucket_memo: dict[float, int] = {}

    # -- recording --------------------------------------------------------------------

    def record(self, value: float) -> None:
        idx = self._bucket_memo.get(value)
        if idx is None:
            idx = bisect_left(self.bounds, value)
            # Memoize only repeat-friendly values (ints: allocation sizes,
            # work counts) so float pause times don't grow the memo forever.
            if isinstance(value, int) and len(self._bucket_memo) < 4096:
                self._bucket_memo[value] = idx
        self.counts[idx] += 1
        self.count += 1
        self.total += value
        if self.min_value is None or value < self.min_value:
            self.min_value = value
        if self.max_value is None or value > self.max_value:
            self.max_value = value

    # -- queries ----------------------------------------------------------------------

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Value at percentile ``p`` (0–100), interpolated within its bucket.

        Exact observed extremes are used for the edge buckets, so
        ``percentile(100) == max_value`` and percentiles never stray outside
        the recorded range.
        """
        if self.count == 0:
            return 0.0
        if p <= 0:
            return float(self.min_value)
        if p >= 100:
            return float(self.max_value)
        rank = p / 100.0 * self.count
        seen = 0
        for idx, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            if seen + bucket_count >= rank:
                lower = self.bounds[idx - 1] if idx > 0 else self.lo
                upper = self.bounds[idx] if idx < len(self.bounds) else self.max_value
                lower = max(lower, self.min_value)
                upper = min(upper, self.max_value)
                if upper <= lower:
                    return float(upper)
                fraction = (rank - seen) / bucket_count
                return float(lower + (upper - lower) * fraction)
            seen += bucket_count
        return float(self.max_value)  # pragma: no cover - defensive

    def summary(self) -> dict:
        """The JSON-friendly rollup every exporter renders."""
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min_value if self.count else 0,
            "max": self.max_value if self.count else 0,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }

    def nonzero_buckets(self) -> list[tuple[float, int]]:
        """(upper_bound, count) for each occupied bucket, overflow last as
        ``inf`` — the shape Prometheus exposition needs."""
        out: list[tuple[float, int]] = []
        for idx, bucket_count in enumerate(self.counts):
            if bucket_count:
                upper = self.bounds[idx] if idx < len(self.bounds) else math.inf
                out.append((upper, bucket_count))
        return out

    def __repr__(self) -> str:
        return (
            f"<LogHistogram n={self.count} mean={self.mean:.4g} "
            f"p99={self.percentile(99):.4g}>"
        )
