"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.heap.object_model import FieldKind
from repro.runtime.vm import VirtualMachine

#: Collectors that support the full assertion machinery.
ALL_COLLECTORS = ["marksweep", "semispace", "generational"]


@pytest.fixture
def vm() -> VirtualMachine:
    """A MarkSweep VM with assertions enabled and a roomy heap."""
    return VirtualMachine(heap_bytes=4 << 20)


@pytest.fixture
def tight_vm() -> VirtualMachine:
    """A small-heap VM that collects frequently under allocation."""
    return VirtualMachine(heap_bytes=64 << 10)


@pytest.fixture
def base_vm() -> VirtualMachine:
    """The paper's Base configuration: no assertion infrastructure."""
    return VirtualMachine(heap_bytes=4 << 20, assertions=False, track_paths=False)


@pytest.fixture(params=ALL_COLLECTORS)
def any_vm(request) -> VirtualMachine:
    """Parametrized over all three collectors."""
    return VirtualMachine(heap_bytes=4 << 20, collector=request.param)


@pytest.fixture
def node_class(vm):
    """A linked-list node class on the default vm."""
    return vm.define_class(
        "Node", [("next", FieldKind.REF), ("value", FieldKind.INT)]
    )


def make_node_class(vm: VirtualMachine):
    return vm.define_class(
        "Node", [("next", FieldKind.REF), ("value", FieldKind.INT)]
    )


def build_chain(vm: VirtualMachine, node_cls, length: int, root_name: str = "head"):
    """Build a rooted linked list; returns the list of handles, head first."""
    nodes = []
    with vm.scope("build_chain"):
        prev = None
        for i in range(length):
            node = vm.new(node_cls, value=i)
            if prev is not None:
                prev["next"] = node
            else:
                vm.statics.set_ref(root_name, node.address)
            nodes.append(node)
            prev = node
    return nodes
