"""Ablation abl-paranoid: the paranoid walker is expensive but inert.

The verification layer's acceptance bar: ``paranoid=True`` walks the full
heap and every allocator structure before and after each collection, so
its wall-time cost is allowed to be real — but the walk must be purely
observational.  Every deterministic work counter must be bit-identical to
the walker-free run (the walk counter lives outside ``GcStats`` for
exactly this reason), and a clean workload must finish with zero
``HeapVerificationError`` raises.
"""

from __future__ import annotations

import time

from benchmarks.conftest import trials
from repro.bench.methodology import confidence_interval_90, mean
from repro.runtime.vm import VirtualMachine
from repro.workloads.suite import HEAP_BUDGETS
from repro.workloads.synthetic import PROFILES, run_synthetic

PROFILE = "bloat"  # the GC-heaviest suite member, as in abl-tracing


def _run(paranoid: bool):
    vm = VirtualMachine(
        heap_bytes=HEAP_BUDGETS[PROFILE],
        assertions=False,
        telemetry=False,
        paranoid=paranoid,
    )
    start = time.perf_counter()
    run_synthetic(vm, PROFILES[PROFILE])
    vm.collector.sweep_all()
    wall = time.perf_counter() - start
    return wall, vm.stats.snapshot(), vm.collector.paranoid_walks


def test_paranoid_walker_is_observational(once, figure_report):
    def run():
        on = [_run(True) for _ in range(trials())]
        off = [_run(False) for _ in range(trials())]
        return on, off

    on, off = once(run)
    on_times = [t for t, _s, _w in on]
    off_times = [t for t, _s, _w in off]
    ratio = mean(on_times) / mean(off_times)
    figure_report.append(
        "Ablation abl-paranoid (per-GC wellformedness walks on/off, "
        "wall time on 'bloat'):\n"
        f"  off:      {mean(off_times) * 1e3:.1f} ms "
        f"±{confidence_interval_90(off_times) * 1e3:.1f}\n"
        f"  paranoid: {mean(on_times) * 1e3:.1f} ms "
        f"±{confidence_interval_90(on_times) * 1e3:.1f}\n"
        f"  ratio: {ratio:.3f} ({on[0][2]} walks; counter identity is the gate)"
    )

    # The walker observes; it must never change what the collector does.
    assert on[0][1]["counters"] == off[0][1]["counters"]

    # Walks actually happened on the paranoid leg (pre+post per full GC)
    # and never on the plain leg.
    assert on[0][2] > 0
    assert off[0][2] == 0


def test_paranoid_off_has_no_walker_attribute_cost(once):
    """Off is the default and costs one falsy attribute test per GC."""

    def run():
        vm = VirtualMachine(
            heap_bytes=HEAP_BUDGETS[PROFILE], assertions=False, telemetry=False
        )
        return vm.collector.paranoid, vm.collector.paranoid_walks

    flag, walks = once(run)
    assert flag is False
    assert walks == 0
