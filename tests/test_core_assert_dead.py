"""assert-dead (§2.3.1): the dead header bit checked during tracing."""

import pytest

from repro.core.reporting import AssertionKind
from repro.errors import AssertionUsageError
from repro.heap import header as hdr
from tests.conftest import build_chain


class TestBasicSemantics:
    def test_reachable_object_triggers(self, vm, node_class):
        nodes = build_chain(vm, node_class, 2)
        vm.assertions.assert_dead(nodes[1], site="t")
        vm.gc()
        assert len(vm.engine.log) == 1
        violation = vm.engine.log.violations[0]
        assert violation.kind is AssertionKind.DEAD
        assert violation.type_name == "Node"
        assert violation.site == "t"

    def test_reclaimed_object_satisfies(self, vm, node_class):
        nodes = build_chain(vm, node_class, 2)
        vm.assertions.assert_dead(nodes[1], site="t")
        nodes[0]["next"] = None
        vm.gc()
        assert len(vm.engine.log) == 0
        assert vm.engine.registry.dead_satisfied == 1
        assert vm.assertions.pending_dead() == 0

    def test_dead_bit_set_in_header(self, vm, node_class):
        nodes = build_chain(vm, node_class, 1)
        vm.assertions.assert_dead(nodes[0])
        assert nodes[0].obj.test(hdr.DEAD_BIT)

    def test_not_checked_before_gc(self, vm, node_class):
        """Unlike ordinary assertions, checking is deferred to the collector."""
        nodes = build_chain(vm, node_class, 1)
        vm.assertions.assert_dead(nodes[0], site="deferred")
        assert len(vm.engine.log) == 0  # nothing until a GC runs

    def test_violation_repeats_each_gc_while_reachable(self, vm, node_class):
        nodes = build_chain(vm, node_class, 1)
        vm.assertions.assert_dead(nodes[0], site="t")
        vm.gc()
        vm.gc()
        assert len(vm.engine.log) == 2

    def test_per_instance_not_per_class(self, vm, node_class):
        nodes = build_chain(vm, node_class, 3)
        vm.assertions.assert_dead(nodes[1], site="t")
        vm.gc()
        # Only one violation even though three Nodes are live.
        assert len(vm.engine.log) == 1
        assert vm.engine.log.violations[0].address == nodes[1].obj.address

    def test_call_counter(self, vm, node_class):
        nodes = build_chain(vm, node_class, 3)
        for n in nodes:
            vm.assertions.assert_dead(n)
        assert vm.assertions.call_counts()["assert-dead"] == 3

    def test_assert_on_freed_object_rejected(self, vm, node_class):
        with vm.scope():
            doomed = vm.new(node_class)
        vm.gc()
        with pytest.raises(AssertionUsageError):
            vm.assertions.assert_dead(doomed)

    def test_accepts_raw_address_and_heapobject(self, vm, node_class):
        nodes = build_chain(vm, node_class, 2)
        vm.assertions.assert_dead(nodes[0].address, site="by-address")
        vm.assertions.assert_dead(nodes[1].obj, site="by-object")
        vm.gc()
        assert len(vm.engine.log) == 2


class TestRetraction:
    def test_retract_dead_cancels(self, vm, node_class):
        nodes = build_chain(vm, node_class, 1)
        vm.assertions.assert_dead(nodes[0])
        assert vm.assertions.retract_dead(nodes[0])
        vm.gc()
        assert len(vm.engine.log) == 0
        assert not nodes[0].obj.test(hdr.DEAD_BIT)

    def test_retract_without_assert_returns_false(self, vm, node_class):
        nodes = build_chain(vm, node_class, 1)
        assert not vm.assertions.retract_dead(nodes[0])


class TestNullingIdiom:
    """The Java `x = null` idiom the paper motivates assert-dead with."""

    def test_null_assignment_with_hidden_reference(self, vm, node_class):
        with vm.scope():
            keeper = vm.new(node_class)
            target = vm.new(node_class)
            keeper["next"] = target  # the forgotten second reference
            vm.statics.set_ref("keeper", keeper.address)
            vm.statics.set_ref("target", target.address)
        # Programmer nulls what they believe is the only reference...
        vm.statics.clear_ref("target")
        vm.assertions.assert_dead(target, site="after x = null")
        vm.gc()
        assert len(vm.engine.log) == 1
        # ...and the path report shows who actually holds it.
        path = vm.engine.log.violations[0].path
        assert "keeper" in path.root_description

    def test_null_assignment_correct_case(self, vm, node_class):
        with vm.scope():
            target = vm.new(node_class)
            vm.statics.set_ref("target", target.address)
        vm.statics.clear_ref("target")
        vm.assertions.assert_dead(target, site="after x = null")
        vm.gc()
        assert len(vm.engine.log) == 0
