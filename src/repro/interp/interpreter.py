"""The MiniJ bytecode interpreter.

The interpreter runs *on* the managed runtime: every object a MiniJ program
creates lives in the simulated heap, and the interpreter's own frames
(operand stacks and local slots) are registered as GC roots on the executing
:class:`~repro.runtime.threads.MutatorThread`.  Heap references are held as
:class:`Ref` values so that root enumeration, copy forwarding, and FORCE
reactions all see them.

GC assertions are exposed to MiniJ programs as builtins (``gcAssertDead``,
``gcStartRegion``, ``gcAssertAllDead``, ``gcAssertInstances``,
``gcAssertUnshared``, ``gcAssertOwnedBy``), which makes the quickstart
example read like the paper's own usage: write code, add assertions, run,
and let the collector report violations with full heap paths.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.errors import MiniJRuntimeError, NullReferenceError
from repro.heap.layout import NULL
from repro.heap.object_model import FieldKind, HeapObject
from repro.interp.bytecode import Function, Op
from repro.interp.compiler import CompiledProgram, compile_program, field_kind_for
from repro.interp.parser import parse
from repro.runtime.threads import MutatorThread
from repro.runtime.vm import VirtualMachine


class Ref:
    """A heap reference held by interpreter state (a root when in a frame)."""

    __slots__ = ("address",)

    def __init__(self, address: int):
        self.address = address

    def __repr__(self) -> str:
        return f"<ref {self.address:#x}>"


class InterpFrame:
    """An interpreter frame; registered on the thread as a GC root source."""

    __slots__ = ("function", "locals", "stack")

    def __init__(self, function: Function):
        self.function = function
        self.locals: list = [None] * function.n_locals
        self.stack: list = []

    # Root-source protocol (duck-typed like runtime.threads.Frame).

    def root_entries(self) -> Iterator[tuple[str, int]]:
        fn = self.function.qualname
        names = self.function.local_names
        for i, value in enumerate(self.locals):
            if isinstance(value, Ref) and value.address != NULL:
                name = names[i] if i < len(names) else f"slot{i}"
                yield f"local '{name}' in {fn}", value.address
        for value in self.stack:
            if isinstance(value, Ref) and value.address != NULL:
                yield f"operand stack of {fn}", value.address

    def apply_forwarding(self, fwd: dict[int, int]) -> None:
        for value in self.locals:
            if isinstance(value, Ref):
                new = fwd.get(value.address)
                if new is not None:
                    value.address = new
        for value in self.stack:
            if isinstance(value, Ref):
                new = fwd.get(value.address)
                if new is not None:
                    value.address = new

    def null_out(self, victims: set[int]) -> None:
        for i, value in enumerate(self.locals):
            if isinstance(value, Ref) and value.address in victims:
                self.locals[i] = None
        for i, value in enumerate(self.stack):
            if isinstance(value, Ref) and value.address in victims:
                self.stack[i] = None


def _int_div(a: int, b: int) -> int:
    """Java-style integer division: truncation toward zero."""
    if b == 0:
        raise MiniJRuntimeError("division by zero")
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def _int_rem(a: int, b: int) -> int:
    if b == 0:
        raise MiniJRuntimeError("remainder by zero")
    return a - _int_div(a, b) * b


class Interpreter:
    """Loads and runs MiniJ programs on a VM."""

    def __init__(self, vm: VirtualMachine, echo: bool = False, max_steps: int = 50_000_000):
        self.vm = vm
        self.program: Optional[CompiledProgram] = None
        self.output: list[str] = []
        self.echo = echo
        self.max_steps = max_steps
        self.steps = 0
        self._builtins = {
            "print": (1, self._builtin_print),
            "str": (1, self._builtin_str),
            "len": (1, self._builtin_len),
            "gc": (0, self._builtin_gc),
            "gcMinor": (0, self._builtin_gc_minor),
            "gcAssertDead": (1, self._builtin_assert_dead),
            "gcStartRegion": (0, self._builtin_start_region),
            "gcAssertAllDead": (0, self._builtin_assert_alldead),
            "gcAssertInstances": (2, self._builtin_assert_instances),
            "gcAssertUnshared": (1, self._builtin_assert_unshared),
            "gcAssertOwnedBy": (2, self._builtin_assert_ownedby),
            "violations": (0, self._builtin_violations),
            "heapLive": (0, self._builtin_heap_live),
        }

    # -- loading / running --------------------------------------------------------------

    def load(self, source: str) -> CompiledProgram:
        """Parse, load classes into the VM, and compile to bytecode."""
        self.program = compile_program(parse(source), self.vm)
        return self.program

    def run(self, entry: str = "main", args: tuple = (), thread: Optional[MutatorThread] = None):
        """Run a compiled function; returns its MiniJ return value."""
        if self.program is None:
            raise MiniJRuntimeError("no program loaded; call load(source) first")
        function = self.program.functions.get(entry)
        if function is None:
            raise MiniJRuntimeError(f"no function named {entry!r}")
        thread = thread or self.vm.current_thread
        return self._call(function, list(args), thread)

    # -- the dispatch loop ----------------------------------------------------------------

    def _call(self, function: Function, args: list, thread: MutatorThread):
        expected = len(function.params) + (1 if function.owner else 0)
        if len(args) != expected:
            raise MiniJRuntimeError(
                f"{function.qualname} expects {expected} argument(s), got {len(args)}"
            )
        frame = InterpFrame(function)
        frame.locals[: len(args)] = args
        thread.frames.append(frame)
        try:
            return self._execute(frame, thread)
        finally:
            thread.frames.pop()

    def _execute(self, frame: InterpFrame, thread: MutatorThread):
        vm = self.vm
        heap = vm.heap
        code = frame.function.code
        stack = frame.stack
        pc = 0
        while True:
            self.steps += 1
            if self.steps > self.max_steps:
                raise MiniJRuntimeError(
                    f"instruction budget exceeded ({self.max_steps}) — infinite loop?"
                )
            instr = code[pc]
            op = instr.op
            pc += 1

            if op is Op.PUSH_CONST:
                stack.append(instr.a)
            elif op is Op.PUSH_NULL:
                stack.append(None)
            elif op is Op.LOAD:
                stack.append(frame.locals[instr.a])
            elif op is Op.STORE:
                frame.locals[instr.a] = stack.pop()
            elif op is Op.GET_FIELD:
                obj = self._deref(stack.pop(), instr)
                field = self._field(obj, instr.a, instr)
                value = obj.slots[field.slot]
                if field.kind.holds_address:
                    stack.append(Ref(value) if value != NULL else None)
                else:
                    stack.append(value)
            elif op is Op.PUT_FIELD:
                value = stack.pop()
                obj = self._deref(stack.pop(), instr)
                field = self._field(obj, instr.a, instr)
                if field.kind.is_weak:
                    # Weak stores create no strong edge: no write barrier.
                    obj.slots[field.slot] = self._address_of(value, instr)
                elif field.kind.is_reference:
                    vm.write_ref(obj, field.slot, self._address_of(value, instr))
                else:
                    obj.slots[field.slot] = value
            elif op is Op.ALOAD:
                index = stack.pop()
                obj = self._deref(stack.pop(), instr)
                self._check_index(obj, index, instr)
                value = obj.slots[index]
                if obj.cls.element_kind.is_reference:
                    stack.append(Ref(value) if value != NULL else None)
                else:
                    stack.append(value)
            elif op is Op.ASTORE:
                value = stack.pop()
                index = stack.pop()
                obj = self._deref(stack.pop(), instr)
                self._check_index(obj, index, instr)
                if obj.cls.element_kind.is_reference:
                    vm.write_ref(obj, index, self._address_of(value, instr))
                else:
                    obj.slots[index] = value
            elif op is Op.NEW_OBJECT:
                handle = vm.new(instr.a, thread=thread)
                stack.append(Ref(handle.obj.address))
            elif op is Op.NEW_ARRAY:
                length = stack.pop()
                if not isinstance(length, int) or length < 0:
                    raise MiniJRuntimeError(
                        f"bad array length {length!r} (line {instr.line})"
                    )
                elem = instr.a
                if elem.array_depth > 0 or field_kind_for(elem).is_reference:
                    element = (
                        vm.array_class(str(elem.element()))
                        if elem.array_depth > 0
                        else vm.classes.get(elem.name)
                    )
                else:
                    element = field_kind_for(elem)
                handle = vm.new_array(element, length, thread=thread)
                stack.append(Ref(handle.obj.address))
            elif op is Op.CALL:
                result = self._dispatch_call(instr, stack, thread)
                stack.append(result)
            elif op is Op.CALL_METHOD:
                argc = instr.b
                args = stack[len(stack) - argc :] if argc else []
                del stack[len(stack) - argc :]
                receiver = stack.pop()
                obj = self._deref(receiver, instr)
                method = self.program.resolve_method(obj.cls.name, instr.a)
                if method is None:
                    raise MiniJRuntimeError(
                        f"{obj.cls.name} has no method {instr.a!r} (line {instr.line})"
                    )
                stack.append(self._call(method, [receiver] + args, thread))
            elif op is Op.RETURN:
                return stack.pop()
            elif op is Op.POP:
                stack.pop()
            elif op is Op.DUP:
                stack.append(stack[-1])
            elif op is Op.BINARY:
                right = stack.pop()
                left = stack.pop()
                stack.append(self._binary(instr.a, left, right, instr))
            elif op is Op.UNARY:
                value = stack.pop()
                stack.append(self._unary(instr.a, value, instr))
            elif op is Op.JUMP:
                pc = instr.a
            elif op is Op.JUMP_IF_FALSE:
                cond = stack.pop()
                if not isinstance(cond, bool):
                    raise MiniJRuntimeError(
                        f"condition must be bool, got {type(cond).__name__} "
                        f"(line {instr.line})"
                    )
                if not cond:
                    pc = instr.a
            else:  # pragma: no cover
                raise MiniJRuntimeError(f"unknown opcode {op}")

    def _dispatch_call(self, instr, stack: list, thread: MutatorThread):
        name, argc = instr.a, instr.b
        args = stack[len(stack) - argc :] if argc else []
        del stack[len(stack) - argc :]
        builtin = self._builtins.get(name)
        if builtin is not None:
            expected, fn = builtin
            if argc != expected:
                raise MiniJRuntimeError(
                    f"builtin {name!r} expects {expected} argument(s), got {argc} "
                    f"(line {instr.line})"
                )
            return fn(*args)
        function = self.program.functions.get(name)
        if function is None:
            raise MiniJRuntimeError(f"unknown function {name!r} (line {instr.line})")
        return self._call(function, args, thread)

    # -- helpers ---------------------------------------------------------------------------

    def _deref(self, value, instr) -> HeapObject:
        if value is None:
            raise NullReferenceError(
                f"null dereference in {instr.op.value} (line {instr.line})"
            )
        if not isinstance(value, Ref):
            raise MiniJRuntimeError(
                f"expected an object, got {type(value).__name__} (line {instr.line})"
            )
        return self.vm.heap.get(value.address)

    @staticmethod
    def _field(obj: HeapObject, name: str, instr):
        if obj.cls.is_array or not obj.cls.has_field(name):
            raise MiniJRuntimeError(
                f"{obj.cls.name} has no field {name!r} (line {instr.line})"
            )
        return obj.cls.field(name)

    @staticmethod
    def _check_index(obj: HeapObject, index, instr) -> None:
        if not obj.cls.is_array:
            raise MiniJRuntimeError(
                f"{obj.cls.name} is not an array (line {instr.line})"
            )
        if not isinstance(index, int) or not 0 <= index < len(obj.slots):
            raise MiniJRuntimeError(
                f"index {index!r} out of bounds for length {len(obj.slots)} "
                f"(line {instr.line})"
            )

    @staticmethod
    def _address_of(value, instr) -> int:
        if value is None:
            return NULL
        if isinstance(value, Ref):
            return value.address
        raise MiniJRuntimeError(
            f"cannot store {type(value).__name__} into a reference slot "
            f"(line {instr.line})"
        )

    def _binary(self, op: str, left, right, instr):
        if op in ("==", "!="):
            equal = self._equal(left, right)
            return equal if op == "==" else not equal
        if op == "+" and isinstance(left, str) and isinstance(right, str):
            return left + right
        if isinstance(left, bool) or isinstance(right, bool):
            raise MiniJRuntimeError(
                f"operator {op!r} not defined for bool (line {instr.line})"
            )
        if isinstance(left, (int, float)) and isinstance(right, (int, float)):
            both_int = isinstance(left, int) and isinstance(right, int)
            if op == "+":
                return left + right
            if op == "-":
                return left - right
            if op == "*":
                return left * right
            if op == "/":
                return _int_div(left, right) if both_int else left / right
            if op == "%":
                return _int_rem(left, right) if both_int else left % right
            if op == "<":
                return left < right
            if op == "<=":
                return left <= right
            if op == ">":
                return left > right
            if op == ">=":
                return left >= right
        if isinstance(left, str) and isinstance(right, str) and op in ("<", "<=", ">", ">="):
            return {"<": left < right, "<=": left <= right,
                    ">": left > right, ">=": left >= right}[op]
        raise MiniJRuntimeError(
            f"operator {op!r} not defined for {type(left).__name__} and "
            f"{type(right).__name__} (line {instr.line})"
        )

    @staticmethod
    def _equal(left, right) -> bool:
        left_ref = isinstance(left, Ref) or left is None
        right_ref = isinstance(right, Ref) or right is None
        if left_ref and right_ref:
            la = left.address if isinstance(left, Ref) else NULL
            ra = right.address if isinstance(right, Ref) else NULL
            return la == ra
        if left_ref != right_ref:
            return False
        return left == right

    def _unary(self, op: str, value, instr):
        if op == "-" and isinstance(value, (int, float)) and not isinstance(value, bool):
            return -value
        if op == "!" and isinstance(value, bool):
            return not value
        raise MiniJRuntimeError(
            f"operator {op!r} not defined for {type(value).__name__} "
            f"(line {instr.line})"
        )

    # -- builtins -----------------------------------------------------------------------------

    def _render(self, value) -> str:
        if value is None:
            return "null"
        if isinstance(value, bool):
            return "true" if value else "false"
        if isinstance(value, Ref):
            obj = self.vm.heap.get(value.address)
            return f"{obj.cls.name}@{value.address:#x}"
        return str(value)

    def _builtin_print(self, value):
        text = self._render(value)
        self.output.append(text)
        if self.echo:
            print(text)
        return None

    def _builtin_str(self, value):
        return self._render(value)

    def _builtin_len(self, value):
        if not isinstance(value, Ref):
            raise MiniJRuntimeError("len() needs an array")
        obj = self.vm.heap.get(value.address)
        if not obj.cls.is_array:
            raise MiniJRuntimeError(f"len() needs an array, got {obj.cls.name}")
        return len(obj.slots)

    def _builtin_gc(self):
        self.vm.gc("MiniJ gc()")
        return None

    def _builtin_gc_minor(self):
        self.vm.minor_gc("MiniJ gcMinor()")
        return None

    def _assertions(self):
        if self.vm.assertions is None:
            raise MiniJRuntimeError("this VM was built without GC assertions")
        return self.vm.assertions

    def _builtin_assert_dead(self, value):
        if not isinstance(value, Ref):
            raise MiniJRuntimeError("gcAssertDead() needs an object")
        self._assertions().assert_dead(value.address, site="MiniJ gcAssertDead")
        return None

    def _builtin_start_region(self):
        self._assertions().start_region(self.vm.current_thread, label="MiniJ region")
        return None

    def _builtin_assert_alldead(self):
        return self._assertions().assert_alldead(self.vm.current_thread, site="MiniJ region")

    def _builtin_assert_instances(self, type_name, limit):
        if not isinstance(type_name, str) or not isinstance(limit, int):
            raise MiniJRuntimeError("gcAssertInstances(typeName: str, limit: int)")
        self._assertions().assert_instances(type_name, limit)
        return None

    def _builtin_assert_unshared(self, value):
        if not isinstance(value, Ref):
            raise MiniJRuntimeError("gcAssertUnshared() needs an object")
        self._assertions().assert_unshared(value.address, site="MiniJ gcAssertUnshared")
        return None

    def _builtin_assert_ownedby(self, owner, ownee):
        if not isinstance(owner, Ref) or not isinstance(ownee, Ref):
            raise MiniJRuntimeError("gcAssertOwnedBy() needs two objects")
        self._assertions().assert_ownedby(
            owner.address, ownee.address, site="MiniJ gcAssertOwnedBy"
        )
        return None

    def _builtin_violations(self):
        if self.vm.engine is None:
            return 0
        return len(self.vm.engine.log)

    def _builtin_heap_live(self):
        return self.vm.heap.stats.objects_live


def run_source(
    source: str,
    vm: Optional[VirtualMachine] = None,
    entry: str = "main",
    echo: bool = False,
) -> Interpreter:
    """Convenience: build a VM (if needed), load, and run a MiniJ program."""
    vm = vm or VirtualMachine()
    interp = Interpreter(vm, echo=echo)
    interp.load(source)
    interp.run(entry)
    return interp
