#!/usr/bin/env python
"""The §3.2.2 lusearch case study: 32 IndexSearchers where 1 would do.

The Lucene docs say "for performance reasons it is recommended to open only
one IndexSearcher and use it for all of your searches".  Asserting
assert-instances(IndexSearcher, 1) reveals that the benchmark opens one per
thread — 32 of them.  Run:

    python examples/lusearch_singleton.py
"""

from repro import AssertionKind, VirtualMachine
from repro.workloads.lusearch import LusearchConfig, run_lusearch

CONFIG = dict(threads=32, queries_per_thread=8, ndocs=80, terms_per_doc=10)


def main():
    print("lusearch with one IndexSearcher per thread (the benchmark's code):")
    vm = VirtualMachine(heap_bytes=16 << 20)
    result = run_lusearch(
        vm, LusearchConfig(**CONFIG, assert_single_searcher=True)
    )
    print(
        f"  queries={result.queries} hits={result.hits} "
        f"searchers created={result.searchers_created} "
        f"live at mid-run GC={result.peak_live_searchers}"
    )
    violation = vm.engine.log.of_kind(AssertionKind.INSTANCES)[0]
    print()
    for row in violation.render().splitlines():
        print("  " + row)
    print(
        "\n  -> The paper's finding exactly: '32 instances of IndexSearcher\n"
        "     are live, one for each thread performing searches.'\n"
    )

    print("repaired: one shared IndexSearcher across all threads:")
    vm = VirtualMachine(heap_bytes=16 << 20)
    result = run_lusearch(
        vm,
        LusearchConfig(**CONFIG, assert_single_searcher=True, share_searcher=True),
    )
    print(
        f"  queries={result.queries} hits={result.hits} "
        f"searchers created={result.searchers_created} "
        f"violations={result.violations}"
    )
    print(
        "\n  -> 'The library code could include an assert-instances assertion\n"
        "     to warn a user if he tries to use more than one IndexSearcher.'"
    )


if __name__ == "__main__":
    main()
