"""pseudojbb: the SPEC JBB2000 analog workload (entities, B-tree, driver)."""

from repro.workloads.jbb.btree import LongBTree
from repro.workloads.jbb.driver import JbbConfig, JbbResult, PseudoJbb, run_pseudojbb
from repro.workloads.jbb.entities import (
    build_company,
    define_jbb_classes,
    destroy_order,
    districts_of,
    new_order,
    order_table_of,
    process_order,
)

__all__ = [
    "LongBTree",
    "JbbConfig",
    "JbbResult",
    "PseudoJbb",
    "run_pseudojbb",
    "build_company",
    "define_jbb_classes",
    "destroy_order",
    "districts_of",
    "new_order",
    "order_table_of",
    "process_order",
]
