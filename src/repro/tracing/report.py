"""Span analysis: per-phase aggregation and the piggyback-cost report.

Two consumers of one recording:

* :func:`aggregate_spans` replays the begin/end stream into per-name
  ``count / total / self`` rows (self time = total minus the time spent in
  child spans), the table behind ``repro trace report`` and the "hottest
  phases" pane of ``repro top``.
* :func:`piggyback_report` measures the paper's "assertion checking
  piggybacks on the collector's existing work" claim (§2, §3.1) as numbers:
  what fraction of the run's cumulative mark time was plain tracing vs.
  §2.7 path bookkeeping vs. inlined header checks, plus the directly-timed
  §2.5.2 ownership phase.  Because one mark drain is a fused loop, the
  split cannot be observed in situ without perturbing it — instead the
  final heap is re-traced under each drain specialization (plain / paths /
  paths+engine) to calibrate unit costs, which then decompose the run's
  own deterministic work counters.  The replay is read-only: throwaway
  ``GcStats``, mark bits cleared after each leg, instance counters
  restored.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Iterable, Optional

from repro.gc.stats import GcStats
from repro.gc.tracer import Tracer
from repro.heap import header as _hdr

if TYPE_CHECKING:
    from repro.runtime.vm import VirtualMachine

#: Trace-replay repetitions per leg; the minimum is used (interpreter noise
#: only ever adds time, so min is the best estimator of the true cost).
REPLAY_TRIALS = 3


# -- span aggregation --------------------------------------------------------------


def aggregate_spans(events: Iterable[tuple]) -> dict[str, dict]:
    """Replay a recorder event stream into per-span-name aggregates.

    Returns ``{name: {"count", "total_s", "self_s", "max_s"}}``.  Tolerates
    an unclosed tail (a live recording read mid-span contributes nothing
    for the still-open frames).
    """
    out: dict[str, dict] = {}
    # Stack frames: [name, begin_ts, child_seconds].
    stack: list[list] = []
    for event in events:
        ph = event[0]
        if ph == "B":
            stack.append([event[1], event[3], 0.0])
        elif ph == "X":
            # Complete span on a synthetic worker track: self-contained
            # duration, no stack interaction (worker lanes are flat), and —
            # living on its own track — it is not a child of whatever main
            # span happens to be open.
            name, duration = event[1], event[4]
            row = out.get(name)
            if row is None:
                out[name] = {
                    "count": 1,
                    "total_s": duration,
                    "self_s": duration,
                    "max_s": duration,
                }
            else:
                row["count"] += 1
                row["total_s"] += duration
                row["self_s"] += duration
                if duration > row["max_s"]:
                    row["max_s"] = duration
        elif ph == "E":
            if not stack:
                continue  # stray end (never produced by the recorder)
            name, begin_ts, child_s = stack.pop()
            duration = event[2] - begin_ts
            row = out.get(name)
            if row is None:
                out[name] = {
                    "count": 1,
                    "total_s": duration,
                    "self_s": duration - child_s,
                    "max_s": duration,
                }
            else:
                row["count"] += 1
                row["total_s"] += duration
                row["self_s"] += duration - child_s
                if duration > row["max_s"]:
                    row["max_s"] = duration
            if stack:
                stack[-1][2] += duration
    return out


def render_span_table(aggregates: dict[str, dict], indent: str = "") -> str:
    """The fixed-width per-phase table (sorted by total time, descending)."""
    if not aggregates:
        return f"{indent}(no spans recorded)"
    lines = [
        f"{indent}{'span':<18} {'count':>7} {'total':>10} {'self':>10} "
        f"{'mean':>9} {'max':>9}"
    ]
    ranked = sorted(aggregates.items(), key=lambda kv: kv[1]["total_s"], reverse=True)
    for name, row in ranked:
        mean_s = row["total_s"] / row["count"]
        lines.append(
            f"{indent}{name:<18} {row['count']:>7} "
            f"{row['total_s'] * 1e3:>8.2f}ms {row['self_s'] * 1e3:>8.2f}ms "
            f"{mean_s * 1e6:>7.1f}us {row['max_s'] * 1e3:>7.2f}ms"
        )
    return "\n".join(lines)


# -- piggyback-cost attribution ----------------------------------------------------


class _NullInlineEngine:
    """An engine whose per-object duties are *only* the inlined fast path.

    Declaring ``INLINE_HEADER_CHECKS`` selects the same fused drain the real
    assertion engine uses (``_drain_paths_engine``: header-bit checks and
    instance counting in the loop), while the slow hooks — reached only
    when leftover ``DEAD``/``OWNEE``/``UNSHARED`` header bits show actual
    assertion work — do nothing, so replaying a heap that still carries
    assertion bits stays read-only.
    """

    INLINE_HEADER_CHECKS = True

    @staticmethod
    def on_first_encounter_slow(obj, tracer, parent) -> None:
        pass

    @staticmethod
    def on_repeat_encounter_slow(obj, tracer, parent) -> None:
        pass

    # The root-scan path (`Tracer._reach`) uses the general hooks.
    @staticmethod
    def on_first_encounter(obj, tracer, parent) -> None:
        pass

    @staticmethod
    def on_repeat_encounter(obj, tracer, parent) -> None:
        pass


def _clear_marks(heap) -> None:
    unmark = ~_hdr.MARK_BIT
    for obj in heap:
        obj.status &= unmark


def _replay_leg(
    vm: "VirtualMachine", roots: list, engine, track_paths: bool
) -> tuple[float, GcStats]:
    """Trace the live heap once under one drain specialization."""
    best: Optional[float] = None
    stats: Optional[GcStats] = None
    for _ in range(REPLAY_TRIALS):
        trial = GcStats()
        tracer = Tracer(vm.heap, trial, engine=engine, track_paths=track_paths)
        t0 = time.perf_counter()
        tracer.trace(roots)
        elapsed = time.perf_counter() - t0
        _clear_marks(vm.heap)
        if best is None or elapsed < best:
            best = elapsed
            stats = trial
    return best or 0.0, stats or GcStats()


def piggyback_report(vm: "VirtualMachine") -> dict:
    """Decompose the run's cumulative mark time into piggyback components.

    Requires the workload to be finished; forces ``sweep_all()`` so the
    heap table is exact and every mark bit is clear before replaying.
    """
    collector = vm.collector
    collector.sweep_all()
    heap = vm.heap
    run = vm.stats

    # A finished workload has usually torn down its roots, which would make
    # the calibration trace a no-op; fall back to rooting every residual
    # heap object so the unit costs are still measured on real object
    # graphs (the costs are per-edge/per-object, so the root set's identity
    # does not matter, only that the trace does representative work).
    roots = list(vm.root_entries())
    probe = Tracer(heap, GcStats(), engine=None, track_paths=False)
    probe.trace(roots)
    root_source = "run"
    if probe.stats.objects_traced == 0:
        roots = [("replay: residual heap", obj.address) for obj in heap]
        root_source = "synthetic (whole heap)"
    _clear_marks(heap)

    # Instance counters are bumped by the inline-engine leg; save/restore.
    limited = {
        obj.cls for obj in heap if obj.cls.instance_limit is not None
    }
    saved_counts = {cls: cls.instance_count for cls in limited}
    try:
        t_plain, s_plain = _replay_leg(vm, roots, engine=None, track_paths=False)
        t_paths, s_paths = _replay_leg(vm, roots, engine=None, track_paths=True)
        t_engine, s_engine = _replay_leg(
            vm, roots, _NullInlineEngine(), track_paths=True
        )
    finally:
        for cls, count in saved_counts.items():
            cls.instance_count = count

    edges = s_plain.edges_traced
    tagged = s_paths.path_entries_tagged
    checks = s_engine.header_bit_checks
    per_edge = t_plain / edges if edges else 0.0
    per_tag = max(0.0, t_paths - t_plain) / tagged if tagged else 0.0
    per_check = max(0.0, t_engine - t_paths) / checks if checks else 0.0

    # Decompose the run's own cumulative mark time via its work counters.
    # The unit-cost estimates carry replay noise, so when they overshoot the
    # measured total they are scaled down proportionally; the components
    # always sum to exactly ``mark_seconds``.
    mark_s = run.mark_seconds
    base_raw = run.edges_traced * per_edge
    path_raw = run.path_entries_tagged * per_tag
    check_raw = run.header_bit_checks * per_check
    raw_sum = base_raw + path_raw + check_raw
    if raw_sum > mark_s > 0:
        scale = mark_s / raw_sum
        base_s, path_s, check_s = (
            base_raw * scale, path_raw * scale, check_raw * scale,
        )
        other_s = 0.0
    else:
        scale = 1.0
        base_s, path_s, check_s = base_raw, path_raw, check_raw
        other_s = max(0.0, mark_s - raw_sum)

    def _component(seconds: float) -> dict:
        return {
            "seconds": seconds,
            "pct_of_mark": (100.0 * seconds / mark_s) if mark_s else 0.0,
        }

    gc_s = run.gc_seconds
    ownership_s = run.ownership_phase_seconds
    return {
        "mark_seconds": mark_s,
        "gc_seconds": gc_s,
        "components": {
            "plain_trace": _component(base_s),
            "path_bookkeeping": _component(path_s),
            "inline_header_checks": _component(check_s),
            "other": _component(other_s),
        },
        "ownership_phase": {
            "seconds": ownership_s,
            "pct_of_gc": (100.0 * ownership_s / gc_s) if gc_s else 0.0,
        },
        "run_counters": {
            "edges_traced": run.edges_traced,
            "path_entries_tagged": run.path_entries_tagged,
            "header_bit_checks": run.header_bit_checks,
        },
        "replay": {
            "live_objects": len(heap),
            "edges": edges,
            "roots": root_source,
            "calibration_scale": scale,
            "trials": REPLAY_TRIALS,
            "leg_seconds": {
                "plain": t_plain,
                "paths": t_paths,
                "paths_engine": t_engine,
            },
            "unit_costs_ns": {
                "per_edge": per_edge * 1e9,
                "per_path_tag": per_tag * 1e9,
                "per_header_check": per_check * 1e9,
            },
        },
    }


def render_piggyback(report: dict, indent: str = "") -> str:
    """Human-readable piggyback-cost report (the §3.1 decomposition)."""
    lines = [
        f"{indent}mark_drain attribution "
        f"(of {report['mark_seconds'] * 1e3:.2f}ms cumulative mark time):"
    ]
    labels = {
        "plain_trace": "plain tracing (Base)",
        "path_bookkeeping": "path bookkeeping (low-bit tagging)",
        "inline_header_checks": "inlined header checks",
        "other": "other (root scan, dispatch, slow hooks)",
    }
    for key, label in labels.items():
        component = report["components"][key]
        lines.append(
            f"{indent}  {label:<38} {component['pct_of_mark']:>6.1f}%  "
            f"({component['seconds'] * 1e3:.2f}ms)"
        )
    ownership = report["ownership_phase"]
    lines.append(
        f"{indent}ownership phase (measured directly):   "
        f"{ownership['pct_of_gc']:>6.1f}% of GC time "
        f"({ownership['seconds'] * 1e3:.2f}ms)"
    )
    units = report["replay"]["unit_costs_ns"]
    lines.append(
        f"{indent}unit costs (replayed {report['replay']['live_objects']} live "
        f"objects, {report['replay']['edges']} edges, "
        f"min of {report['replay']['trials']} trials): "
        f"{units['per_edge']:.0f}ns/edge, "
        f"+{units['per_path_tag']:.0f}ns/path-tag, "
        f"+{units['per_header_check']:.0f}ns/header-check"
    )
    return "\n".join(lines)
