"""In-pause span tracing: phase spans, Perfetto export, mark attribution.

The observability ladder so far: telemetry (PR 1) records one event per
collection; snapshots (PR 3) record the heap at a collection.  This package
records what happens *inside* a collection — a strictly nested span per GC
phase (``collect`` → ``prologue`` / ``pause`` → ``ownership_phase`` /
``mark`` → ``root_scan`` / ``mark_drain`` / ``sweep``, plus
``lazy_sweep_slice`` between pauses), assertion-lifecycle instants, and
counter tracks — exported as Chrome ``trace_event`` JSON that Perfetto and
chrome://tracing load directly.

Entry points:

* :class:`~repro.tracing.spans.SpanTracer` — the recorder; a VM built with
  ``tracing=True`` owns one and shares it with its collector.
* :mod:`~repro.tracing.export` — Perfetto-loadable JSON + the validator the
  schema test and CI use.
* :mod:`~repro.tracing.report` — per-phase aggregation and the
  piggyback-cost attribution report (``repro trace report``).
* :mod:`~repro.tracing.flame` — collapsed-stack flamegraph of mark work by
  (object type, allocation site).
* :mod:`~repro.tracing.top` — the live ``repro top`` terminal view.
"""

from repro.tracing.export import (
    TRACE_SCHEMA,
    chrome_trace_events,
    trace_payload,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.tracing.flame import collapsed_stacks, write_flamegraph
from repro.tracing.report import (
    aggregate_spans,
    piggyback_report,
    render_piggyback,
    render_span_table,
)
from repro.tracing.spans import MARK_ATTRIBUTION_UNTAGGED, SpanTracer
from repro.tracing.top import render_frame, run_top

__all__ = [
    "MARK_ATTRIBUTION_UNTAGGED",
    "SpanTracer",
    "TRACE_SCHEMA",
    "aggregate_spans",
    "chrome_trace_events",
    "collapsed_stacks",
    "piggyback_report",
    "render_frame",
    "render_piggyback",
    "render_span_table",
    "run_top",
    "trace_payload",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_flamegraph",
]
