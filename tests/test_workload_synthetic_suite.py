"""Synthetic profiles, the suite registry, and the scheduler."""

import pytest

from repro.runtime.scheduler import Scheduler
from repro.runtime.vm import VirtualMachine
from repro.workloads.suite import HEAP_BUDGETS, build_suite
from repro.workloads.synthetic import PROFILES, SyntheticProfile, run_synthetic


class TestSyntheticKernel:
    def test_runs_and_allocates(self):
        vm = VirtualMachine(heap_bytes=1 << 20, assertions=False)
        profile = SyntheticProfile(name="t", iterations=5, clusters_per_iteration=10)
        result = run_synthetic(vm, profile)
        assert result.iterations == 5
        assert result.objects_allocated > 0
        assert result.clusters_promoted > 0

    def test_retained_cap_bounds_live_set(self):
        vm = VirtualMachine(heap_bytes=4 << 20, assertions=False)
        profile = SyntheticProfile(
            name="t", iterations=20, clusters_per_iteration=40,
            promote_every=1, retained_cap=10,
        )
        run_synthetic(vm, profile)
        vm.gc()
        live = vm.heap.stats.objects_live
        # 10 clusters x (cluster_size + payload) + vector overhead.
        assert live < 10 * (profile.cluster_size + 1) + 20

    def test_deterministic(self):
        results = []
        for _ in range(2):
            vm = VirtualMachine(heap_bytes=1 << 20, assertions=False)
            results.append(run_synthetic(vm, PROFILES["antlr"]))
        assert results[0] == results[1]

    def test_gc_happens_at_budgeted_heap(self):
        profile = PROFILES["antlr"]
        vm = VirtualMachine(heap_bytes=HEAP_BUDGETS["antlr"], assertions=False)
        run_synthetic(vm, profile)
        assert vm.stats.collections > 0

    def test_all_profiles_complete_at_budget(self):
        for name, profile in PROFILES.items():
            vm = VirtualMachine(heap_bytes=HEAP_BUDGETS[name], assertions=False)
            result = run_synthetic(vm, profile)
            assert result.iterations == profile.iterations, name


class TestSuiteRegistry:
    def test_contains_paper_benchmarks(self):
        suite = build_suite()
        for name in ("antlr", "bloat", "db", "lusearch", "pseudojbb", "compress"):
            assert name in suite

    def test_every_entry_has_budget(self):
        suite = build_suite()
        for name, entry in suite.items():
            assert entry.heap_bytes == HEAP_BUDGETS[name]

    def test_only_db_and_pseudojbb_have_asserted_variants(self):
        suite = build_suite()
        asserted = {n for n, e in suite.items() if e.run_with_assertions is not None}
        assert asserted == {"db", "pseudojbb"}

    def test_asserted_variant_registers_assertions(self):
        suite = build_suite()
        vm = VirtualMachine(heap_bytes=suite["db"].heap_bytes)
        suite["db"].run_with_assertions(vm)
        counts = vm.assertions.call_counts()
        assert counts["assert-ownedby"] > 0
        assert counts["assert-dead"] > 0


class TestScheduler:
    def test_round_robin_interleaving(self):
        vm = VirtualMachine(heap_bytes=1 << 20)
        scheduler = Scheduler(vm)
        trace = []

        def worker(tag):
            def body(vm, thread):
                for i in range(3):
                    trace.append(f"{tag}{i}")
                    yield
            return body

        scheduler.spawn(worker("a"), "a")
        scheduler.spawn(worker("b"), "b")
        scheduler.run()
        assert trace == ["a0", "b0", "a1", "b1", "a2", "b2"]

    def test_tasks_get_their_own_threads(self):
        vm = VirtualMachine(heap_bytes=1 << 20)
        scheduler = Scheduler(vm)
        seen = []

        def body(vm, thread):
            seen.append(vm.current_thread is thread)
            yield

        scheduler.spawn(body, "w")
        scheduler.run()
        assert seen == [True]
        assert vm.current_thread is vm.main_thread

    def test_max_steps_bound(self):
        vm = VirtualMachine(heap_bytes=1 << 20)
        scheduler = Scheduler(vm)

        def forever(vm, thread):
            while True:
                yield

        scheduler.spawn(forever, "loop")
        steps = scheduler.run(max_steps=10)
        assert steps == 10
        assert scheduler.pending == 1

    def test_completed_tracked(self):
        vm = VirtualMachine(heap_bytes=1 << 20)
        scheduler = Scheduler(vm)

        def once(vm, thread):
            yield

        tasks = scheduler.spawn_all([once, once], prefix="w")
        scheduler.run()
        assert all(t.finished for t in tasks)
        assert len(scheduler.completed) == 2
