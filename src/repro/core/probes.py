"""QVM-style heap probes — the §4.1 immediate-checking comparator.

The paper contrasts GC assertions with QVM's *heap probes* (Arnold, Vechev
& Yahav, OOPSLA 2008):

    "Heap probes are performed immediately at the point the probe is
    requested.  QVM triggers a garbage collection for each heap probe that
    must be checked, incurring a hefty overhead that is mitigated by
    sampling the heap probes rather than checking every single one.  Our
    system, on the other hand, batches assertions together and checks them
    all in a single heap traversal during a regularly scheduled collection.
    As a result, checking is much more efficient, but it cannot verify
    properties at the exact point the assertion is made."

:class:`HeapProbes` implements that semantics on our runtime so the
trade-off can be measured (see ``benchmarks/test_comparison_qvm.py``):
each executed probe forces a full-heap collection and answers the question
*at that exact program point*; a deterministic 1-in-N sampling rate
mitigates the cost exactly as QVM does — at the price of unchecked probes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Union

from repro.heap.layout import NULL
from repro.heap.object_model import ClassDescriptor, HeapObject

if TYPE_CHECKING:
    from repro.runtime.vm import VirtualMachine


class ProbeStats:
    __slots__ = ("requested", "executed", "sampled_out", "gcs_triggered")

    def __init__(self) -> None:
        self.requested = 0
        self.executed = 0
        self.sampled_out = 0
        self.gcs_triggered = 0

    def snapshot(self) -> dict:
        return {
            "requested": self.requested,
            "executed": self.executed,
            "sampled_out": self.sampled_out,
            "gcs_triggered": self.gcs_triggered,
        }


class HeapProbes:
    """Immediate, GC-triggering heap queries with 1-in-N sampling."""

    def __init__(self, vm: "VirtualMachine", sampling: int = 1):
        if sampling < 1:
            raise ValueError(f"sampling rate must be >= 1, got {sampling}")
        self.vm = vm
        self.sampling = sampling
        self.stats = ProbeStats()

    # -- sampling ------------------------------------------------------------------

    def _should_execute(self) -> bool:
        self.stats.requested += 1
        if (self.stats.requested - 1) % self.sampling != 0:
            self.stats.sampled_out += 1
            return False
        self.stats.executed += 1
        return True

    def _collect(self) -> None:
        self.stats.gcs_triggered += 1
        self.vm.gc(reason="heap probe")

    @staticmethod
    def _resolve(target) -> HeapObject:
        obj = getattr(target, "obj", target)
        if not isinstance(obj, HeapObject):
            raise TypeError(f"cannot probe {target!r}")
        return obj

    # -- probes ---------------------------------------------------------------------

    def probe_dead(self, target) -> Optional[bool]:
        """Is this object garbage *right now*?

        Triggers a full collection and reports whether the object was
        reclaimed by it.  Returns None when sampled out (the QVM
        mitigation: unchecked probes cost nothing but answer nothing).
        """
        obj = self._resolve(target)
        if not self._should_execute():
            return None
        self._collect()
        return obj.is_freed

    def probe_instances(self, cls: Union[ClassDescriptor, str]) -> Optional[int]:
        """How many instances of ``cls`` are live *right now*?"""
        if isinstance(cls, str):
            cls = self.vm.classes.get(cls)
        if not self._should_execute():
            return None
        self._collect()
        return sum(1 for obj in self.vm.heap if obj.cls.is_subclass_of(cls))

    def probe_unshared(self, target) -> Optional[bool]:
        """Does this object have at most one incoming heap reference
        *right now*?  Collects, then scans the live heap counting edges."""
        obj = self._resolve(target)
        if not self._should_execute():
            return None
        self._collect()
        if obj.is_freed:
            return True
        address = obj.address
        incoming = 0
        for other in self.vm.heap:
            for ref in other.reference_slots():
                if ref == address:
                    incoming += 1
                    if incoming > 1:
                        return False
        return True

    def probe_reachable_from(self, source, target) -> Optional[bool]:
        """Is ``target`` reachable from ``source``?  (The ownership question
        asked point-wise.)  Collects first so the answer reflects live state."""
        source_obj = self._resolve(source)
        target_obj = self._resolve(target)
        if not self._should_execute():
            return None
        self._collect()
        if source_obj.is_freed or target_obj.is_freed:
            return False
        heap = self.vm.heap
        seen: set[int] = set()
        stack = [source_obj.address]
        wanted = target_obj.address
        while stack:
            address = stack.pop()
            if address in seen:
                continue
            seen.add(address)
            if address == wanted:
                return True
            for ref in heap.get(address).reference_slots():
                if ref != NULL and ref not in seen:
                    stack.append(ref)
        return False
