"""Segregated-fit size classes and free lists for the MarkSweep space.

The MarkSweep collector in the paper (Jikes RVM's MMTk MarkSweep plan)
allocates from segregated free lists: each allocation is rounded up to one
of a fixed set of *size classes* and served from a per-class list of free
cells.  The simulator reproduces that structure: small sizes get exact
word-granularity classes, larger sizes geometric classes, and anything past
the largest class is treated as a "large object" with an exact-size cell.
"""

from __future__ import annotations

from repro.errors import HeapError
from repro.heap.layout import WORD_BYTES, align_up

#: Exact word-multiple classes up to this size.
_SMALL_LIMIT = 128
#: Geometric (×1.25, word aligned) classes up to this size.
_LARGE_LIMIT = 8192


def _build_size_classes() -> tuple[int, ...]:
    classes = list(range(WORD_BYTES, _SMALL_LIMIT + 1, WORD_BYTES))
    size = _SMALL_LIMIT
    while size < _LARGE_LIMIT:
        size = align_up(int(size * 1.25) + 1)
        classes.append(size)
    return tuple(classes)


#: The size classes, ascending.
SIZE_CLASSES: tuple[int, ...] = _build_size_classes()


def _build_class_lookup() -> tuple[int, ...]:
    """``lookup[nbytes] -> cell`` for every request up to the largest class."""
    lookup = [0] * (SIZE_CLASSES[-1] + 1)
    cls_iter = iter(SIZE_CLASSES)
    cell = next(cls_iter)
    for nbytes in range(1, SIZE_CLASSES[-1] + 1):
        if nbytes > cell:
            cell = next(cls_iter)
        lookup[nbytes] = cell
    return tuple(lookup)


#: Direct-indexed size-class table: the allocation fast path replaces the
#: old per-request binary search with one list index.
SIZE_CLASS_LOOKUP: tuple[int, ...] = _build_class_lookup()


def size_class_for(nbytes: int) -> int:
    """Return the cell size used for an allocation of ``nbytes``.

    Requests beyond the largest class are "large objects": they get an
    exact (word-aligned) cell of their own.
    """
    if nbytes <= 0:
        raise HeapError(f"cannot size a {nbytes}-byte allocation")
    if nbytes > SIZE_CLASSES[-1]:
        return align_up(nbytes)
    return SIZE_CLASS_LOOKUP[nbytes]


class FreeList:
    """Per-size-class lists of free cell addresses.

    ``push``/``pop`` are the sweep-phase and allocation-path operations.
    The free list tracks how many bytes it holds so spaces can report
    fragmentation-style statistics.
    """

    __slots__ = ("_cells", "free_bytes")

    def __init__(self) -> None:
        self._cells: dict[int, list[int]] = {}
        self.free_bytes = 0

    def push(self, address: int, cell_bytes: int) -> None:
        """Return a cell to the free list (sweep phase)."""
        self._cells.setdefault(cell_bytes, []).append(address)
        self.free_bytes += cell_bytes

    def push_many(self, addresses: list[int], cell_bytes: int) -> None:
        """Return a batch of same-class cells with one list splice.

        The sweep frees chunk-at-a-time; extending the bucket once per
        chunk replaces the per-object ``push`` churn of the eager sweep.
        """
        if not addresses:
            return
        bucket = self._cells.get(cell_bytes)
        if bucket is None:
            self._cells[cell_bytes] = list(addresses)
        else:
            bucket.extend(addresses)
        self.free_bytes += cell_bytes * len(addresses)

    def pop(self, cell_bytes: int) -> int | None:
        """Take a free cell of exactly ``cell_bytes``, or None."""
        bucket = self._cells.get(cell_bytes)
        if not bucket:
            return None
        self.free_bytes -= cell_bytes
        return bucket.pop()

    def pop_run(self, cell_bytes: int, limit: int) -> list[int]:
        """Take up to ``limit`` free cells of one class in pop (LIFO) order."""
        bucket = self._cells.get(cell_bytes)
        if not bucket:
            return []
        take = min(limit, len(bucket))
        run = bucket[-take:][::-1]
        del bucket[-take:]
        self.free_bytes -= cell_bytes * take
        return run

    def cell_count(self) -> int:
        return sum(len(b) for b in self._cells.values())

    def clear(self) -> None:
        self._cells.clear()
        self.free_bytes = 0
