"""The object heap: the table of live objects and global heap accounting.

The :class:`ObjectHeap` is shared by every collector.  It owns the mapping
from word-aligned addresses to :class:`~repro.heap.object_model.HeapObject`
instances, assigns identity hashes, poisons objects on free (so
use-after-free errors surface immediately instead of silently corrupting the
simulation), and keeps cumulative allocation statistics.

Address-space management (which addresses are handed out, when the heap is
"full") belongs to the :mod:`~repro.heap.space` policies owned by each
collector; the heap only checks invariants and stores objects.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.errors import InvalidAddressError, UseAfterFreeError
from repro.heap import header as hdr
from repro.heap.layout import NULL, is_aligned
from repro.heap.object_model import ClassDescriptor, HeapObject

#: Address stride between distinct spaces so their ranges never collide.
SPACE_STRIDE = 1 << 40


class HeapStats:
    """Cumulative mutator-visible heap statistics."""

    __slots__ = (
        "objects_allocated",
        "bytes_allocated",
        "objects_freed",
        "bytes_freed",
    )

    def __init__(self) -> None:
        self.objects_allocated = 0
        self.bytes_allocated = 0
        self.objects_freed = 0
        self.bytes_freed = 0

    @property
    def objects_live(self) -> int:
        return self.objects_allocated - self.objects_freed

    def snapshot(self) -> dict:
        return {
            "objects_allocated": self.objects_allocated,
            "bytes_allocated": self.bytes_allocated,
            "objects_freed": self.objects_freed,
            "bytes_freed": self.bytes_freed,
            "objects_live": self.objects_live,
        }


class ObjectHeap:
    """Table of all live heap objects, keyed by address."""

    def __init__(self) -> None:
        self._objects: dict[int, HeapObject] = {}
        self.stats = HeapStats()
        self._hash_counter = 1
        #: Monotone install/relocate stamp (see HeapObject.alloc_seq).
        self.install_seq = 0
        #: Sum of live object sizes, maintained on install/evict so
        #: ``live_bytes()`` is O(1) instead of a full-table walk.
        self._live_bytes = 0
        #: Live objects that carry weak slots (the collector's weak-ref
        #: processing list; maintained on install/evict).
        self.weak_holders: set[HeapObject] = set()

    # -- creation / destruction ----------------------------------------------

    def install(self, address: int, cls: ClassDescriptor, length: int = 0) -> HeapObject:
        """Create an object at ``address`` (already reserved by a space)."""
        if not is_aligned(address):
            raise InvalidAddressError(f"unaligned object address {address:#x}")
        if address in self._objects:
            raise InvalidAddressError(f"address {address:#x} is already occupied")
        obj = HeapObject(address, cls, length)
        obj.status |= (self._hash_counter << hdr.HASH_SHIFT)
        self._hash_counter += 1
        self.install_seq += 1
        obj.alloc_seq = self.install_seq
        self._objects[address] = obj
        if obj.has_weak_slots:
            self.weak_holders.add(obj)
        cls.allocation_count += 1
        self.stats.objects_allocated += 1
        size = obj.size_bytes
        self.stats.bytes_allocated += size
        self._live_bytes += size
        return obj

    def evict(self, obj: HeapObject) -> None:
        """Remove a dead object from the table and poison it."""
        found = self._objects.get(obj.address)
        if found is not obj:
            raise InvalidAddressError(
                f"evicting {obj!r} but table holds {found!r} at {obj.address:#x}"
            )
        del self._objects[obj.address]
        self.weak_holders.discard(obj)
        self.stats.objects_freed += 1
        size = obj.size_bytes
        self.stats.bytes_freed += size
        self._live_bytes -= size
        obj.set(hdr.FREED_BIT)

    def relocate(self, obj: HeapObject, new_address: int) -> None:
        """Move an object to a new address (copying collector)."""
        if not is_aligned(new_address):
            raise InvalidAddressError(f"unaligned target address {new_address:#x}")
        if new_address in self._objects:
            raise InvalidAddressError(f"relocation target {new_address:#x} occupied")
        del self._objects[obj.address]
        obj.address = new_address
        self.install_seq += 1
        obj.alloc_seq = self.install_seq
        self._objects[new_address] = obj

    # -- lookup ----------------------------------------------------------------

    def get(self, address: int) -> HeapObject:
        """Dereference an address; raises on null, dangling, or freed refs."""
        if address == NULL:
            raise InvalidAddressError("dereference of null address")
        obj = self._objects.get(address)
        if obj is None:
            raise InvalidAddressError(f"no live object at {address:#x}")
        if obj.is_freed:
            raise UseAfterFreeError(f"object at {address:#x} was reclaimed")
        return obj

    def maybe(self, address: int) -> Optional[HeapObject]:
        """Like :meth:`get` but returns None for null/dangling addresses."""
        if address == NULL:
            return None
        return self._objects.get(address)

    def contains(self, address: int) -> bool:
        return address in self._objects

    def __len__(self) -> int:
        return len(self._objects)

    def __iter__(self) -> Iterator[HeapObject]:
        return iter(self._objects.values())

    def objects(self) -> list[HeapObject]:
        """Snapshot list of all objects (safe to mutate the heap while iterating)."""
        return list(self._objects.values())

    def address_table(self) -> dict[int, HeapObject]:
        """The live address -> object table itself, for GC-internal hot loops.

        The tracer and the chunked sweep resolve addresses through this
        table directly, skipping :meth:`get`'s null/dangling/freed checks —
        the collector owns the heap during a pause, so a miss there is a
        collector bug, not a mutator error.  Mutator dereferences must keep
        using :meth:`get`.  Callers must not mutate the dict.
        """
        return self._objects

    def live_bytes(self) -> int:
        """Total bytes occupied by live objects (O(1); counter-maintained)."""
        return self._live_bytes

    def live_bytes_slow(self) -> int:
        """Recompute live bytes by walking the table (debug cross-check)."""
        return sum(obj.size_bytes for obj in self._objects.values())
