"""``python -m repro monitor`` — live SLO/utilization terminal view.

Same shape as :mod:`repro.tracing.top`: the workload runs in a daemon
thread while the main thread repaints a monitor frame — health score,
utilization sparkline-by-bucket, the MMU curve, and one line per SLO
objective with its budget and burn state.  Reads are lock-free; a frame
drawn mid-pause is at worst one event stale.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional, TextIO, TYPE_CHECKING

from repro.monitor.health import health_report
from repro.monitor.mmu import DEFAULT_MMU_WINDOWS

if TYPE_CHECKING:
    from repro.monitor.timeseries import MonitorHub
    from repro.runtime.vm import VirtualMachine

_ANSI_CLEAR = "\x1b[H\x1b[2J"

#: Glyph ramp for the utilization strip (low → high mutator share).
_RAMP = " .:-=+*#%@"

#: Buckets shown in the utilization strip.
_STRIP_BUCKETS = 48


def _utilization_strip(hub: "MonitorHub") -> str:
    """The observed span rendered as ``_STRIP_BUCKETS`` utilization glyphs."""
    t0, t1 = hub.observed_span()
    span = t1 - t0
    if span <= 0:
        return "(no observations yet)"
    bucket_s = span / _STRIP_BUCKETS
    cells = hub.utilization_buckets(bucket_s)[:_STRIP_BUCKETS]
    glyphs = "".join(
        _RAMP[min(len(_RAMP) - 1, int(util * (len(_RAMP) - 1) + 0.5))]
        for _t, util in cells
    )
    return f"|{glyphs}| {span:.2f}s"


def render_monitor_frame(
    vm: "VirtualMachine", hub: "MonitorHub", frame_no: int, elapsed: float
) -> str:
    """One repaint: a pure read of hub + SLO state (no side effects)."""
    report = health_report(hub)
    lines: list[str] = []
    lines.append(
        f"repro monitor — {vm.collector.describe()}  "
        f"up {elapsed:6.1f}s  frame {frame_no}  "
        f"health {report['score']:.1f}/100 [{report['status']}]"
    )
    pauses = report["pauses"]
    lines.append(
        f"gc: {report['gc_events']} events | pauses: "
        f"p99={pauses['p99_s'] * 1e3:.2f}ms max={pauses['max_s'] * 1e3:.2f}ms "
        f"mean={pauses['mean_s'] * 1e3:.2f}ms | "
        f"occupancy {report['occupancy']:.0%} | "
        f"sweep debt {report['sweep_debt_chunks']} chunk(s)"
    )
    lines.append(f"utilization {_utilization_strip(hub)}")
    mmu_cells = "  ".join(
        f"{w * 1e3:g}ms={value:.2f}"
        for w, value in hub.mmu_points(DEFAULT_MMU_WINDOWS)
    )
    lines.append(f"MMU: {mmu_cells}")

    if hub.slos is not None:
        lines.append("SLOs:")
        for rule in hub.slos.rules:
            long_rate, short_rate = rule.burn_rates()
            state = "FIRING" if rule.firing else (
                "exhausted" if rule.budget_remaining() <= 0 else "ok"
            )
            rate = "inf" if long_rate == float("inf") else f"{long_rate:.2f}x"
            lines.append(
                f"  {rule.objective.name:<16} {state:<9} "
                f"budget {max(-9.99, rule.budget_remaining()):>6.0%}  "
                f"burn {rate:>7}/{'inf' if short_rate == float('inf') else f'{short_rate:.2f}x'}  "
                f"bad {rule.bad}/{rule.total}"
            )
    if hub.degradations_by_kind:
        cells = ", ".join(
            f"{kind}={count}"
            for kind, count in sorted(hub.degradations_by_kind.items())
        )
        lines.append(f"degradations: {cells}")
    if hub.alerts:
        lines.append(f"alerts ({len(hub.alerts)} transitions, newest first):")
        for alert in hub.alerts[-4:][::-1]:
            lines.append(f"  {alert.render()}")
    return "\n".join(lines)


def run_monitor(
    vm: "VirtualMachine",
    hub: "MonitorHub",
    runner: Callable[["VirtualMachine"], object],
    interval: float = 1.0,
    frames: Optional[int] = None,
    stream: Optional[TextIO] = None,
    ansi: Optional[bool] = None,
) -> int:
    """Drive ``runner(vm)`` under live monitoring while repainting frames.

    Returns the SLO exit code once the workload finishes: 0 all within
    budget, 1 budget exhausted or an alert firing — or 1 when the
    workload thread died.  (Configuration errors raise before this runs;
    the CLI maps them to exit 2.)
    """
    import sys

    if stream is None:
        stream = sys.stdout
    if ansi is None:
        ansi = hasattr(stream, "isatty") and stream.isatty()
    error: list[BaseException] = []

    def _drive() -> None:
        try:
            runner(vm)
        except BaseException as exc:  # surfaced in the final frame
            error.append(exc)

    worker = threading.Thread(
        target=_drive, name="repro-monitor-workload", daemon=True
    )
    start = time.perf_counter()
    worker.start()
    frame_no = 0
    while True:
        frame_no += 1
        frame = render_monitor_frame(vm, hub, frame_no, time.perf_counter() - start)
        if ansi:
            stream.write(_ANSI_CLEAR)
        elif frame_no > 1:
            stream.write("\n" + "-" * 72 + "\n")
        stream.write(frame)
        stream.write("\n")
        stream.flush()
        if frames is not None and frame_no >= frames:
            break
        if not worker.is_alive():
            break
        worker.join(timeout=interval)
        if not worker.is_alive() and frames is None:
            # One more pass so the final frame reflects the settled state.
            continue
    if worker.is_alive():
        stream.write(f"(workload still running after {frame_no} frames; detaching)\n")
    if error:
        stream.write(f"workload failed: {error[0]!r}\n")
        return 1
    if hub.slos is not None and not hub.slos.healthy():
        burning = [rule.objective.name for rule in hub.slos.firing()]
        spent = [rule.objective.name for rule in hub.slos.exhausted()]
        stream.write(
            f"SLO breach: firing={burning or '[]'} exhausted={spent or '[]'}\n"
        )
        return 1
    return 0
