"""Setup shim for environments without the `wheel` package.

The project is fully described by pyproject.toml; this file only enables
legacy editable installs (`pip install -e . --no-use-pep517`) on systems
where PEP 517 builds fail because `bdist_wheel` is unavailable offline.
"""

from setuptools import setup

setup()
