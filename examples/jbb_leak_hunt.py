#!/usr/bin/env python
"""The §3.2.1 SPEC JBB2000 debugging session, replayed.

Walks through the paper's three pseudojbb findings:

  (a) destroyed Orders kept alive by Customer.lastOrder — found with
      assert-dead in DeliveryTransaction.process(), repaired by clearing
      the back reference;
  (b) the oldCompany memory drag — found with assert-instances(Company, 1);
  (c) the Jump & McKinley orderTable leak — found both with assert-dead
      (Figure 1's path) and, more conveniently, with assert-ownedby.

Run:

    python examples/jbb_leak_hunt.py
"""

from repro import AssertionKind, VirtualMachine
from repro.workloads.jbb import JbbConfig, run_pseudojbb

BASE = dict(
    warehouses=1,
    districts_per_warehouse=2,
    customers_per_district=10,
    iterations=2,
    transactions_per_iteration=250,
    gc_per_iteration=True,
)


def run(title, **flags):
    print()
    print("=" * 70)
    print(title)
    print("=" * 70)
    vm = VirtualMachine(heap_bytes=8 << 20)
    result = run_pseudojbb(vm, JbbConfig(**BASE, **flags))
    print(
        f"transactions={result.transactions} new_orders={result.new_orders} "
        f"deliveries={result.deliveries} GCs={vm.stats.collections} "
        f"violations={len(vm.engine.log)}"
    )
    return vm


def first_report(vm, kind):
    violations = vm.engine.log.of_kind(kind)
    if not violations:
        print("  no violations of this kind.")
        return
    print()
    for row in violations[0].render().splitlines():
        print("  " + row)
    if len(violations) > 1:
        print(f"  ... and {len(violations) - 1} more like it")


def main():
    # ---------------------------------------------------------------- (a)
    vm = run(
        "(a) BUGGY: destroy() forgets to clear Customer.lastOrder "
        "(assert-dead on destroyed Orders)",
        leak_last_order=True,
        assert_dead_orders=True,
    )
    first_report(vm, AssertionKind.DEAD)
    print(
        "\n  -> The path ends Customer -> Order: exactly the paper's finding.\n"
        "     Repair (the paper's): null Customer.lastOrder in destroy()."
    )
    vm = run(
        "(a) FIXED: destroy() clears the back reference",
        leak_last_order=False,
        assert_dead_orders=True,
    )
    first_report(vm, AssertionKind.DEAD)

    # ---------------------------------------------------------------- (b)
    vm = run(
        "(b) BUGGY: oldCompany local drags the previous iteration's Company "
        "(assert-instances(Company, 1))",
        drag_old_company=True,
        assert_instances_company=True,
    )
    first_report(vm, AssertionKind.INSTANCES)
    print(
        "\n  -> 'Not a memory leak but an example of memory drag': two\n"
        "     Companies live at once.  Repair: null the local after destroy."
    )
    vm = run(
        "(b) FIXED: the local is nulled after the Company is destroyed",
        drag_old_company=False,
        assert_instances_company=True,
    )
    first_report(vm, AssertionKind.INSTANCES)

    # ---------------------------------------------------------------- (c)
    vm = run(
        "(c) BUGGY: Delivery never removes Orders from the orderTable "
        "(the Jump & McKinley leak; assert-dead shows Figure 1's path)",
        leak_order_table=True,
        leak_last_order=True,
        assert_dead_orders=True,
    )
    for violation in vm.engine.log.of_kind(AssertionKind.DEAD):
        if "spec.jbb.infra.Collections.longBTreeNode" in violation.path.type_names():
            print()
            for row in violation.render().splitlines():
                print("  " + row)
            break
    print(
        "\n  -> The Figure-1 path: Company -> Warehouse -> District ->\n"
        "     longBTree -> longBTreeNode -> ... -> Order."
    )

    vm = run(
        "(c') The easier way: assert-ownedby(orderTable, order) in "
        "District.addOrder — no need to know where Orders should die",
        leak_last_order=True,
        assert_ownedby_orders=True,
    )
    first_report(vm, AssertionKind.OWNED_BY)

    vm = run(
        "(c) FIXED: Delivery removes processed Orders; all assertions on",
        assert_dead_orders=True,
        assert_ownedby_orders=True,
        assert_instances_company=True,
        region_payments=True,
    )
    print("  all assertion families quiet on the repaired benchmark.")


if __name__ == "__main__":
    main()
