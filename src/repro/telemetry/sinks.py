"""Pluggable telemetry exporters.

A sink receives every :class:`~repro.telemetry.events.GcEvent` as it is
produced (push model); the Prometheus renderer is the complementary pull
model — it serializes the hub's *current* state into the text exposition
format a scraper would fetch.  Sinks must never throw into the collector's
pause: exporter failures are recorded on the sink and the GC proceeds.
"""

from __future__ import annotations

import io
import json
from typing import TYPE_CHECKING, Optional, Protocol

from repro.telemetry.events import GcEvent

if TYPE_CHECKING:
    from repro.telemetry import Telemetry


class TelemetrySink(Protocol):
    """What the hub requires of an exporter."""

    def emit(self, event: GcEvent) -> None: ...

    def close(self) -> None: ...


class MemorySink:
    """Default sink: keeps every event in a plain list (tests, notebooks)."""

    def __init__(self) -> None:
        self.events: list[GcEvent] = []
        self.closed = False

    def emit(self, event: GcEvent) -> None:
        self.events.append(event)

    def close(self) -> None:
        self.closed = True

    def __len__(self) -> int:
        return len(self.events)


class JsonlSink:
    """Streams one JSON object per event to a file (JSON-lines).

    The file opens lazily on the first event, so constructing a VM with a
    configured-but-unused sink touches no filesystem state.
    """

    def __init__(self, path: str):
        self.path = path
        self.lines_written = 0
        self.errors = 0
        self._file: Optional[io.TextIOBase] = None

    def emit(self, event: GcEvent) -> None:
        try:
            if self._file is None:
                self._file = open(self.path, "w")
            self._file.write(json.dumps(event.as_dict()) + "\n")
            self._file.flush()
            self.lines_written += 1
        except OSError:
            self.errors += 1

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    @staticmethod
    def load(path: str) -> list[dict]:
        """Read a JSONL event file back as dicts (the round-trip helper)."""
        with open(path) as handle:
            return [json.loads(line) for line in handle if line.strip()]


def _fmt(value: float) -> str:
    """Prometheus sample formatting: integers bare, floats repr'd."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if value == float("inf"):
        return "+Inf"
    return repr(float(value))


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def render_prometheus(telemetry: "Telemetry", namespace: str = "repro") -> str:
    """Serialize the hub's current state in Prometheus text exposition format."""
    lines: list[str] = []

    def metric(name: str, mtype: str, help_text: str) -> str:
        full = f"{namespace}_{name}"
        lines.append(f"# HELP {full} {help_text}")
        lines.append(f"# TYPE {full} {mtype}")
        return full

    def sample(full: str, value, labels: Optional[dict] = None) -> None:
        if labels:
            rendered = ",".join(
                f'{k}="{_escape_label(str(v))}"' for k, v in labels.items()
            )
            lines.append(f"{full}{{{rendered}}} {_fmt(value)}")
        else:
            lines.append(f"{full} {_fmt(value)}")

    latest = telemetry.events.latest
    collector = latest.collector if latest is not None else "none"

    full = metric("gc_collections_total", "counter", "Collections observed, by kind.")
    for kind, count in sorted(telemetry.collections_by_kind.items()):
        sample(full, count, {"collector": collector, "kind": kind})

    full = metric("gc_events_dropped_total", "counter",
                  "GC events shed by the bounded ring buffer.")
    sample(full, telemetry.events.dropped)

    for name, hist, unit in (
        ("gc_pause_seconds", telemetry.pause_hist, "GC stop-the-world pause"),
        ("allocation_bytes", telemetry.alloc_hist, "Mutator allocation request size"),
        ("gc_ownees_checked", telemetry.ownees_hist, "Ownees checked per collection"),
    ):
        full = metric(name, "histogram", f"{unit} (log-scale buckets).")
        cumulative = 0
        for upper, count in hist.nonzero_buckets():
            cumulative += count
            sample(f"{full}_bucket", cumulative, {"le": _fmt(upper)})
        sample(f"{full}_bucket", hist.count, {"le": "+Inf"})
        sample(f"{full}_sum", hist.total)
        sample(f"{full}_count", hist.count)

    if latest is not None:
        full = metric("heap_live_bytes", "gauge", "Live heap bytes after the last GC.")
        sample(full, latest.bytes_after)
        full = metric("heap_occupancy_ratio", "gauge",
                      "Live bytes / heap budget after the last GC.")
        sample(full, latest.occupancy_after)
        full = metric("gc_sweep_debt_chunks", "gauge",
                      "Unswept chunks outstanding after the last GC "
                      "(lazy sweep; 0 when reclamation is exact).")
        sample(full, latest.sweep_debt_chunks)

    census = telemetry.census.latest()
    if census:
        count_metric = metric("heap_live_objects", "gauge",
                              "Live instances per class at the last census.")
        for name, (count, _nbytes) in sorted(census.items()):
            sample(count_metric, count, {"class": name})
        bytes_metric = metric("heap_class_bytes", "gauge",
                              "Live bytes per class at the last census.")
        for name, (_count, nbytes) in sorted(census.items()):
            sample(bytes_metric, nbytes, {"class": name})

    if telemetry.violations_by_kind:
        full = metric("gc_assertion_violations_total", "counter",
                      "Assertion violations detected, by assertion kind.")
        for kind, count in sorted(telemetry.violations_by_kind.items()):
            sample(full, count, {"kind": kind})

    return "\n".join(lines) + "\n"
