"""Chunked sweeping: one engine behind both eager and lazy sweep modes.

The seed collector swept by snapshotting ``heap.objects()`` — a full-table
list copy per GC — and returning dead cells one ``space.free()`` call at a
time.  The :class:`ChunkSweeper` replaces that with a walk over the space's
own chunk metadata (64 KB chunks for :class:`~repro.heap.space.FreeListSpace`,
blocks and large spans for :class:`~repro.heap.blocks.BlockSpace`), freeing
each chunk's dead cells with one batched splice per size class.

Two drain disciplines share the per-chunk core:

* ``drain_eager()`` — sweep every pending chunk inside the pause and return
  the freed-address set, for the classic
  mark → sweep → ``_finish_collection(freed)`` sequence.
* ``sweep_chunks(n)`` — lazy mode: the pause ends after marking, and pending
  chunks are reclaimed incrementally on the allocation slow path.  Because
  the mutator runs (and allocates) between mark end and a chunk's sweep,
  each chunk sweep must itself uphold the metadata invariants the eager
  sequence got for free:

  - **epoch filter** — ``cutoff`` is ``heap.install_seq`` captured when the
    chunks were scheduled (mark end).  Objects installed or relocated after
    that (mutator allocations into a pending chunk; generational promotion
    into recycled mature cells) have ``alloc_seq > cutoff`` and are skipped:
    their unmarked headers mean "allocated after the trace", not "dead".
  - **purge before reuse** — address-keyed assertion/VM metadata for a
    chunk's dead cells is purged *before* those cells reach the free list,
    so a recycled address can never alias a stale registry entry.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from repro.gc.stats import PhaseTimer
from repro.heap import header as hdr

if TYPE_CHECKING:
    from repro.gc.base import Collector

#: Chunks reclaimed per allocation-slow-path visit in lazy mode.  Small
#: enough to keep mutator-time sweep increments short, large enough that an
#: allocation burst does not take one trip per chunk.
LAZY_SWEEP_BATCH = 8


class ChunkSweeper:
    """Pending-chunk queue plus the per-chunk sweep loop for one space."""

    __slots__ = ("collector", "space", "pending", "cutoff")

    def __init__(self, collector: "Collector", space):
        self.collector = collector
        self.space = space
        #: Chunk ids scheduled at mark end and not yet swept.
        self.pending: deque[int] = deque()
        #: ``heap.install_seq`` at schedule time; objects stamped later are
        #: post-mark installs and must not be treated as dead.
        self.cutoff = 0

    @property
    def debt(self) -> int:
        """Number of unswept chunks (0 = reclamation is exact)."""
        return len(self.pending)

    def schedule(self) -> None:
        """Capture the space's chunks for sweeping; call at mark end."""
        self.cutoff = self.collector.heap.install_seq
        self.pending = deque(self.space.chunk_ids())

    # -- per-chunk core ----------------------------------------------------------

    def _sweep_chunk(self, chunk_id: int) -> tuple[set[int], dict[int, list[int]]]:
        """Examine one chunk: clear survivor bits, evict the dead.

        Returns ``(freed addresses, {cell size: [addresses]})``; the caller
        decides when the cells go back to the space (eager: immediately;
        lazy: after the purge).
        """
        collector = self.collector
        heap = collector.heap
        stats = collector.stats
        table = heap.address_table()
        mark_bit = hdr.MARK_BIT
        clear_mask = ~(hdr.MARK_BIT | hdr.OWNED_BIT)
        cutoff = self.cutoff
        freed: set[int] = set()
        by_class: dict[int, list[int]] = {}
        swept = 0
        for address, cell in self.space.chunk_cells(chunk_id):
            obj = table.get(address)
            if obj is None or obj.alloc_seq > cutoff:
                continue  # installed after the trace; not this cycle's business
            swept += 1
            status = obj.status
            if status & mark_bit:
                obj.status = status & clear_mask
            else:
                freed.add(address)
                bucket = by_class.get(cell)
                if bucket is None:
                    by_class[cell] = [address]
                else:
                    bucket.append(address)
                heap.evict(obj)
        stats.objects_swept += swept
        stats.objects_freed += len(freed)
        stats.chunks_swept += 1
        return freed, by_class

    # -- drain disciplines --------------------------------------------------------

    def drain_eager(self) -> set[int]:
        """Sweep every pending chunk now; returns the freed-address set.

        Cells return to the space immediately and *without* purging — the
        eager collect sequence purges once, via
        ``_finish_collection(freed)``, before the mutator can allocate.
        """
        collector = self.collector
        stats = collector.stats
        freed_all: set[int] = set()
        pending = self.pending
        with PhaseTimer(stats, "sweep_seconds", collector.span_tracer, "sweep"):
            while pending:
                chunk_id = pending.popleft()
                freed, by_class = self._sweep_chunk(chunk_id)
                if by_class:
                    stats.bytes_freed += self.space.free_chunk_cells(chunk_id, by_class)
                if freed:
                    freed_all |= freed
        return freed_all

    def sweep_chunks(self, max_chunks: int | None = None) -> int:
        """Lazy increment: sweep up to ``max_chunks`` pending chunks.

        Each chunk's freed addresses are purged from assertion/VM metadata
        *before* its cells are spliced back — the purge-precedes-reuse
        invariant, per chunk.  Returns the number of cells released.
        """
        pending = self.pending
        if not pending:
            # Nothing outstanding (every eager-mode call lands here): no
            # timers opened, no spans recorded, no telemetry sample.
            return 0
        collector = self.collector
        stats = collector.stats
        spans = collector.span_tracer
        budget = len(pending) if max_chunks is None else max_chunks
        chunks_before = len(pending)
        released = 0
        # The nested timers share their perf_counter readings with the
        # nested spans, so sweep/lazy_sweep_slice span durations sum to
        # sweep_seconds/lazy_sweep_seconds exactly (the unification rule);
        # the slice timer's .elapsed feeds the debt-repayment histogram.
        slice_timer = PhaseTimer(stats, "lazy_sweep_seconds", spans, "lazy_sweep_slice")
        with PhaseTimer(stats, "sweep_seconds", spans, "sweep"), slice_timer:
            while pending and budget > 0:
                budget -= 1
                chunk_id = pending.popleft()
                freed, by_class = self._sweep_chunk(chunk_id)
                if freed:
                    collector._purge_before_reuse(freed)
                    stats.bytes_freed += self.space.free_chunk_cells(chunk_id, by_class)
                    released += len(freed)
        if spans is not None:
            spans.counter("sweep_debt", chunks=len(pending))
        telemetry = collector.telemetry
        if telemetry is not None and telemetry.enabled:
            telemetry.record_lazy_slice(
                slice_timer.elapsed, chunks_before - len(pending), released
            )
        return released

    def sweep_all(self) -> None:
        """Drain all outstanding debt (lazy discipline, incremental purge)."""
        self.sweep_chunks(None)
