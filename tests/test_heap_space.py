"""Unit tests for FreeListSpace and BumpSpace."""

import pytest

from repro.errors import HeapError
from repro.heap.space import BumpSpace, FreeListSpace, Space


class TestSpaceAccounting:
    def test_positive_capacity_required(self):
        with pytest.raises(HeapError):
            FreeListSpace("x", 0)

    def test_bytes_free(self):
        space = FreeListSpace("x", 1024)
        assert space.bytes_free == 1024
        space.allocate(100)
        assert space.bytes_free < 1024


class TestFreeListSpace:
    def test_allocate_returns_aligned_addresses(self):
        space = FreeListSpace("x", 4096)
        for _ in range(10):
            addr = space.allocate(24)
            assert addr is not None
            assert addr % 8 == 0

    def test_distinct_addresses(self):
        space = FreeListSpace("x", 4096)
        addrs = {space.allocate(16) for _ in range(20)}
        assert len(addrs) == 20

    def test_allocation_fails_when_full(self):
        space = FreeListSpace("x", 64)
        assert space.allocate(32) is not None
        assert space.allocate(32) is not None
        assert space.allocate(32) is None

    def test_free_recycles_cell(self):
        space = FreeListSpace("x", 128)
        a = space.allocate(32)
        space.free(a)
        b = space.allocate(32)
        assert b == a  # the freed cell is reused

    def test_free_restores_capacity(self):
        space = FreeListSpace("x", 64)
        a = space.allocate(64)
        assert space.allocate(8) is None
        space.free(a)
        assert space.allocate(8) is not None

    def test_double_free_rejected(self):
        space = FreeListSpace("x", 128)
        a = space.allocate(16)
        space.free(a)
        with pytest.raises(HeapError):
            space.free(a)

    def test_free_unknown_address_rejected(self):
        space = FreeListSpace("x", 128)
        with pytest.raises(HeapError):
            space.free(0xDEAD0)

    def test_cell_size_rounding_tracked(self):
        space = FreeListSpace("x", 1 << 16)
        a = space.allocate(25)  # rounds to 32
        assert space.cell_size(a) == 32
        assert space.free(a) == 32

    def test_contains(self):
        space = FreeListSpace("x", 128)
        a = space.allocate(16)
        assert space.contains(a)
        space.free(a)
        assert not space.contains(a)


class TestBumpSpace:
    def test_monotone_addresses(self):
        space = BumpSpace("x", 4096)
        a = space.allocate(16)
        b = space.allocate(16)
        assert b > a

    def test_full_space_fails(self):
        space = BumpSpace("x", 32)
        assert space.allocate(32) is not None
        assert space.allocate(8) is None

    def test_reset_rewinds_cursor(self):
        space = BumpSpace("x", 64)
        a = space.allocate(16)
        space.reset()
        assert space.bytes_in_use == 0
        assert space.allocate(16) == a  # address space reused after reset

    def test_release_single_allocation(self):
        space = BumpSpace("x", 64)
        a = space.allocate(16)
        released = space.release(a)
        assert released == 16
        assert not space.contains(a)
        assert space.bytes_in_use == 0

    def test_addresses_lists_live_allocations(self):
        space = BumpSpace("x", 128)
        addresses = [space.allocate(16) for _ in range(3)]
        assert sorted(space.addresses()) == sorted(addresses)
