"""The fault injector: a seeded schedule of heap and subsystem faults.

Nine fault kinds, spanning every layer the hardened collectors defend:

=================  ====================================================
``flip-mark``      set a stale MARK bit on a live object (sentinel
                   clears it and records a heap degradation)
``flip-dead``      set the DEAD bit on a root-reachable object — the
                   next trace reports an assert-dead violation whose
                   ``site`` is ``None`` (the injected/genuine
                   discriminator)
``flip-unshared``  set the UNSHARED bit on a reachable object and pin a
                   second incoming reference, guaranteeing a repeat
                   encounter and an unshared violation
``dangle-ref``     point a live reference slot at an address the heap
                   does not track (sentinel nulls it)
``corrupt-freelist``  push a live cell's address back onto the free
                   list (segregated-fit spaces) or plant a phantom
                   allocation entry (bump spaces); the hardened
                   allocator fences the aliased cell on reuse
``alloc-fail``     refuse the next N allocation requests as if the
                   space were full, driving the OOM recovery ladder
``raise-reaction`` register a violation handler that raises once (the
                   engine's never-propagate rule contains it)
``raise-sink``     add a telemetry sink whose ``emit`` raises (the
                   hub's retry + circuit breaker contain it)
``raise-snapshot`` make the next snapshot serialization raise OSError
                   (the collector drops the capture and continues)
=================  ====================================================

Faults are scheduled against collection ordinals (``at_gc``) or
allocation counts (``at_alloc``); victim selection inside a fault uses a
``random.Random(seed)`` stream over *sorted* live addresses, so the same
seed over the same workload applies the same corruption.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Optional

from repro.heap import header as hdr
from repro.heap.layout import NULL, align_up

if TYPE_CHECKING:
    from repro.runtime.vm import VirtualMachine

#: All schedulable fault kinds, in documentation order.
FAULT_KINDS = (
    "flip-mark",
    "flip-dead",
    "flip-unshared",
    "dangle-ref",
    "corrupt-freelist",
    "alloc-fail",
    "raise-reaction",
    "raise-sink",
    "raise-snapshot",
    "conn-drop",
    "session-kill",
)


class InjectedFault(RuntimeError):
    """The exception injected faults raise.

    Deliberately *not* a :class:`~repro.errors.ReproError`: the hardened
    containment paths must absorb arbitrary exceptions, not just the
    runtime's own typed hierarchy.
    """


class ExplodingSink:
    """A telemetry sink whose ``emit`` raises for the first N events.

    After ``fail_times`` failures it starts succeeding, so a chaos run
    exercises the circuit breaker's trip *and* recovery arcs.
    """

    def __init__(self, fail_times: int = 8):
        self.fail_times = fail_times
        self.attempts = 0
        self.delivered = 0
        self.closed = False

    def emit(self, event) -> None:
        self.attempts += 1
        if self.attempts <= self.fail_times:
            raise InjectedFault(
                f"injected sink failure ({self.attempts}/{self.fail_times})"
            )
        self.delivered += 1

    def close(self) -> None:
        self.closed = True


class Fault:
    """One scheduled fault: a kind plus its trigger point."""

    __slots__ = ("kind", "at_gc", "at_alloc", "arg")

    def __init__(
        self,
        kind: str,
        at_gc: Optional[int] = None,
        at_alloc: Optional[int] = None,
        arg: Optional[int] = None,
    ):
        if kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {kind!r}; pick from {FAULT_KINDS}")
        if (at_gc is None) == (at_alloc is None):
            raise ValueError("a fault needs exactly one of at_gc / at_alloc")
        self.kind = kind
        self.at_gc = at_gc
        self.at_alloc = at_alloc
        self.arg = arg

    def __repr__(self) -> str:
        trigger = f"gc#{self.at_gc}" if self.at_gc is not None else f"alloc#{self.at_alloc}"
        return f"<Fault {self.kind} @ {trigger}>"


class FaultPlan:
    """A seeded, ordered schedule of :class:`Fault` entries."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self.faults: list[Fault] = []

    def add(
        self,
        kind: str,
        at_gc: Optional[int] = None,
        at_alloc: Optional[int] = None,
        arg: Optional[int] = None,
    ) -> "FaultPlan":
        self.faults.append(Fault(kind, at_gc=at_gc, at_alloc=at_alloc, arg=arg))
        return self

    def kinds(self) -> set[str]:
        return {fault.kind for fault in self.faults}

    @classmethod
    def one_of_each(cls, seed: int = 0) -> "FaultPlan":
        """The chaos matrix schedule: every fault kind exactly once.

        Heap corruption lands early (GCs 1–3) so later collections must
        trace over the repaired heap; ``flip-dead`` precedes
        ``raise-reaction`` because the raising handler needs a pending
        violation to fire on.  The allocation-failure fault keys on
        allocation count so it interleaves with GC-keyed faults.
        """
        plan = cls(seed)
        plan.add("flip-dead", at_gc=1)
        plan.add("flip-mark", at_gc=1)
        plan.add("raise-sink", at_gc=1)
        plan.add("raise-reaction", at_gc=1)
        plan.add("flip-unshared", at_gc=2)
        plan.add("dangle-ref", at_gc=2)
        plan.add("raise-snapshot", at_gc=2)
        plan.add("corrupt-freelist", at_gc=3)
        plan.add("alloc-fail", at_alloc=100, arg=1)
        # Service-layer kinds: inert on bare VMs (no session attached), so
        # the heap-only chaos cells keep their seeded fault sequences; the
        # tenant-isolation cell attaches sessions and makes them bite.
        plan.add("conn-drop", at_gc=3)
        plan.add("session-kill", at_gc=4)
        return plan

    @classmethod
    def generate(cls, seed: int, count: int) -> "FaultPlan":
        """A random (but seed-deterministic) schedule for fuzzing."""
        rng = random.Random(seed)
        plan = cls(seed)
        for _ in range(count):
            kind = rng.choice(FAULT_KINDS)
            if rng.random() < 0.5:
                plan.add(kind, at_gc=rng.randint(1, 5))
            else:
                plan.add(kind, at_alloc=rng.randint(20, 400))
        return plan

    def __len__(self) -> int:
        return len(self.faults)

    def __repr__(self) -> str:
        return f"<FaultPlan seed={self.seed} {len(self.faults)} fault(s)>"


class FaultInjector:
    """Applies a :class:`FaultPlan` to a live VM.

    ``attach()`` hooks the VM's post-collection observer list (for
    GC-keyed faults) and shadows the collector's ``allocate`` with a
    counting wrapper (for allocation-keyed faults).  With an empty plan
    the wrapper's cost is one increment and one length check — the
    ``abl-faults`` ablation pins that overhead at ~1.0×.
    """

    def __init__(
        self,
        vm: "VirtualMachine",
        plan: Optional[FaultPlan] = None,
        pin_zone: Optional[int] = None,
    ):
        self.vm = vm
        self.plan = plan or FaultPlan()
        #: On a zone-sharded heap, restrict victim selection to this zone.
        #: Parallel marking drains zones concurrently, so without a pin the
        #: worker that *observes* a corruption could differ run to run even
        #: though the seeded victim is the same; pinning keeps the chaos
        #: matrix deterministic.  Ignored when the collector has no zone map
        #: or when the zone holds no eligible victims.
        self.pin_zone = pin_zone
        self.rng = random.Random(self.plan.seed)
        self.gc_count = 0
        self.alloc_count = 0
        #: ``(kind, detail)`` log of every fault applied, in order.
        self.applied: list[tuple[str, str]] = []
        self._gc_faults = sorted(
            (f for f in self.plan.faults if f.at_gc is not None),
            key=lambda f: f.at_gc,
        )
        self._alloc_faults = sorted(
            (f for f in self.plan.faults if f.at_alloc is not None),
            key=lambda f: f.at_alloc,
        )
        self._pin_counter = 0
        self._attached = False
        self._original_allocate = None

    # -- wiring -----------------------------------------------------------------------

    def attach(self) -> "FaultInjector":
        if self._attached:
            return self
        collector = self.vm.collector
        self._original_allocate = collector.allocate
        original = self._original_allocate
        alloc_faults = self._alloc_faults

        def counting_allocate(cls, length: int = 0):
            self.alloc_count += 1
            if alloc_faults and alloc_faults[0].at_alloc <= self.alloc_count:
                self._apply(alloc_faults.pop(0))
            return original(cls, length)

        collector.allocate = counting_allocate
        self.vm.gc_observers.append(self._after_gc)
        self._attached = True
        return self

    def detach(self) -> None:
        if not self._attached:
            return
        collector = self.vm.collector
        if collector.allocate is not self._original_allocate:
            del collector.allocate  # drop the instance shadow
        self.vm.gc_observers.remove(self._after_gc)
        self._attached = False

    def _after_gc(self, vm: "VirtualMachine", freed: set[int]) -> None:
        self.gc_count = vm.stats.collections
        while self._gc_faults and self._gc_faults[0].at_gc <= self.gc_count:
            self._apply(self._gc_faults.pop(0))

    def kinds_applied(self) -> set[str]:
        return {kind for kind, _detail in self.applied}

    def apply_now(self, kind: str, arg: Optional[int] = None) -> str:
        """Apply one fault immediately (unit-test entry point)."""
        return self._apply(Fault(kind, at_gc=0, arg=arg))

    def apply_remaining(self) -> None:
        """Apply every not-yet-triggered fault immediately.

        Chaos coverage backstop: a workload that finished before a
        trigger point still exercises every fault class before the
        harness's recovery collection.
        """
        pending = self._gc_faults + self._alloc_faults
        self._gc_faults = []
        self._alloc_faults = []
        for fault in pending:
            self._apply(fault)

    # -- application ------------------------------------------------------------------

    def _apply(self, fault: Fault) -> str:
        handler = getattr(self, "_fault_" + fault.kind.replace("-", "_"))
        detail = handler(fault)
        self.applied.append((fault.kind, detail))
        return detail

    def _reachable(self) -> list[int]:
        """Sorted root-reachable addresses (deterministic victim pool)."""
        heap = self.vm.heap
        seen: set[int] = set()
        stack: list[int] = []
        for _desc, address in self.vm.root_entries():
            if address != NULL and address not in seen and heap.contains(address):
                seen.add(address)
                stack.append(address)
        while stack:
            obj = heap.get(stack.pop())
            for ref in obj.reference_slots():
                if ref != NULL and ref not in seen and heap.contains(ref):
                    seen.add(ref)
                    stack.append(ref)
        addresses = sorted(seen)
        if self.pin_zone is not None:
            zone_map = getattr(self.vm.collector, "zone_map", None)
            if zone_map is not None:
                zone_of = zone_map.zone_of
                pinned = [a for a in addresses if zone_of(a) == self.pin_zone]
                if pinned:
                    return pinned
        return addresses

    def _pick_reachable(self):
        addresses = self._reachable()
        if not addresses:
            return None
        return self.vm.heap.get(self.rng.choice(addresses))

    def _pin(self, address: int, label: str) -> str:
        """Root an address from a synthetic static so it stays reachable."""
        name = f"__fault_{label}_{self._pin_counter}"
        self._pin_counter += 1
        self.vm.statics.set_ref(name, address)
        return name

    def _primary_space(self):
        collector = self.vm.collector
        for attr in ("space", "mature"):
            space = getattr(collector, attr, None)
            if space is not None:
                return space
        return collector.from_space

    def _alloc_space(self):
        collector = self.vm.collector
        nursery = getattr(collector, "nursery", None)
        if nursery is not None:
            return nursery
        return self._primary_space()

    # -- the nine kinds ----------------------------------------------------------------

    def _fault_flip_mark(self, fault: Fault) -> str:
        victim = self._pick_reachable()
        if victim is None:
            return "inert: no live objects"
        victim.status |= hdr.MARK_BIT
        return f"MARK bit set on {victim.cls.name}@{victim.address:#x}"

    def _fault_flip_dead(self, fault: Fault) -> str:
        victim = self._pick_reachable()
        if victim is None:
            return "inert: no live objects"
        victim.status |= hdr.DEAD_BIT
        # Pin the victim so the next trace is guaranteed to encounter it —
        # the resulting violation has site=None (no registry entry), the
        # marker that discriminates injected from genuine violations.
        pin = self._pin(victim.address, "dead")
        return f"DEAD bit set on {victim.cls.name}@{victim.address:#x} (pinned as {pin})"

    def _fault_flip_unshared(self, fault: Fault) -> str:
        victim = self._pick_reachable()
        if victim is None:
            return "inert: no live objects"
        victim.status |= hdr.UNSHARED_BIT
        # A second incoming reference (a synthetic static root) guarantees
        # a repeat encounter on top of the existing reachable path.
        pin = self._pin(victim.address, "unshared")
        return (
            f"UNSHARED bit set on {victim.cls.name}@{victim.address:#x} "
            f"(second reference pinned as {pin})"
        )

    def _fault_dangle_ref(self, fault: Fault) -> str:
        heap = self.vm.heap
        addresses = self._reachable()
        self.rng.shuffle(addresses)
        bogus = align_up(max(heap.address_table(), default=0x1000) + 0x100000)
        # Only NULL strong slots and weak slots are corrupted: the sentinel
        # repairs a dangle by nulling it, and for these two slot classes a
        # NULL read is within the program's contract (a fresh field, or a
        # weak reference whose target died).  Clobbering a *live* strong
        # edge would fault the workload's own logic, not the collector.
        for address in addresses:
            obj = heap.get(address)
            null_slots = [
                idx
                for idx in obj.reference_slot_indices()
                if obj.slots[idx] == NULL
            ]
            if null_slots:
                idx = self.rng.choice(null_slots)
                obj.slots[idx] = bogus
                return (
                    f"slot {idx} of {obj.cls.name}@{obj.address:#x} "
                    f"dangled to {bogus:#x}"
                )
            if obj.has_weak_slots:
                idx = self.rng.choice(list(obj.weak_slot_indices()))
                obj.slots[idx] = bogus
                return (
                    f"weak slot {idx} of {obj.cls.name}@{obj.address:#x} "
                    f"dangled to {bogus:#x}"
                )
        return "inert: no corruptible slots"

    def _fault_corrupt_freelist(self, fault: Fault) -> str:
        space = self._primary_space()
        shards = getattr(space, "shards", None)
        if shards is not None:
            # Zone-sharded space: the facade has no free list of its own,
            # so corrupt a shard — the pinned zone's when one is set.
            pool = list(shards)
            if self.pin_zone is not None and 0 <= self.pin_zone < len(shards):
                pool = [shards[self.pin_zone]]
            victims = sorted(
                address
                for shard in pool
                for chunk in shard._chunks.values()
                for address in chunk
                if self.vm.heap.contains(address)
            )
            if not victims:
                return "inert: no allocated cells"
            address = self.rng.choice(victims)
            shard = space.shard_for(address)
            cell = shard.cell_size(address)
            shard.free_list.push(address, cell)
            return (
                f"live cell {address:#x} ({cell} bytes) duplicated onto "
                f"the {shard.name} free list"
            )
        free_list = getattr(space, "free_list", None)
        if free_list is not None:
            victims = sorted(
                address
                for chunk in space._chunks.values()
                for address in chunk
                if self.vm.heap.contains(address)
            )
            if not victims:
                return "inert: no allocated cells"
            address = self.rng.choice(victims)
            cell = space.cell_size(address)
            free_list.push(address, cell)
            return (
                f"live cell {address:#x} ({cell} bytes) duplicated onto "
                f"the {space.name} free list"
            )
        # Bump space: plant a phantom allocation record past the cursor.
        phantom = align_up(space._cursor + 0x10000)
        space._allocated[phantom] = 16
        space.bytes_in_use += 16
        return f"phantom 16-byte cell planted at {phantom:#x} in {space.name}"

    def _fault_alloc_fail(self, fault: Fault) -> str:
        count = fault.arg or 1
        space = self._alloc_space()
        space.deny_next(count)
        return f"next {count} allocation(s) in {space.name} will be refused"

    def _fault_conn_drop(self, fault: Fault) -> str:
        """Sever a tenant session's outbound stream (dead TCP peer).

        Consumes no rng, so scheduling it alongside heap faults leaves
        their seeded victim choices untouched.
        """
        hook = getattr(self.vm, "service_hooks", {}).get("conn-drop")
        if hook is None:
            return "inert: no tenant session attached to this VM"
        return str(hook())

    def _fault_session_kill(self, fault: Fault) -> str:
        """Kill the tenant session owning this VM at the current GC.

        The hook raises :class:`~repro.errors.SessionKilled` out of the
        collection, so the record is appended *before* the call — a
        raising handler would otherwise never reach ``_apply``'s append.
        Consumes no rng (see :meth:`_fault_conn_drop`).
        """
        hook = getattr(self.vm, "service_hooks", {}).get("session-kill")
        if hook is None:
            return "inert: no tenant session attached to this VM"
        detail = "session kill raised into the tenant workload"
        self.applied.append((fault.kind, detail))
        hook()
        # Contractually unreachable: the hook raises.  If a custom hook
        # returns instead, un-append so _apply records exactly once.
        self.applied.pop()
        return detail

    def _fault_raise_reaction(self, fault: Fault) -> str:
        engine = self.vm.engine
        if engine is None:
            return "inert: no assertion engine"
        state = {"armed": True}

        def exploding_handler(violation):
            if state["armed"]:
                state["armed"] = False
                raise InjectedFault("injected reaction-handler failure")
            return None

        engine.policy.add_handler(exploding_handler)
        return "violation handler armed to raise once"

    def _fault_raise_sink(self, fault: Fault) -> str:
        telemetry = self.vm.telemetry
        if telemetry is None:
            return "inert: telemetry disabled"
        sink = ExplodingSink(fail_times=fault.arg or 8)
        telemetry.add_sink(sink)
        return f"exploding sink added (fails {sink.fail_times} emit(s))"

    def _fault_raise_snapshot(self, fault: Fault) -> str:
        policy = self.vm.snapshot_policy
        if policy is None:
            return "inert: no snapshot policy installed"
        original = policy.finish_capture
        state = {"armed": True}

        def exploding_finish(collector, sink):
            if state["armed"]:
                state["armed"] = False
                policy.finish_capture = original
                raise OSError("injected snapshot serialization failure")
            return original(collector, sink)

        policy.finish_capture = exploding_finish
        policy.request_capture()
        return "next snapshot serialization will raise OSError"

    def __repr__(self) -> str:
        return (
            f"<FaultInjector seed={self.plan.seed} "
            f"{len(self.applied)}/{len(self.plan)} applied>"
        )
