"""Heap snapshots: capture, dominator/retained-size analysis, leak triage.

The paper's assertion checks tell you *that* a heap property was violated
and one path that witnesses it (Figure 1).  Diagnosing the violation —
the motivating SwapLeak in particular — also needs the ownership view:
*what is keeping the object alive and how much does it cost*.  This package
adds that view as four layers on top of the existing collector machinery:

* **Capture** (:mod:`repro.snapshot.capture`) — a streaming snapshot
  recorder piggybacked on the tracer's specialized drains (the same
  protocol as ``INLINE_HEADER_CHECKS``): while the collector marks, the
  drain appends one compact row per live object; serialization to the
  versioned JSONL+index format happens after the pause ends.  A
  :class:`~repro.snapshot.capture.SnapshotPolicy` on the VM decides *when*
  (``every_n_gcs``, ``on_violation``, manual), and
  :func:`~repro.snapshot.capture.capture_snapshot` walks the heap between
  collections without touching mark bits.
* **Format** (:mod:`repro.snapshot.format`) — schema
  ``repro-heap-snapshot/1``: one JSON line per root and per live object
  (address, type, shallow size, header bits, ``alloc_seq`` epoch,
  allocation-site tag, outgoing strong edges) plus a sidecar byte-offset
  index, loadable without the VM.
* **Analysis** (:mod:`repro.snapshot.dominators`,
  :mod:`repro.snapshot.retained`) — immediate dominators (iterative
  Cooper–Harvey–Kennedy under a synthetic super-root), retained sizes by
  accumulation over the dominator tree, and "why-alive" queries rendered
  through the Figure-1 :class:`~repro.core.reporting.HeapPath` machinery.
* **Diff & leak triage** (:mod:`repro.snapshot.diff`) — per-type
  live-count/byte growth between two snapshots, surviving-object
  retention, and ranked leak candidates cross-checked against the Cork
  baseline's per-type growth slopes.

``python -m repro snapshot capture|analyze|diff|why`` drives all of it
from the command line.
"""

from __future__ import annotations

from repro.snapshot.capture import SnapshotPolicy, SnapshotSink, capture_snapshot
from repro.snapshot.diff import LeakCandidate, SnapshotDiff, diff_snapshots
from repro.snapshot.dominators import SUPER_ROOT, DominatorTree, build_dominator_tree
from repro.snapshot.format import (
    SNAPSHOT_SCHEMA,
    HeapSnapshot,
    ObjectRecord,
    SnapshotFormatError,
    SnapshotWriter,
    index_path,
    load_snapshot,
    read_index,
    read_object,
)
from repro.snapshot.retained import (
    WhyAlive,
    retained_sizes,
    retained_set_of_type,
    top_retained,
    why_alive,
)

__all__ = [
    "SNAPSHOT_SCHEMA",
    "SUPER_ROOT",
    "DominatorTree",
    "HeapSnapshot",
    "LeakCandidate",
    "ObjectRecord",
    "SnapshotDiff",
    "SnapshotFormatError",
    "SnapshotPolicy",
    "SnapshotSink",
    "SnapshotWriter",
    "WhyAlive",
    "build_dominator_tree",
    "capture_snapshot",
    "diff_snapshots",
    "index_path",
    "load_snapshot",
    "read_index",
    "read_object",
    "retained_set_of_type",
    "retained_sizes",
    "top_retained",
    "why_alive",
]
