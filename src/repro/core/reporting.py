"""Violation records and Figure-1-style path reporting.

When an assertion is triggered, "displaying that path for the user would be
the best way to help pinpoint the error.  Our reporting strategy is to
provide the full path through the object graph, from root to the dead
object." (§2.7)  The path itself comes from the tracer's tagged worklist
(:meth:`repro.gc.tracer.Tracer.current_path`); this module turns it into the
report format shown in Figure 1 of the paper:

    Warning: an object that was asserted dead is reachable.
    Type: spec.jbb.Order
    Path to object:
    spec.jbb.Company ->
    Object[] ->
    ...

Unlike Cork, "our path consists of object instances, not just types" — each
:class:`PathEntry` carries the concrete object's address and identity hash,
although (also like the paper) the default rendering displays types.
"""

from __future__ import annotations

import enum
from typing import Callable, Iterable, Optional, Sequence

from repro.heap import header as hdr
from repro.heap.object_model import HeapObject


class AssertionKind(enum.Enum):
    """The assertion families of §2.3–§2.5."""

    DEAD = "assert-dead"
    ALLDEAD = "assert-alldead"
    INSTANCES = "assert-instances"
    UNSHARED = "assert-unshared"
    OWNED_BY = "assert-ownedby"
    #: Improper use of assert-ownedby detected at scan time (overlap, §2.5.2).
    OWNERSHIP_MISUSE = "assert-ownedby-misuse"


class PathEntry:
    """One step of a heap path: a concrete object instance."""

    __slots__ = ("type_name", "address", "identity_hash")

    def __init__(self, obj: HeapObject):
        self.type_name = obj.cls.name
        self.address = obj.address
        self.identity_hash = hdr.hash_of(obj.status)

    @classmethod
    def from_parts(
        cls, type_name: str, address: int, identity_hash: int = 0
    ) -> "PathEntry":
        """Build an entry without a live :class:`HeapObject` (e.g. from a
        snapshot record loaded long after the VM is gone)."""
        entry = cls.__new__(cls)
        entry.type_name = type_name
        entry.address = address
        entry.identity_hash = identity_hash
        return entry

    def render(self, show_addresses: bool = False) -> str:
        if show_addresses:
            return f"{self.type_name}@{self.address:#x}"
        return self.type_name

    def __repr__(self) -> str:
        return f"<path {self.render(show_addresses=True)}>"


class HeapPath:
    """A root-to-object path, root first."""

    __slots__ = ("root_description", "entries")

    def __init__(self, root_description: Optional[str], objects: Sequence[HeapObject]):
        self.root_description = root_description
        self.entries = [PathEntry(o) for o in objects]

    @classmethod
    def from_tracer(cls, tracer, tip: Optional[HeapObject]) -> "HeapPath":
        root_desc, objects = tracer.current_path(tip)
        return cls(root_desc, objects)

    @classmethod
    def from_entries(
        cls, root_description: Optional[str], entries: Sequence[PathEntry]
    ) -> "HeapPath":
        """Build a path from pre-made entries (e.g. a snapshot's dominator
        chain) instead of live heap objects."""
        path = cls(root_description, [])
        path.entries = list(entries)
        return path

    @classmethod
    def unavailable(cls, note: str) -> "HeapPath":
        path = cls(note, [])
        return path

    def __len__(self) -> int:
        return len(self.entries)

    def type_names(self) -> list[str]:
        return [e.type_name for e in self.entries]

    def render(self, show_addresses: bool = False) -> str:
        lines = []
        if self.root_description:
            lines.append(self.root_description)
        lines.extend(e.render(show_addresses) for e in self.entries)
        return " ->\n".join(lines) if lines else "(no path available)"


class Violation:
    """One triggered GC assertion."""

    __slots__ = (
        "kind",
        "message",
        "type_name",
        "address",
        "alloc_seq",
        "alloc_site",
        "site",
        "path",
        "gc_number",
        "reaction",
        "details",
    )

    def __init__(
        self,
        kind: AssertionKind,
        message: str,
        obj: Optional[HeapObject] = None,
        site: Optional[str] = None,
        path: Optional[HeapPath] = None,
        gc_number: int = 0,
        details: Optional[dict] = None,
    ):
        self.kind = kind
        self.message = message
        self.type_name = obj.cls.name if obj is not None else None
        self.address = obj.address if obj is not None else None
        self.alloc_seq = obj.alloc_seq if obj is not None else None
        self.alloc_site = obj.alloc_site if obj is not None else None
        self.site = site
        self.path = path
        self.gc_number = gc_number
        self.reaction: Optional[str] = None
        self.details = details or {}

    def render(self, show_addresses: bool = False) -> str:
        """Figure-1 format."""
        lines = [f"Warning: {self.message}"]
        if self.type_name is not None:
            lines.append(f"Type: {self.type_name}")
        if self.alloc_seq is not None:
            alloc = f"Allocated: epoch {self.alloc_seq}"
            if self.alloc_site is not None:
                alloc += f" at {self.alloc_site}"
            lines.append(alloc)
        if self.site is not None:
            lines.append(f"Asserted at: {self.site}")
        if self.path is not None and len(self.path) > 0:
            lines.append("Path to object:")
            lines.append(self.path.render(show_addresses))
        elif self.path is not None and self.path.root_description:
            lines.append(f"Path to object: {self.path.root_description}")
        retained = self.details.get("retained_bytes")
        if retained is not None:
            lines.append(f"Retained size: {retained} bytes")
        chain = self.details.get("dominator_chain")
        if chain:
            lines.append("Dominator chain:")
            lines.append(" ->\n".join(chain))
        snapshot_path = self.details.get("snapshot")
        if snapshot_path:
            lines.append(f"Snapshot: {snapshot_path}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"<violation {self.kind.value}: {self.message!r} gc={self.gc_number}>"


class ViolationLog:
    """Collected violations plus rendered warning text, per VM."""

    def __init__(self) -> None:
        self.violations: list[Violation] = []
        self.lines: list[str] = []
        self.sinks: list[Callable[[Violation], None]] = []

    def record(self, violation: Violation) -> None:
        self.violations.append(violation)
        self.lines.append(violation.render())
        for sink in self.sinks:
            sink(violation)

    def of_kind(self, kind: AssertionKind) -> list[Violation]:
        return [v for v in self.violations if v.kind is kind]

    def clear(self) -> None:
        self.violations.clear()
        self.lines.clear()

    def __len__(self) -> int:
        return len(self.violations)

    def __iter__(self) -> Iterable[Violation]:
        return iter(self.violations)
