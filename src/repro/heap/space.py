"""Heap spaces: address allocation policies over the simulated address space.

Two policies are provided, matching the collectors built on top of them:

* :class:`FreeListSpace` — segregated-fit free-list allocation for the
  MarkSweep collector (the paper's configuration).
* :class:`BumpSpace` — monotone bump-pointer allocation for the copying
  (SemiSpace) collector and for generational nurseries.

A space deals purely in *addresses and byte counts*; objects themselves live
in the :class:`~repro.heap.heap.ObjectHeap` table.  Every space enforces a
byte capacity so that allocation pressure triggers collections at realistic
points (the paper runs each benchmark at 2× its minimum heap size).
"""

from __future__ import annotations

from repro.errors import HeapError
from repro.heap.freelist import FreeList, size_class_for
from repro.heap.layout import HEAP_BASE_ADDRESS, align_up


class Space:
    """Common accounting shared by all space policies."""

    def __init__(self, name: str, capacity_bytes: int, base_address: int = HEAP_BASE_ADDRESS):
        if capacity_bytes <= 0:
            raise HeapError(f"space {name!r} needs a positive capacity")
        self.name = name
        self.capacity_bytes = capacity_bytes
        self.bytes_in_use = 0
        self._base = base_address
        self._cursor = base_address

    @property
    def bytes_free(self) -> int:
        return self.capacity_bytes - self.bytes_in_use

    def can_fit(self, nbytes: int) -> bool:
        return self.bytes_in_use + nbytes <= self.capacity_bytes

    def _bump(self, nbytes: int) -> int:
        address = self._cursor
        self._cursor += align_up(nbytes)
        return address

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} {self.name}: "
            f"{self.bytes_in_use}/{self.capacity_bytes} bytes>"
        )


class FreeListSpace(Space):
    """Segregated-fit space: cells recycle through per-size-class free lists."""

    def __init__(self, name: str, capacity_bytes: int, base_address: int = HEAP_BASE_ADDRESS):
        super().__init__(name, capacity_bytes, base_address)
        self.free_list = FreeList()
        #: Addresses handed out, mapped to their cell size (needed to return
        #: the right cell on free).  This models the side metadata a real
        #: block-structured space derives from block headers.
        self._cell_sizes: dict[int, int] = {}

    def allocate(self, nbytes: int) -> int | None:
        """Allocate a cell for ``nbytes``; None when the space is full."""
        cell = size_class_for(nbytes)
        if not self.can_fit(cell):
            return None
        address = self.free_list.pop(cell)
        if address is None:
            address = self._bump(cell)
        self._cell_sizes[address] = cell
        self.bytes_in_use += cell
        return address

    def free(self, address: int) -> int:
        """Release the cell at ``address``; returns the cell size in bytes."""
        try:
            cell = self._cell_sizes.pop(address)
        except KeyError:
            raise HeapError(f"free of unallocated address {address:#x}") from None
        self.bytes_in_use -= cell
        self.free_list.push(address, cell)
        return cell

    def cell_size(self, address: int) -> int:
        return self._cell_sizes[address]

    def contains(self, address: int) -> bool:
        return address in self._cell_sizes


class BumpSpace(Space):
    """Monotone bump allocation; reclamation only by wholesale reset.

    Used as each semispace of the copying collector and as the nursery of
    the generational collector.  ``reset`` empties the space (after
    evacuation) and rewinds the bump cursor.
    """

    def __init__(self, name: str, capacity_bytes: int, base_address: int = HEAP_BASE_ADDRESS):
        super().__init__(name, capacity_bytes, base_address)
        self._allocated: dict[int, int] = {}

    def allocate(self, nbytes: int) -> int | None:
        nbytes = align_up(nbytes)
        if not self.can_fit(nbytes):
            return None
        address = self._bump(nbytes)
        self._allocated[address] = nbytes
        self.bytes_in_use += nbytes
        return address

    def contains(self, address: int) -> bool:
        return address in self._allocated

    def addresses(self) -> list[int]:
        return list(self._allocated)

    def release(self, address: int) -> int:
        """Drop one allocation (used when evacuating survivors one by one)."""
        nbytes = self._allocated.pop(address)
        self.bytes_in_use -= nbytes
        return nbytes

    def reset(self) -> None:
        """Empty the space entirely and rewind the bump cursor."""
        self._allocated.clear()
        self.bytes_in_use = 0
        self._cursor = self._base
