"""start-region / assert-alldead (§2.3.2): per-thread region bracketing."""

import pytest

from repro.core.reporting import AssertionKind
from repro.errors import RegionError
from tests.conftest import make_node_class


class TestRegions:
    def test_memory_stable_region_passes(self, vm, node_class):
        vm.assertions.start_region(label="service")
        with vm.scope():
            for _ in range(5):
                vm.new(node_class)
        asserted = vm.assertions.assert_alldead(site="service end")
        assert asserted == 5
        vm.gc()
        assert len(vm.engine.log) == 0

    def test_escaping_allocation_triggers(self, vm, node_class):
        vm.assertions.start_region(label="service")
        with vm.scope():
            escaping = vm.new(node_class)
            vm.statics.set_ref("escaped", escaping.address)  # the leak
            vm.new(node_class)
        vm.assertions.assert_alldead(site="service end")
        vm.gc()
        assert len(vm.engine.log) == 1
        violation = vm.engine.log.violations[0]
        assert violation.kind is AssertionKind.ALLDEAD
        assert violation.address == escaping.obj.address

    def test_allocations_before_region_not_included(self, vm, node_class):
        with vm.scope():
            before = vm.new(node_class)
            vm.statics.set_ref("pre", before.address)
        vm.assertions.start_region()
        asserted = vm.assertions.assert_alldead()
        assert asserted == 0
        vm.gc()
        assert len(vm.engine.log) == 0

    def test_region_objects_reclaimed_mid_region_satisfy(self, vm, node_class):
        """If a GC inside the region already reclaimed a queued object, it is
        trivially dead and must not be re-asserted at a recycled address."""
        vm.assertions.start_region()
        with vm.scope():
            vm.new(node_class)
        vm.gc(reason="mid-region")  # queued object dies here
        asserted = vm.assertions.assert_alldead()
        assert asserted == 0
        vm.gc()
        assert len(vm.engine.log) == 0

    def test_regions_are_per_thread(self, vm, node_class):
        worker = vm.new_thread("w")
        vm.assertions.start_region(thread=worker)
        with vm.scope():
            vm.new(node_class)  # allocated on main: not in worker's region
        with vm.on_thread(worker):
            with vm.scope():
                vm.new(node_class)
        main_count = len(vm.main_thread.region_queue)
        asserted = vm.assertions.assert_alldead(thread=worker)
        assert main_count == 0
        assert asserted == 1

    def test_concurrent_regions_on_different_threads(self, vm, node_class):
        t1 = vm.new_thread("t1")
        t2 = vm.new_thread("t2")
        vm.assertions.start_region(thread=t1)
        vm.assertions.start_region(thread=t2)
        with vm.on_thread(t1), vm.scope():
            vm.new(node_class)
        with vm.on_thread(t2), vm.scope():
            vm.new(node_class)
            vm.new(node_class)
        assert vm.assertions.assert_alldead(thread=t1) == 1
        assert vm.assertions.assert_alldead(thread=t2) == 2

    def test_nested_region_rejected(self, vm):
        vm.assertions.start_region()
        with pytest.raises(RegionError):
            vm.assertions.start_region()

    def test_alldead_without_region_rejected(self, vm):
        with pytest.raises(RegionError):
            vm.assertions.assert_alldead()

    def test_alldead_counts_as_dead_calls(self, vm, node_class):
        vm.assertions.start_region()
        with vm.scope():
            vm.new(node_class)
            vm.new(node_class)
        vm.assertions.assert_alldead()
        counts = vm.assertions.call_counts()
        assert counts["assert-alldead"] == 1
        assert counts["assert-dead"] == 2  # queue drained into assert-dead

    def test_server_idiom_loop(self, vm, node_class):
        """The paper's server example: bracket each connection service."""
        for request in range(3):
            vm.assertions.start_region(label=f"conn-{request}")
            with vm.scope():
                for _ in range(4):
                    vm.new(node_class)  # per-request temporaries
            vm.assertions.assert_alldead(site=f"conn-{request} done")
            vm.gc()
        assert len(vm.engine.log) == 0
