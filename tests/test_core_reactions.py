"""Reaction policies (§2.6): LOG, HALT, FORCE, and programmatic handlers."""

import pytest

from repro.core.reactions import Reaction, ReactionPolicy
from repro.core.reporting import AssertionKind
from repro.errors import AssertionViolationHalt
from repro.runtime.vm import VirtualMachine
from tests.conftest import build_chain, make_node_class


def make_vm(policy=None):
    return VirtualMachine(heap_bytes=1 << 20, policy=policy)


class TestLogPolicy:
    def test_log_is_default_and_continues(self):
        vm = make_vm()
        cls = make_node_class(vm)
        nodes = build_chain(vm, cls, 1)
        vm.assertions.assert_dead(nodes[0])
        vm.gc()  # no exception
        assert vm.engine.log.violations[0].reaction == "log"
        assert nodes[0].is_live  # program semantics untouched


class TestHaltPolicy:
    def test_halt_raises_after_collection(self):
        policy = ReactionPolicy()
        policy.set_reaction(AssertionKind.DEAD, Reaction.HALT)
        vm = make_vm(policy)
        cls = make_node_class(vm)
        nodes = build_chain(vm, cls, 1)
        vm.assertions.assert_dead(nodes[0])
        with pytest.raises(AssertionViolationHalt) as exc:
            vm.gc()
        assert exc.value.violation.kind is AssertionKind.DEAD

    def test_halt_leaves_heap_consistent(self):
        policy = ReactionPolicy()
        policy.set_reaction(AssertionKind.DEAD, Reaction.HALT)
        vm = make_vm(policy)
        cls = make_node_class(vm)
        nodes = build_chain(vm, cls, 3)
        vm.assertions.assert_dead(nodes[2])
        with pytest.raises(AssertionViolationHalt):
            vm.gc()
        # The collection completed before the halt surfaced.
        assert all(n.is_live for n in nodes)
        assert all(not n.obj.is_marked for n in nodes)

    def test_halt_only_for_configured_kind(self):
        policy = ReactionPolicy()
        policy.set_reaction(AssertionKind.INSTANCES, Reaction.HALT)
        vm = make_vm(policy)
        cls = make_node_class(vm)
        nodes = build_chain(vm, cls, 1)
        vm.assertions.assert_dead(nodes[0])
        vm.gc()  # DEAD still logs

    def test_force_cannot_be_default(self):
        policy = ReactionPolicy()
        with pytest.raises(ValueError):
            policy.set_default(Reaction.FORCE)


class TestForcePolicy:
    def test_force_reclaims_asserted_dead_object(self):
        """'The garbage collector can force objects to be reclaimed by
        nulling out all incoming references.'"""
        policy = ReactionPolicy()
        policy.set_reaction(AssertionKind.DEAD, Reaction.FORCE)
        vm = make_vm(policy)
        cls = make_node_class(vm)
        nodes = build_chain(vm, cls, 3)
        vm.assertions.assert_dead(nodes[2], site="forced")
        vm.gc()
        assert not nodes[2].is_live
        assert nodes[1]["next"] is None  # the incoming reference was nulled
        assert vm.engine.log.violations[0].reaction == "force"

    def test_force_nulls_root_references(self):
        policy = ReactionPolicy()
        policy.set_reaction(AssertionKind.DEAD, Reaction.FORCE)
        vm = make_vm(policy)
        cls = make_node_class(vm)
        with vm.scope():
            victim = vm.new(cls)
            vm.statics.set_ref("v", victim.address)
            vm.assertions.assert_dead(victim)
        vm.gc()
        assert not victim.is_live
        assert vm.statics.get_ref("v") == 0

    def test_force_risks_null_pointer_exception(self):
        """The paper's warning: forcing 'risks introducing a null pointer
        exception' — the mutator now sees null where it expected an object."""
        policy = ReactionPolicy()
        policy.set_reaction(AssertionKind.DEAD, Reaction.FORCE)
        vm = make_vm(policy)
        cls = make_node_class(vm)
        nodes = build_chain(vm, cls, 2)
        vm.assertions.assert_dead(nodes[1])
        vm.gc()
        assert nodes[0]["next"] is None  # mutator must now handle null

    def test_forced_subgraph_floats_one_gc(self):
        policy = ReactionPolicy()
        policy.set_reaction(AssertionKind.DEAD, Reaction.FORCE)
        vm = make_vm(policy)
        cls = make_node_class(vm)
        nodes = build_chain(vm, cls, 3)
        vm.assertions.assert_dead(nodes[1], site="mid")
        vm.gc()
        assert not nodes[1].is_live
        assert nodes[2].is_live  # was only reachable via the victim: floats
        vm.gc()
        assert not nodes[2].is_live

    def test_force_rejected_for_non_lifetime_kinds(self):
        policy = ReactionPolicy()
        with pytest.raises(ValueError):
            policy.set_reaction(AssertionKind.UNSHARED, Reaction.FORCE)
        with pytest.raises(ValueError):
            policy.set_reaction(AssertionKind.INSTANCES, Reaction.FORCE)


class TestProgrammaticHandlers:
    """§2.6 future work: 'a programmatic interface that would allow the
    programmer to test the conditions directly and take action.'"""

    def test_handler_sees_violations(self):
        vm = make_vm()
        seen = []
        vm.engine.policy.add_handler(lambda v: seen.append(v.kind) or None)
        cls = make_node_class(vm)
        nodes = build_chain(vm, cls, 1)
        vm.assertions.assert_dead(nodes[0])
        vm.gc()
        assert seen == [AssertionKind.DEAD]

    def test_handler_overrides_reaction(self):
        vm = make_vm()
        vm.engine.policy.add_handler(
            lambda v: Reaction.HALT if v.kind is AssertionKind.DEAD else None
        )
        cls = make_node_class(vm)
        nodes = build_chain(vm, cls, 1)
        vm.assertions.assert_dead(nodes[0])
        with pytest.raises(AssertionViolationHalt):
            vm.gc()

    def test_handler_can_force_lifetime_assertion(self):
        vm = make_vm()
        vm.engine.policy.add_handler(
            lambda v: Reaction.FORCE if v.kind is AssertionKind.DEAD else None
        )
        cls = make_node_class(vm)
        nodes = build_chain(vm, cls, 2)
        vm.assertions.assert_dead(nodes[1])
        vm.gc()
        assert not nodes[1].is_live

    def test_handler_cannot_force_non_lifetime(self):
        vm = make_vm()
        vm.engine.policy.add_handler(lambda v: Reaction.FORCE)
        cls = make_node_class(vm)
        build_chain(vm, cls, 2)
        vm.assertions.assert_instances(cls, 1)
        with pytest.raises(ValueError):
            vm.gc()

    def test_log_sink_called_on_record(self):
        vm = make_vm()
        lines = []
        vm.engine.log.sinks.append(lambda v: lines.append(v.message))
        cls = make_node_class(vm)
        nodes = build_chain(vm, cls, 1)
        vm.assertions.assert_dead(nodes[0])
        vm.gc()
        assert len(lines) == 1
