"""QVM-style heap probes: immediate checking semantics and sampling."""

import pytest

from repro.core.probes import HeapProbes
from tests.conftest import build_chain, make_node_class


class TestProbeDead:
    def test_dead_object_probes_true(self, vm, node_class):
        with vm.scope():
            doomed = vm.new(node_class)
        probes = HeapProbes(vm)
        assert probes.probe_dead(doomed) is True
        assert probes.stats.gcs_triggered == 1

    def test_live_object_probes_false(self, vm, node_class):
        nodes = build_chain(vm, node_class, 2)
        probes = HeapProbes(vm)
        assert probes.probe_dead(nodes[1]) is False

    def test_answers_at_exact_program_point(self, vm, node_class):
        """The QVM advantage: the probe sees the state *now*, catching a
        transient condition a deferred assertion would miss."""
        nodes = build_chain(vm, node_class, 2)
        probes = HeapProbes(vm)
        # Transiently detach, probe, reattach.
        nodes[0]["next"] = None
        was_dead = probes.probe_dead(nodes[1])
        assert was_dead is True
        # A deferred assert-dead placed and *resolved later* would have
        # been satisfied too here — but if the mutator had reattached
        # before the next scheduled GC, the assertion would miss what the
        # probe caught.  (GC assertions "can miss a transient error if it
        # does not persist across a GC cycle.")

    def test_every_probe_triggers_a_collection(self, vm, node_class):
        nodes = build_chain(vm, node_class, 3)
        probes = HeapProbes(vm)
        for _ in range(5):
            probes.probe_dead(nodes[0])
        assert vm.stats.collections == 5


class TestProbeInstances:
    def test_counts_live_instances(self, vm, node_class):
        build_chain(vm, node_class, 4)
        with vm.scope():
            vm.new(node_class)  # garbage — collected by the probe's GC
        probes = HeapProbes(vm)
        assert probes.probe_instances(node_class) == 4

    def test_by_name_and_subclasses(self, vm):
        parent = vm.define_class("Parent", [("x", "int")])
        child = vm.define_class("Child", superclass=parent)
        with vm.scope():
            vm.statics.set_ref("a", vm.new(parent).address)
            vm.statics.set_ref("b", vm.new(child).address)
        probes = HeapProbes(vm)
        assert probes.probe_instances("Parent") == 2
        assert probes.probe_instances("Child") == 1


class TestProbeUnshared:
    def test_single_parent(self, vm, node_class):
        nodes = build_chain(vm, node_class, 2)
        probes = HeapProbes(vm)
        assert probes.probe_unshared(nodes[1]) is True

    def test_shared(self, vm, node_class):
        with vm.scope():
            a = vm.new(node_class)
            b = vm.new(node_class)
            target = vm.new(node_class)
            a["next"] = target
            b["next"] = target
            vm.statics.set_ref("a", a.address)
            vm.statics.set_ref("b", b.address)
        probes = HeapProbes(vm)
        assert probes.probe_unshared(target) is False


class TestProbeReachability:
    def test_reachable(self, vm, node_class):
        nodes = build_chain(vm, node_class, 4)
        probes = HeapProbes(vm)
        assert probes.probe_reachable_from(nodes[0], nodes[3]) is True

    def test_unreachable(self, vm, node_class):
        nodes = build_chain(vm, node_class, 4)
        with vm.scope():
            stranger = vm.new(node_class)
            vm.statics.set_ref("s", stranger.address)
        probes = HeapProbes(vm)
        assert probes.probe_reachable_from(nodes[0], stranger) is False


class TestSampling:
    def test_sampling_executes_one_in_n(self, vm, node_class):
        nodes = build_chain(vm, node_class, 2)
        probes = HeapProbes(vm, sampling=4)
        results = [probes.probe_dead(nodes[1]) for _ in range(8)]
        executed = [r for r in results if r is not None]
        assert len(executed) == 2
        assert probes.stats.requested == 8
        assert probes.stats.executed == 2
        assert probes.stats.sampled_out == 6
        assert vm.stats.collections == 2

    def test_invalid_sampling_rejected(self, vm):
        with pytest.raises(ValueError):
            HeapProbes(vm, sampling=0)

    def test_cost_contrast_with_batched_assertions(self, vm, node_class):
        """The §4.1 trade-off in one test: N immediate probes trigger N
        collections; N batched GC assertions are checked by a single one."""
        nodes = build_chain(vm, node_class, 8)
        probes = HeapProbes(vm)
        for node in nodes:
            probes.probe_dead(node)
        probe_gcs = vm.stats.collections

        from repro.runtime.vm import VirtualMachine

        vm2 = VirtualMachine(heap_bytes=4 << 20)
        cls2 = make_node_class(vm2)
        nodes2 = build_chain(vm2, cls2, 8)
        for node in nodes2:
            vm2.assertions.assert_dead(node)
        vm2.gc()
        assert probe_gcs == 8
        assert vm2.stats.collections == 1
        assert len(vm2.engine.log) == 8  # all checked in that single pass
