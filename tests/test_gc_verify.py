"""Heap-integrity verifier tests."""

import pytest

from repro.gc.verify import HeapVerificationError, verify_heap
from repro.heap import header as hdr
from repro.heap.layout import NULL
from tests.conftest import build_chain, make_node_class


class TestCleanHeaps:
    def test_empty_vm_verifies(self, vm):
        assert verify_heap(vm) == []

    def test_populated_vm_verifies(self, vm, node_class):
        build_chain(vm, node_class, 10)
        vm.gc()
        assert verify_heap(vm) == []

    def test_verifies_across_collectors(self, any_vm):
        cls = make_node_class(any_vm)
        nodes = build_chain(any_vm, cls, 10)
        nodes[4]["next"] = None
        any_vm.gc()
        assert verify_heap(any_vm) == []

    def test_verifies_with_assertions_registered(self, vm, node_class):
        nodes = build_chain(vm, node_class, 5)
        vm.assertions.assert_dead(nodes[4])
        vm.assertions.assert_unshared(nodes[3])
        vm.assertions.assert_ownedby(nodes[0], nodes[1])
        vm.gc()
        assert verify_heap(vm) == []


class TestDetection:
    def test_detects_dangling_reference(self, vm, node_class):
        nodes = build_chain(vm, node_class, 2)
        nodes[0].obj.slots[node_class.field("next").slot] = 0xDEAD0
        problems = verify_heap(vm, raise_on_error=False)
        assert any("dangling reference" in p for p in problems)
        with pytest.raises(HeapVerificationError):
            verify_heap(vm)

    def test_detects_dangling_root(self, vm):
        vm.statics.set_ref("bad", 0xBAD0)
        problems = verify_heap(vm, raise_on_error=False)
        assert any("dangling address" in p for p in problems)

    def test_detects_leftover_mark_bit(self, vm, node_class):
        nodes = build_chain(vm, node_class, 1)
        nodes[0].obj.set(hdr.MARK_BIT)
        problems = verify_heap(vm, raise_on_error=False)
        assert any("MARK bit" in p for p in problems)

    def test_detects_stale_registry_entry(self, vm, node_class):
        nodes = build_chain(vm, node_class, 1)
        vm.engine.registry.register_dead(0xFE0, "stale", 0)
        problems = verify_heap(vm, raise_on_error=False)
        assert any("dead site" in p for p in problems)

    def test_detects_unsorted_ownee_array(self, vm, node_class):
        nodes = build_chain(vm, node_class, 3)
        vm.assertions.assert_ownedby(nodes[0], nodes[1])
        vm.assertions.assert_ownedby(nodes[0], nodes[2])
        record = vm.engine.registry.owners[nodes[0].obj.address]
        record.ownees.reverse()
        problems = verify_heap(vm, raise_on_error=False)
        assert any("unsorted" in p for p in problems)

    def test_detects_stale_region_queue_entry(self, vm):
        vm.main_thread.region_queue.append(0xFE0)
        problems = verify_heap(vm, raise_on_error=False)
        assert any("region queue" in p for p in problems)


class TestQuarantineBounds:
    def test_fence_is_idempotent_and_counted(self):
        from repro.gc.verify import Quarantine

        quarantine = Quarantine(capacity=4)
        assert quarantine.fence(0x100) is True
        assert quarantine.fence(0x100) is False  # already fenced: no-op
        assert len(quarantine) == 1
        assert 0x100 in quarantine
        assert quarantine.remaining == 3

    def test_overflow_is_a_typed_failure(self):
        from repro.errors import QuarantineOverflowError
        from repro.gc.verify import HeapVerificationError, Quarantine

        quarantine = Quarantine(capacity=2)
        quarantine.fence(0x100)
        quarantine.fence(0x200)
        with pytest.raises(QuarantineOverflowError) as excinfo:
            quarantine.fence(0x300)
        # Typed within the corruption hierarchy, carries what it held.
        assert not isinstance(excinfo.value, HeapVerificationError)
        assert excinfo.value.fenced == {0x100, 0x200}
        assert excinfo.value.problems
        # Re-fencing an already-held address stays a no-op, not an overflow.
        assert quarantine.fence(0x100) is False

    def test_sentinel_freelist_scrub_withholds_aliased_cells(self, vm, node_class):
        from repro.gc.verify import run_sentinel, verify_heap

        nodes = build_chain(vm, node_class, 4)
        space = vm.collector.space
        live = nodes[0].obj.address
        space.free_list.push(live, space.cell_size(live))
        report = run_sentinel(
            vm, vm.collector.quarantine, phase="test", scrub_freelists=True
        )
        assert report.freelist_scrubbed == 1
        assert live in vm.collector.quarantine
        # The scrub repaired the heap the paranoid walker validates: the
        # aliased cell is off the free list (fenced-and-listed would be a
        # fresh paranoid problem, so the scrub must remove, not just fence).
        assert verify_heap(vm, raise_on_error=False, paranoid=True) == []


class TestContinuousVerification:
    def test_workloads_leave_heap_consistent(self, vm):
        from repro.workloads.jbb import JbbConfig, run_pseudojbb

        run_pseudojbb(
            vm,
            JbbConfig(
                iterations=1,
                transactions_per_iteration=100,
                assert_dead_orders=True,
                assert_ownedby_orders=True,
                gc_per_iteration=True,
            ),
        )
        assert verify_heap(vm) == []

    def test_semispace_moves_leave_heap_consistent(self):
        from repro.runtime.vm import VirtualMachine

        vm = VirtualMachine(heap_bytes=1 << 20, collector="semispace")
        cls = make_node_class(vm)
        nodes = build_chain(vm, cls, 20)
        vm.assertions.assert_ownedby(nodes[0], nodes[5])
        vm.gc()
        vm.gc()
        assert verify_heap(vm) == []
