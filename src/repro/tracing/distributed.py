"""End-to-end request tracing across the multi-tenant assertion service.

PR 4's :class:`~repro.tracing.spans.SpanTracer` stops at the single-VM
boundary: it can show *that* a pause was long, but once PR 8 put many
tenant VMs behind one server, nothing connected a slow violation
delivery or an admission stall back to the GC pauses and assertion
checks that caused it.  This module closes that gap with three pieces:

* :class:`TraceContext` — W3C-traceparent-style context (32-hex
  ``trace_id``, 16-hex span ids) that clients stamp onto ``open`` and
  ``submit`` frames.  The ``repro-wire/1`` protocol already preserves
  unknown keys, so old servers ignore the stamps and old clients simply
  get server-rooted traces — no version negotiation needed.
* :class:`DistributedTracer` — the server-side recorder.  One per
  service, shared by the event loop and the executor threads (hence the
  lock — unlike ``SpanTracer``, which is single-threaded by
  construction).  It records the request lifecycle as explicit spans:
  ``request`` (open received → evicted), ``admission_wait`` (receipt →
  decision, queued retries included), ``admission_commit`` (time inside
  the ledger mutex), ``executor_wait`` (submit dispatched → workload
  thread picked it up), ``workload_execution``, and one
  ``violation_delivery`` span per violation frame (enqueued → bytes
  written — the same mono stamps the delivery-lag SLO scores).
* :func:`merge_service_trace` — folds the server's spans plus every
  traced tenant VM's ``SpanTracer`` stream into one Chrome/Perfetto
  export.  Requests get synthetic ``tid`` lanes on the server process;
  each tenant VM becomes its own synthetic process (``pid`` =
  ``TENANT_TRACK_BASE + n``, reusing PR 7's ``WORKER_TRACK_BASE``
  convention for synthetic tracks), so one timeline shows tenant A's
  violation-delivery lag overlapping tenant B's mark pause on the
  shared executor.  Tenant GC spans are re-parented under the owning
  request: top-level spans and instants carry ``trace_id`` /
  ``parent_span_id`` args pointing at the request span, and the tenant
  process metadata names the request, so every pause is reachable from
  the trace id a client (or a firing SLO alert exemplar) hands you.

All stamps are ``time.perf_counter()`` readings.  The merge happens in
the server process, so every tracer shares one monotonic clock and the
tracks align without cross-clock skew correction.
"""

from __future__ import annotations

import json
import os
import re
import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.tracing.export import TRACE_PID, TRACE_TID
from repro.tracing.spans import WORKER_TRACK_BASE

if TYPE_CHECKING:
    import random

#: Schema tag for merged multi-tenant exports (``otherData.schema``).
DTRACE_SCHEMA = "repro-dtrace/1"

#: Synthetic-track conventions, continuing PR 7's ``WORKER_TRACK_BASE``:
#: request lanes are ``tid`` s >= REQUEST_TRACK_BASE on the server
#: process; tenant VMs are ``pid`` s >= TENANT_TRACK_BASE.
REQUEST_TRACK_BASE = WORKER_TRACK_BASE
TENANT_TRACK_BASE = WORKER_TRACK_BASE

_TRACEPARENT = re.compile(
    r"^([0-9a-f]{2})-([0-9a-f]{32})-([0-9a-f]{16})-([0-9a-f]{2})$"
)


def _hex_id(bits: int, rng: Optional["random.Random"] = None) -> str:
    """A random lowercase hex id; seeded when ``rng`` is given."""
    if rng is None:
        return os.urandom(bits // 8).hex()
    return format(rng.getrandbits(bits), f"0{bits // 4}x")


@dataclass(frozen=True)
class TraceContext:
    """One position in a distributed trace (W3C trace-context shaped).

    ``trace_id`` identifies the whole request tree; ``span_id`` is this
    participant's own span; ``parent_span_id`` is who created it.  The
    wire representation is two plain frame keys (``trace_id`` and
    ``parent_span_id``) rather than a packed header — the frames are
    already JSON — but :meth:`to_traceparent` / :meth:`from_traceparent`
    speak the standard ``00-{trace}-{span}-01`` form for interop.
    """

    trace_id: str
    span_id: str
    parent_span_id: Optional[str] = None

    @classmethod
    def new(cls, rng: Optional["random.Random"] = None) -> "TraceContext":
        """A fresh root context; pass a seeded ``rng`` for determinism."""
        return cls(trace_id=_hex_id(128, rng), span_id=_hex_id(64, rng))

    def child(self, rng: Optional["random.Random"] = None) -> "TraceContext":
        return TraceContext(
            trace_id=self.trace_id,
            span_id=_hex_id(64, rng),
            parent_span_id=self.span_id,
        )

    def to_traceparent(self) -> str:
        return f"00-{self.trace_id}-{self.span_id}-01"

    @classmethod
    def from_traceparent(cls, header: str) -> Optional["TraceContext"]:
        match = _TRACEPARENT.match(header.strip().lower())
        if match is None:
            return None
        return cls(trace_id=match.group(2), span_id=match.group(3))

    def stamp(self, frame: dict) -> dict:
        """Attach this context to an outbound wire frame, in place.

        The receiver parents its work under ``parent_span_id`` — this
        context's own span — exactly like a propagated traceparent.
        """
        frame["trace_id"] = self.trace_id
        frame["parent_span_id"] = self.span_id
        return frame

    @classmethod
    def from_frame(cls, frame: dict) -> Optional["TraceContext"]:
        """Recover the *sender's* position from a stamped frame.

        Returns None when the frame is unstamped (an old client) or the
        stamp is malformed — tracing must never reject a frame the wire
        protocol accepts.
        """
        trace_id = frame.get("trace_id")
        if not isinstance(trace_id, str) or not trace_id:
            return None
        parent = frame.get("parent_span_id")
        if not isinstance(parent, str) or not parent:
            parent = "0" * 16
        return cls(trace_id=trace_id, span_id=parent)


class DistributedTracer:
    """Thread-safe recorder for server-side request-lifecycle spans.

    Spans are plain dicts ``{name, cat, start, end, lane, trace_id,
    span_id, parent_span_id, args}`` with perf_counter stamps; span ids
    are a process-local counter rendered as 16-hex (deterministic, and
    collision-free within one service).  ``begin``/``end`` support the
    long-lived ``request`` span; everything else is recorded complete
    via :meth:`record`.  Lanes are synthetic ``tid`` s handed out in
    arrival order from ``REQUEST_TRACK_BASE``.
    """

    def __init__(self) -> None:
        self.t0 = time.perf_counter()
        self.spans: list[dict] = []
        self._open: dict[str, dict] = {}
        self._lanes: dict[str, tuple[int, str]] = {}
        self._lock = threading.Lock()
        self._next_id = 1

    def new_span_id(self) -> str:
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        return format(span_id, "016x")

    def lane(self, key: str, label: str) -> int:
        """The synthetic tid for ``key``, allocating (and naming) it once."""
        with self._lock:
            row = self._lanes.get(key)
            if row is None:
                row = (REQUEST_TRACK_BASE + len(self._lanes), label)
                self._lanes[key] = row
            return row[0]

    def begin(
        self,
        name: str,
        *,
        start: float,
        lane: int,
        trace_id: str,
        parent_span_id: Optional[str] = None,
        span_id: Optional[str] = None,
        cat: str = "request",
        args: Optional[dict] = None,
    ) -> str:
        """Open a long-lived span; finish it with :meth:`end`."""
        span_id = span_id or self.new_span_id()
        span = {
            "name": name, "cat": cat, "start": start, "end": None,
            "lane": lane, "trace_id": trace_id, "span_id": span_id,
            "parent_span_id": parent_span_id, "args": dict(args or {}),
        }
        with self._lock:
            self._open[span_id] = span
        return span_id

    def end(self, span_id: str, end: float, args: Optional[dict] = None) -> None:
        with self._lock:
            span = self._open.pop(span_id, None)
            if span is None:
                return
            span["end"] = end
            if args:
                span["args"].update(args)
            self.spans.append(span)

    def record(
        self,
        name: str,
        start: float,
        end: float,
        *,
        lane: int,
        trace_id: str,
        parent_span_id: Optional[str] = None,
        cat: str = "service",
        args: Optional[dict] = None,
    ) -> str:
        """Record one already-finished span; returns its span id."""
        span_id = self.new_span_id()
        span = {
            "name": name, "cat": cat, "start": start, "end": max(start, end),
            "lane": lane, "trace_id": trace_id, "span_id": span_id,
            "parent_span_id": parent_span_id, "args": dict(args or {}),
        }
        with self._lock:
            self.spans.append(span)
        return span_id

    def snapshot(self) -> tuple[list[dict], dict[str, tuple[int, str]]]:
        """Consistent copy of (finished + still-open spans, lane table).

        Still-open spans (a request abandoned mid-run, a trace exported
        while serving) are returned with ``end=None``; the merge layer
        closes them at the export horizon.
        """
        with self._lock:
            spans = [dict(span) for span in self.spans]
            spans.extend(dict(span) for span in self._open.values())
            lanes = dict(self._lanes)
        return spans, lanes


def _matched_span_indices(events: list) -> set[int]:
    """Indices of B/E events forming balanced pairs in a SpanTracer stream.

    A tenant abandoned mid-collection leaves its tail span open; those
    unmatched events are dropped from the merged export (an auto-close
    would fabricate a duration) rather than failing validation.
    """
    matched: set[int] = set()
    stack: list[int] = []
    for idx, event in enumerate(events):
        ph = event[0]
        if ph == "B":
            stack.append(idx)
        elif ph == "E":
            if stack:
                matched.add(stack.pop())
                matched.add(idx)
    return matched


def _tenant_chrome_events(record: dict, pid: int, t0: float) -> list[dict]:
    """One traced tenant VM's SpanTracer stream as Chrome events.

    Mirrors :func:`~repro.tracing.export.chrome_trace_events` but on a
    synthetic tenant ``pid``, rebased to the merged trace's shared
    ``t0``, with every *top-level* span and instant re-parented under
    the owning request via ``trace_id`` / ``parent_span_id`` args.
    """
    tracer = record["tracer"]
    trace_args = {
        "trace_id": record["trace_id"],
        "parent_span_id": record["request_span_id"],
    }
    events = tracer.snapshot_events()
    matched = _matched_span_indices(events)
    out: list[dict] = []
    depth = 0
    for idx, event in enumerate(events):
        ph = event[0]
        if ph == "B":
            if idx not in matched:
                continue
            _ph, name, cat, ts, args = event
            row = {
                "name": name, "cat": cat, "ph": "B",
                "ts": (ts - t0) * 1e6, "pid": pid, "tid": TRACE_TID,
            }
            merged = dict(args) if args else {}
            if depth == 0:
                merged.update(trace_args)
            if merged:
                row["args"] = merged
            depth += 1
        elif ph == "E":
            if idx not in matched:
                continue
            _ph, name, ts = event
            row = {
                "name": name, "ph": "E",
                "ts": (ts - t0) * 1e6, "pid": pid, "tid": TRACE_TID,
            }
            depth -= 1
        elif ph == "X":
            _ph, name, cat, ts, dur, args, track = event
            row = {
                "name": name, "cat": cat, "ph": "X",
                "ts": (ts - t0) * 1e6, "dur": dur * 1e6,
                "pid": pid, "tid": track,
            }
            merged = dict(args) if args else {}
            merged.update(trace_args)
            if merged:
                row["args"] = merged
        elif ph == "i":
            _ph, name, cat, ts, args = event
            row = {
                "name": name, "cat": cat, "ph": "i", "s": "t",
                "ts": (ts - t0) * 1e6, "pid": pid, "tid": TRACE_TID,
            }
            merged = dict(args) if args else {}
            merged.update(trace_args)
            row["args"] = merged
        else:  # "C"
            _ph, name, ts, values = event
            row = {
                "name": name, "ph": "C",
                "ts": (ts - t0) * 1e6, "pid": pid, "tid": TRACE_TID,
                "args": values,
            }
        out.append(row)
    return out


def _tenant_metadata(record: dict, pid: int) -> list[dict]:
    name = f"tenant {record['tenant']} ({record['session']})"
    rows = [
        {
            "name": "process_name", "ph": "M", "pid": pid, "tid": TRACE_TID,
            "ts": 0,
            "args": {
                "name": name,
                "trace_id": record["trace_id"],
                "request_span_id": record["request_span_id"],
            },
        },
        {
            "name": "thread_name", "ph": "M", "pid": pid, "tid": TRACE_TID,
            "ts": 0, "args": {"name": "mutator+gc"},
        },
    ]
    worker_tracks = sorted(
        {e[6] for e in record["tracer"].snapshot_events() if e[0] == "X"}
    )
    for track in worker_tracks:
        rows.append({
            "name": "thread_name", "ph": "M", "pid": pid, "tid": track,
            "ts": 0,
            "args": {"name": f"mark-worker-{track - WORKER_TRACK_BASE}"},
        })
    return rows


def merge_service_trace(
    tracer: DistributedTracer,
    tenants: list[dict],
    meta: Optional[dict] = None,
) -> dict:
    """One Chrome/Perfetto payload: server request lanes + tenant tracks.

    ``tenants`` rows come from ``AssertionService.traced_sessions``:
    ``{tenant, session, tracer, trace_id, request_span_id}``.  All
    events share one timebase (the earliest tracer ``t0``) and are
    globally sorted by timestamp — the sort is stable, so each track's
    own B/E nesting order survives — which is exactly what
    :func:`~repro.tracing.export.validate_chrome_trace` demands.
    """
    spans, lanes = tracer.snapshot()
    t0 = min([tracer.t0] + [record["tracer"].t0 for record in tenants])

    horizon = tracer.t0
    for span in spans:
        horizon = max(horizon, span["start"], span["end"] or span["start"])
    for record in tenants:
        for event in record["tracer"].snapshot_events():
            ph = event[0]
            if ph in ("E", "C"):
                ts = event[2]
            elif ph == "X":
                ts = event[3] + event[4]
            else:
                ts = event[3]
            horizon = max(horizon, ts)

    metadata: list[dict] = [
        {
            "name": "process_name", "ph": "M",
            "pid": TRACE_PID, "tid": TRACE_TID, "ts": 0,
            "args": {"name": "repro-service"},
        },
        {
            "name": "thread_name", "ph": "M",
            "pid": TRACE_PID, "tid": TRACE_TID, "ts": 0,
            "args": {"name": "wire+admission"},
        },
    ]
    for _key, (lane, label) in sorted(lanes.items(), key=lambda kv: kv[1][0]):
        metadata.append({
            "name": "thread_name", "ph": "M",
            "pid": TRACE_PID, "tid": lane, "ts": 0, "args": {"name": label},
        })

    events: list[dict] = []
    for span in spans:
        end = span["end"] if span["end"] is not None else horizon
        args = dict(span["args"])
        args["trace_id"] = span["trace_id"]
        args["span_id"] = span["span_id"]
        if span["parent_span_id"] is not None:
            args["parent_span_id"] = span["parent_span_id"]
        events.append({
            "name": span["name"], "cat": span["cat"], "ph": "X",
            "ts": (span["start"] - t0) * 1e6,
            "dur": max(0.0, end - span["start"]) * 1e6,
            "pid": TRACE_PID, "tid": span["lane"], "args": args,
        })
    for index, record in enumerate(tenants):
        pid = TENANT_TRACK_BASE + index
        metadata.extend(_tenant_metadata(record, pid))
        events.extend(_tenant_chrome_events(record, pid, t0))

    events.sort(key=lambda row: row["ts"])
    other = {
        "schema": DTRACE_SCHEMA,
        "tenant_tracks": len(tenants),
        "request_lanes": len(lanes),
    }
    if meta:
        other.update(meta)
    return {
        "traceEvents": metadata + events,
        "displayTimeUnit": "ms",
        "otherData": other,
    }


def write_merged_trace(
    tracer: DistributedTracer,
    tenants: list[dict],
    path: str,
    meta: Optional[dict] = None,
) -> dict:
    """Serialize the merged export to ``path``; returns a small summary."""
    payload = merge_service_trace(tracer, tenants, meta)
    with open(path, "w") as handle:
        json.dump(payload, handle)
        handle.write("\n")
    return {
        "path": path,
        "events": len(payload["traceEvents"]),
        "tenant_tracks": payload["otherData"]["tenant_tracks"],
        "request_lanes": payload["otherData"]["request_lanes"],
        "file_bytes": os.path.getsize(path),
    }


# -- request breakdown report (the ``repro trace serve`` table) -------------------------


def request_rows(tracer: DistributedTracer) -> list[dict]:
    """Per-request lifecycle breakdown from the recorded server spans."""
    spans, _lanes = tracer.snapshot()
    children: dict[str, list[dict]] = {}
    for span in spans:
        parent = span.get("parent_span_id")
        if parent is not None:
            children.setdefault(parent, []).append(span)

    def _dur(span: dict) -> float:
        end = span["end"] if span["end"] is not None else span["start"]
        return max(0.0, end - span["start"])

    rows: list[dict] = []
    for span in spans:
        if span["name"] != "request":
            continue
        row = {
            "trace_id": span["trace_id"],
            "span_id": span["span_id"],
            "tenant": span["args"].get("tenant"),
            "session": span["args"].get("session"),
            "workload": span["args"].get("workload"),
            "outcome": span["args"].get("outcome"),
            "total_s": _dur(span),
            "admission_wait_s": 0.0,
            "admission_commit_s": 0.0,
            "executor_wait_s": 0.0,
            "execution_s": 0.0,
            "violations_delivered": 0,
            "max_delivery_lag_s": 0.0,
        }
        for child in children.get(span["span_id"], ()):
            if child["name"] == "admission_wait":
                row["admission_wait_s"] += _dur(child)
            elif child["name"] == "admission_commit":
                row["admission_commit_s"] += _dur(child)
            elif child["name"] == "executor_wait":
                row["executor_wait_s"] += _dur(child)
            elif child["name"] == "workload_execution":
                row["execution_s"] += _dur(child)
            elif child["name"] == "violation_delivery":
                row["violations_delivered"] += 1
                row["max_delivery_lag_s"] = max(
                    row["max_delivery_lag_s"], _dur(child)
                )
        rows.append(row)
    rows.sort(key=lambda row: (row["session"] is None, str(row["session"])))
    return rows


def render_request_report(rows: list[dict]) -> str:
    """Fixed-width per-request table for the CLI."""
    if not rows:
        return "no requests traced"
    header = (
        f"{'session':<8} {'tenant':<22} {'outcome':<12} "
        f"{'admit ms':>9} {'commit us':>10} {'xwait ms':>9} "
        f"{'exec ms':>9} {'viol':>5} {'maxlag ms':>10}  trace_id"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{str(row['session'] or '-'):<8} {str(row['tenant'])[:22]:<22} "
            f"{str(row['outcome'])[:12]:<12} "
            f"{row['admission_wait_s'] * 1e3:>9.2f} "
            f"{row['admission_commit_s'] * 1e6:>10.1f} "
            f"{row['executor_wait_s'] * 1e3:>9.2f} "
            f"{row['execution_s'] * 1e3:>9.2f} "
            f"{row['violations_delivered']:>5d} "
            f"{row['max_delivery_lag_s'] * 1e3:>10.2f}  {row['trace_id']}"
        )
    return "\n".join(lines)
