"""Ablation abl-faults: the standing cost of an armed fault injector.

The robustness layer's acceptance bar: an attached injector with an empty
plan must be free.  Its only hot-path presence is the allocation-count
shim — one integer increment and an empty-list check per allocation —
plus one inert GC observer, so the GC-time ratio must sit at ~1.00 and
every deterministic work counter must be bit-identical to a run with no
injector at all.  Recovery counters must stay at zero: an armed injector
that triggers any hardening machinery before its first fault is a bug.
"""

from __future__ import annotations

from benchmarks.conftest import trials
from repro.bench.methodology import confidence_interval_90, mean
from repro.faults import FaultInjector, FaultPlan
from repro.runtime.vm import VirtualMachine
from repro.workloads.suite import HEAP_BUDGETS
from repro.workloads.synthetic import PROFILES, run_synthetic

PROFILE = "bloat"  # the GC-heaviest suite member, as in abl-tracing

#: Wall-clock bound for the allocation shim, with headroom over the ~1.02
#: acceptance target for interpreter jitter on loaded CI machines.  The
#: counter-identity assertion is the hard gate.
MAX_GC_TIME_RATIO = 1.5


def _run(armed: bool):
    vm = VirtualMachine(
        heap_bytes=HEAP_BUDGETS[PROFILE], assertions=False, telemetry=False
    )
    injector = FaultInjector(vm, FaultPlan()).attach() if armed else None
    run_synthetic(vm, PROFILES[PROFILE])
    vm.collector.sweep_all()
    recovery = vm.collector.recovery.total()
    if injector is not None:
        assert injector.applied == []  # empty plan: nothing ever fires
        injector.detach()
    return vm.stats.gc_seconds, vm.stats.snapshot(), recovery


def test_fault_injector_overhead(once, figure_report):
    def run():
        armed = [_run(True) for _ in range(trials())]
        plain = [_run(False) for _ in range(trials())]
        return armed, plain

    armed, plain = once(run)
    on_times = [t for t, _s, _r in armed]
    off_times = [t for t, _s, _r in plain]
    ratio = mean(on_times) / mean(off_times)
    figure_report.append(
        "Ablation abl-faults (armed empty-plan injector on/off, GC time on 'bloat'):\n"
        f"  off:   {mean(off_times) * 1e3:.1f} ms ±{confidence_interval_90(off_times) * 1e3:.1f}\n"
        f"  armed: {mean(on_times) * 1e3:.1f} ms ±{confidence_interval_90(on_times) * 1e3:.1f}\n"
        f"  ratio: {ratio:.3f} (target <=1.02, asserted <=1.5 for CI noise)"
    )
    assert ratio < MAX_GC_TIME_RATIO

    # The injector observes allocations without changing them: every
    # deterministic work counter is identical whether it is attached or not.
    assert armed[0][1]["counters"] == plain[0][1]["counters"]

    # And no hardening machinery ever engaged — recovery counters all zero.
    assert armed[0][2] == 0
    assert plain[0][2] == 0


def test_detach_restores_the_original_allocate(once):
    """After ``detach`` the collector's allocate is the pristine bound method."""

    def run():
        vm = VirtualMachine(
            heap_bytes=HEAP_BUDGETS[PROFILE], assertions=False, telemetry=False
        )
        pristine = vm.collector.allocate
        injector = FaultInjector(vm, FaultPlan()).attach()
        shadowed = vm.collector.allocate is not pristine
        injector.detach()
        return vm, pristine, shadowed

    vm, pristine, shadowed = once(run)
    assert shadowed
    assert vm.collector.allocate == pristine
    assert "allocate" not in vars(vm.collector)  # instance shadow removed
