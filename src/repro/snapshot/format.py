"""The versioned heap-snapshot file format: JSONL body + sidecar index.

A snapshot is a single JSON-lines file, loadable without the VM:

* line 1 — the **header**: ``{"kind": "header", "schema":
  "repro-heap-snapshot/1", "collector": ..., "gc_number": ...,
  "trigger": ..., "heap_bytes": ...}``.  Loaders must reject files whose
  ``schema`` they do not understand — the version is the contract.
* one line per **root**: ``{"kind": "root", "desc": "static 'head'",
  "addr": ...}`` — the root set the capture traced from.
* one line per **live object**: ``{"kind": "obj", "addr": ..., "type":
  ..., "size": <shallow bytes>, "status": <sticky header bits>, "seq":
  <alloc_seq epoch>, "site": <allocation-site tag or null>, "edges":
  [<non-null strong reference targets>]}``.
* last line — the **summary**: object/root counts, total live bytes, and
  the per-type ``{name: [count, bytes]}`` aggregation, so cheap queries
  need not touch the body.

Next to the body, :class:`SnapshotWriter` drops a sidecar index
(``<path>.idx.json``) mapping each object address to its byte offset in
the body.  :func:`read_object` uses it to answer point queries (``snapshot
why <addr>``) with one ``seek`` instead of a full parse; the JSONL body
alone is always sufficient (:func:`load_snapshot` never needs the index).

Addresses are serialized as integers; the writer streams — one line per
:meth:`SnapshotWriter.write_object` call, O(1) writer state per object
beyond the index entry.
"""

from __future__ import annotations

import json
import os
from typing import Iterable, Iterator, Optional

from repro.errors import ReproError

#: Format version; bump on any incompatible change to the line schema.
SNAPSHOT_SCHEMA = "repro-heap-snapshot/1"


class SnapshotFormatError(ReproError):
    """A snapshot file is malformed or has an unsupported schema version."""


def index_path(path: str) -> str:
    """Sidecar index path for a snapshot body at ``path``."""
    return path + ".idx.json"


class ObjectRecord:
    """One live object as recorded in a snapshot (VM-independent)."""

    __slots__ = ("addr", "type_name", "size", "status", "alloc_seq", "site", "edges")

    def __init__(
        self,
        addr: int,
        type_name: str,
        size: int,
        status: int = 0,
        alloc_seq: int = 0,
        site: Optional[str] = None,
        edges: tuple[int, ...] = (),
    ):
        self.addr = addr
        self.type_name = type_name
        self.size = size
        self.status = status
        self.alloc_seq = alloc_seq
        self.site = site
        self.edges = edges

    @property
    def identity(self) -> tuple[int, int]:
        """Cross-snapshot identity: an address may be recycled between
        snapshots, but ``alloc_seq`` is a unique install stamp."""
        return (self.addr, self.alloc_seq)

    @classmethod
    def from_row(cls, row: dict) -> "ObjectRecord":
        return cls(
            addr=row["addr"],
            type_name=row["type"],
            size=row["size"],
            status=row.get("status", 0),
            alloc_seq=row.get("seq", 0),
            site=row.get("site"),
            edges=tuple(row.get("edges", ())),
        )

    def __repr__(self) -> str:
        return f"<rec {self.type_name}@{self.addr:#x} {self.size}B {len(self.edges)} edges>"


class SnapshotWriter:
    """Streams one snapshot to disk: header, roots, objects, summary, index."""

    def __init__(
        self,
        path: str,
        collector: str = "unknown",
        gc_number: int = 0,
        trigger: str = "manual",
        heap_bytes: int = 0,
    ):
        self.path = path
        # Crash consistency: the body streams into a temp file and is
        # atomically renamed in finish(), so a mid-serialization failure can
        # never leave a truncated .jsonl/.idx.json pair at the final paths.
        self._tmp_path = path + ".tmp"
        self._file = open(self._tmp_path, "w")
        self._offsets: dict[int, int] = {}
        self._types: dict[str, list[int]] = {}
        self.objects = 0
        self.roots = 0
        self.total_bytes = 0
        self._write(
            {
                "kind": "header",
                "schema": SNAPSHOT_SCHEMA,
                "collector": collector,
                "gc_number": gc_number,
                "trigger": trigger,
                "heap_bytes": heap_bytes,
            }
        )

    def _write(self, row: dict) -> None:
        self._file.write(json.dumps(row))
        self._file.write("\n")

    def write_root(self, desc: str, addr: int) -> None:
        self.roots += 1
        self._write({"kind": "root", "desc": desc, "addr": addr})

    def write_object(
        self,
        addr: int,
        type_name: str,
        size: int,
        status: int,
        alloc_seq: int,
        site: Optional[str],
        edges: Iterable[int],
    ) -> None:
        self._offsets[addr] = self._file.tell()
        self.objects += 1
        self.total_bytes += size
        row = self._types.get(type_name)
        if row is None:
            self._types[type_name] = [1, size]
        else:
            row[0] += 1
            row[1] += size
        self._write(
            {
                "kind": "obj",
                "addr": addr,
                "type": type_name,
                "size": size,
                "status": status,
                "seq": alloc_seq,
                "site": site,
                "edges": list(edges),
            }
        )

    def finish(self) -> dict:
        """Write the summary line and the sidecar index; returns the summary.

        Both files are written to temp paths first, then published with
        ``os.replace`` — body *before* index, so a crash between the two
        renames leaves at worst a stale index next to a fresh body, which
        :func:`read_object`'s offset sanity check already tolerates.  The
        recorded byte offsets stay valid: a rename never moves file content.
        """
        summary = {
            "kind": "summary",
            "objects": self.objects,
            "roots": self.roots,
            "total_bytes": self.total_bytes,
            "types": {name: list(row) for name, row in sorted(self._types.items())},
        }
        self._write(summary)
        self._file.close()
        index = {
            "schema": SNAPSHOT_SCHEMA,
            "body": self.path,
            "objects": self.objects,
            "roots": self.roots,
            "total_bytes": self.total_bytes,
            "types": summary["types"],
            "offsets": {str(addr): off for addr, off in self._offsets.items()},
        }
        index_tmp = index_path(self.path) + ".tmp"
        with open(index_tmp, "w") as handle:
            json.dump(index, handle)
            handle.write("\n")
        os.replace(self._tmp_path, self.path)
        os.replace(index_tmp, index_path(self.path))
        return summary

    def abort(self) -> None:
        """Discard a partially written snapshot: close and unlink the temps.

        The final ``path``/``.idx.json`` names are untouched — a previous
        good snapshot at the same path survives a failed rewrite.
        """
        try:
            self._file.close()
        except Exception:
            pass
        for tmp in (self._tmp_path, index_path(self.path) + ".tmp"):
            try:
                os.unlink(tmp)
            except OSError:
                pass


def _parse_lines(path: str) -> Iterator[dict]:
    with open(path) as handle:
        for lineno, line in enumerate(handle, start=1):
            if not line.strip():
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError as exc:
                raise SnapshotFormatError(f"{path}:{lineno}: not JSON ({exc})") from None


class HeapSnapshot:
    """A fully loaded snapshot: header metadata, root set, object table."""

    __slots__ = ("path", "meta", "roots", "objects", "summary")

    def __init__(
        self,
        meta: dict,
        roots: list[tuple[str, int]],
        objects: dict[int, ObjectRecord],
        summary: Optional[dict] = None,
        path: str = "",
    ):
        self.path = path
        self.meta = meta
        self.roots = roots
        self.objects = objects
        self.summary = summary or {}

    @classmethod
    def load(cls, path: str) -> "HeapSnapshot":
        meta: Optional[dict] = None
        roots: list[tuple[str, int]] = []
        objects: dict[int, ObjectRecord] = {}
        summary: Optional[dict] = None
        for row in _parse_lines(path):
            kind = row.get("kind")
            if kind == "header":
                schema = row.get("schema")
                if schema != SNAPSHOT_SCHEMA:
                    raise SnapshotFormatError(
                        f"{path}: unsupported snapshot schema {schema!r} "
                        f"(this reader understands {SNAPSHOT_SCHEMA!r})"
                    )
                meta = row
            elif kind == "root":
                roots.append((row["desc"], row["addr"]))
            elif kind == "obj":
                rec = ObjectRecord.from_row(row)
                objects[rec.addr] = rec
            elif kind == "summary":
                summary = row
            else:
                raise SnapshotFormatError(f"{path}: unknown line kind {kind!r}")
        if meta is None:
            raise SnapshotFormatError(f"{path}: missing snapshot header line")
        return cls(meta, roots, objects, summary, path=path)

    # -- queries ------------------------------------------------------------------

    @property
    def gc_number(self) -> int:
        return self.meta.get("gc_number", 0)

    @property
    def total_bytes(self) -> int:
        return sum(rec.size for rec in self.objects.values())

    def root_addresses(self) -> list[int]:
        """Distinct root target addresses, first-seen order."""
        seen: set[int] = set()
        out: list[int] = []
        for _desc, addr in self.roots:
            if addr not in seen and addr in self.objects:
                seen.add(addr)
                out.append(addr)
        return out

    def type_summary(self) -> dict[str, tuple[int, int]]:
        """Per-type ``(count, bytes)`` over the recorded objects."""
        out: dict[str, tuple[int, int]] = {}
        for rec in self.objects.values():
            count, nbytes = out.get(rec.type_name, (0, 0))
            out[rec.type_name] = (count + 1, nbytes + rec.size)
        return out

    def edge_multiset(self) -> dict[tuple[int, int], int]:
        """``(src, dst) -> multiplicity`` over all recorded strong edges."""
        out: dict[tuple[int, int], int] = {}
        for rec in self.objects.values():
            for dst in rec.edges:
                key = (rec.addr, dst)
                out[key] = out.get(key, 0) + 1
        return out

    def identities(self) -> set[tuple[int, int]]:
        """The ``(addr, alloc_seq)`` identity set (for snapshot diffing)."""
        return {rec.identity for rec in self.objects.values()}

    def __len__(self) -> int:
        return len(self.objects)

    def __repr__(self) -> str:
        return (
            f"<HeapSnapshot gc={self.gc_number} {len(self.objects)} objects "
            f"{len(self.roots)} roots>"
        )


def load_snapshot(path: str) -> HeapSnapshot:
    """Load a snapshot body (the index is not required)."""
    return HeapSnapshot.load(path)


def read_index(path: str) -> dict:
    """Load and validate the sidecar index for a snapshot body."""
    with open(index_path(path)) as handle:
        index = json.load(handle)
    if index.get("schema") != SNAPSHOT_SCHEMA:
        raise SnapshotFormatError(
            f"{index_path(path)}: unsupported index schema {index.get('schema')!r}"
        )
    return index


def read_object(path: str, addr: int, index: Optional[dict] = None) -> ObjectRecord:
    """Point lookup of one object row via the sidecar index (one seek)."""
    if index is None:
        index = read_index(path)
    offset = index["offsets"].get(str(addr))
    if offset is None:
        raise SnapshotFormatError(f"{path}: no object at {addr:#x} in index")
    with open(path) as handle:
        handle.seek(offset)
        row = json.loads(handle.readline())
    if row.get("kind") != "obj" or row.get("addr") != addr:
        raise SnapshotFormatError(f"{path}: index offset for {addr:#x} is stale")
    return ObjectRecord.from_row(row)
