"""Synthetic allocation-profile stand-ins for the benchmark suite.

Figures 2 and 3 of the paper measure the assertion *infrastructure* overhead
across DaCapo 2006, SPEC JVM98, and pseudojbb.  Those are large Java
codebases; what the measurement actually depends on is each benchmark's
allocation/lifetime/connectivity profile — how many objects the collector
traces, how often it runs, how pointer-dense the heap is.  Each suite member
is therefore modeled as a :class:`SyntheticProfile` driving one generic
graph-mutator kernel:

* per iteration, allocate a batch of linked *clusters* (short-lived nursery
  objects with scalar payload arrays);
* promote every k-th cluster into a retained FIFO structure rooted in a
  static (long-lived heap, bounded so the workload reaches a steady state);
* connect promoted clusters to random earlier survivors (pointer density).

Profiles are tuned per benchmark to qualitatively echo published DaCapo /
JVM98 characterizations: ``bloat`` is the GC-heaviest (the paper's worst
case, +30% GC time), ``compress`` allocates few large arrays, ``xalan`` and
``jython`` churn hard, ``hsqldb`` retains a large live set, etc.  The
figures' *claims* (infrastructure overhead small, concentrated in GC time)
are about these profile axes, not about benchmark source code — DESIGN.md
§4 records this substitution.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.heap.object_model import FieldKind
from repro.runtime.vm import VirtualMachine
from repro.workloads.containers import Vector

NODE = "synthetic.Node"


def define_synthetic_classes(vm: VirtualMachine) -> None:
    if vm.classes.maybe(NODE) is not None:
        return
    vm.define_class(
        NODE,
        [
            ("next", FieldKind.REF),
            ("cross", FieldKind.REF),
            ("payload", FieldKind.REF),
            ("id", FieldKind.INT),
        ],
    )


@dataclass(frozen=True)
class SyntheticProfile:
    """Knobs for the generic graph-mutator kernel."""

    name: str
    iterations: int = 40
    clusters_per_iteration: int = 60
    cluster_size: int = 4          # objects per linked chain
    payload_ints: int = 4          # scalar array attached to chain heads
    promote_every: int = 8         # every k-th cluster survives
    retained_cap: int = 120        # FIFO bound on survivors
    cross_link_chance: float = 0.2 # pointer density between survivors
    seed: int = 11

    #: Heap budget giving roughly 2x the steady-state live size, which is
    #: the paper's heap-sizing rule ("two times the minimum possible").
    heap_bytes: int = 1 << 21


@dataclass
class SyntheticResult:
    objects_allocated: int = 0
    clusters_promoted: int = 0
    iterations: int = 0


def run_synthetic(vm: VirtualMachine, profile: SyntheticProfile) -> SyntheticResult:
    """Run the kernel under ``profile``; deterministic given the seed."""
    define_synthetic_classes(vm)
    rng = random.Random(profile.seed)
    result = SyntheticResult()
    node_cls = vm.classes.get(NODE)

    retained = Vector.new(vm, capacity=profile.retained_cap + 1)
    vm.statics.set_ref(f"synthetic.{profile.name}.retained", retained.handle.address)

    counter = 0
    for _iteration in range(profile.iterations):
        frame = vm.current_thread.push_frame(f"synthetic.{profile.name}")
        try:
            for cluster_index in range(profile.clusters_per_iteration):
                # Build one linked cluster; the frame local roots it while
                # it is under construction.
                head = vm.new(node_cls, id=counter)
                counter += 1
                frame.set_ref("head", head.address)
                head["payload"] = vm.new_array(FieldKind.INT, profile.payload_ints)
                tail = head
                for _ in range(profile.cluster_size - 1):
                    node = vm.new(node_cls, id=counter)
                    counter += 1
                    tail["next"] = node
                    tail = node
                result.objects_allocated += profile.cluster_size + 1

                if cluster_index % profile.promote_every == 0:
                    if len(retained) >= profile.retained_cap:
                        retained.remove_at(0)
                    retained.append(head)
                    result.clusters_promoted += 1
                    if len(retained) > 1 and rng.random() < profile.cross_link_chance:
                        other = retained.get(rng.randrange(len(retained) - 1))
                        head["cross"] = other
                frame.clear_ref("head")
        finally:
            vm.current_thread.pop_frame()
        result.iterations += 1
    return result


def _profile(name: str, **overrides) -> SyntheticProfile:
    return SyntheticProfile(name=name, **overrides)


#: The suite members of Figures 2/3 modeled as synthetic profiles.
#: (db, lusearch, and pseudojbb run their real analog workloads instead.)
PROFILES: dict[str, SyntheticProfile] = {
    # DaCapo 2006
    "antlr": _profile("antlr", clusters_per_iteration=90, cluster_size=3,
                      promote_every=12, retained_cap=80, payload_ints=2, seed=1),
    "bloat": _profile("bloat", iterations=50, clusters_per_iteration=80,
                      cluster_size=6, promote_every=3, retained_cap=400,
                      cross_link_chance=0.5, payload_ints=3,
                      heap_bytes=1 << 22, seed=2),
    "fop": _profile("fop", clusters_per_iteration=50, cluster_size=5,
                    promote_every=6, retained_cap=150, payload_ints=6, seed=3),
    "hsqldb": _profile("hsqldb", iterations=90, clusters_per_iteration=40,
                       cluster_size=5, promote_every=2, retained_cap=600,
                       payload_ints=8, heap_bytes=1 << 22, seed=4),
    "jython": _profile("jython", iterations=60, clusters_per_iteration=90,
                       cluster_size=2, promote_every=15, retained_cap=60,
                       payload_ints=2, seed=5),
    "luindex": _profile("luindex", clusters_per_iteration=55, cluster_size=4,
                        promote_every=5, retained_cap=200, payload_ints=10, seed=6),
    "pmd": _profile("pmd", clusters_per_iteration=65, cluster_size=7,
                    promote_every=7, retained_cap=180, cross_link_chance=0.35, seed=7),
    "xalan": _profile("xalan", iterations=70, clusters_per_iteration=90,
                      cluster_size=3, promote_every=20, retained_cap=50,
                      payload_ints=3, seed=8),
    # SPEC JVM98
    "compress": _profile("compress", iterations=20, clusters_per_iteration=8,
                         cluster_size=2, promote_every=2, retained_cap=24,
                         payload_ints=512, heap_bytes=1 << 21, seed=9),
    "jess": _profile("jess", clusters_per_iteration=70, cluster_size=3,
                     promote_every=9, retained_cap=120, seed=10),
    "javac": _profile("javac", clusters_per_iteration=60, cluster_size=6,
                      promote_every=4, retained_cap=260,
                      cross_link_chance=0.4, seed=12),
    "mpegaudio": _profile("mpegaudio", iterations=15, clusters_per_iteration=12,
                          cluster_size=2, promote_every=4, retained_cap=20,
                          payload_ints=64, seed=13),
    "mtrt": _profile("mtrt", iterations=50, clusters_per_iteration=85,
                     cluster_size=2, promote_every=18, retained_cap=40,
                     payload_ints=4, seed=14),
    "jack": _profile("jack", clusters_per_iteration=60, cluster_size=4,
                     promote_every=8, retained_cap=110, seed=15),
}
