"""lusearch (§3.2.2) and SwapLeak (§3.2.3) case-study workloads."""

import pytest

from repro.core.reporting import AssertionKind
from repro.runtime.vm import VirtualMachine
from repro.workloads.lusearch import (
    SEARCHER,
    LusearchConfig,
    build_index,
    new_searcher,
    run_lusearch,
    search,
)
from repro.workloads.swapleak import (
    REP_INNER,
    SwapLeakConfig,
    run_swapleak,
)

FAST = dict(threads=8, queries_per_thread=5, ndocs=40, terms_per_doc=6)


def lvm():
    return VirtualMachine(heap_bytes=16 << 20)


class TestSearchEngine:
    def test_index_and_search(self):
        vm = lvm()
        with vm.scope():
            index = build_index(vm, ndocs=30, terms_per_doc=8)
            vm.statics.set_ref("idx", index.address)
            searcher = new_searcher(vm, index)
            vm.statics.set_ref("s", searcher.address)
        # The most common term must have hits.
        hits = search(vm, searcher, "term0000")
        assert hits["count"] > 0
        docs = hits["docs"]
        assert docs[0]["score"] >= docs[hits["count"] - 1]["score"]

    def test_missing_term_returns_empty(self):
        vm = lvm()
        with vm.scope():
            index = build_index(vm, ndocs=10, terms_per_doc=4)
            vm.statics.set_ref("idx", index.address)
            searcher = new_searcher(vm, index)
            vm.statics.set_ref("s", searcher.address)
        hits = search(vm, searcher, "zzz-not-indexed")
        assert hits["count"] == 0

    def test_search_limit_respected(self):
        vm = lvm()
        with vm.scope():
            index = build_index(vm, ndocs=100, terms_per_doc=10)
            vm.statics.set_ref("idx", index.address)
            searcher = new_searcher(vm, index)
            vm.statics.set_ref("s", searcher.address)
        hits = search(vm, searcher, "term0000", limit=3)
        assert hits["count"] <= 3


class TestLusearchCaseStudy:
    def test_buggy_version_reports_per_thread_searchers(self):
        vm = lvm()
        config = LusearchConfig(**FAST, assert_single_searcher=True)
        result = run_lusearch(vm, config)
        assert result.searchers_created == config.threads
        assert result.peak_live_searchers == config.threads
        violations = vm.engine.log.of_kind(AssertionKind.INSTANCES)
        assert violations
        assert violations[0].details["type"] == SEARCHER
        assert violations[0].details["count"] == config.threads

    def test_thirty_two_threads_like_paper(self):
        vm = lvm()
        config = LusearchConfig(
            threads=32, queries_per_thread=3, ndocs=40, terms_per_doc=6,
            assert_single_searcher=True,
        )
        result = run_lusearch(vm, config)
        violations = vm.engine.log.of_kind(AssertionKind.INSTANCES)
        assert violations[0].details["count"] == 32

    def test_repaired_version_is_quiet(self):
        vm = lvm()
        config = LusearchConfig(
            **FAST, assert_single_searcher=True, share_searcher=True
        )
        result = run_lusearch(vm, config)
        assert result.searchers_created == 1
        assert result.violations == 0

    def test_queries_complete_in_both_versions(self):
        for share in (False, True):
            vm = lvm()
            result = run_lusearch(vm, LusearchConfig(**FAST, share_searcher=share))
            assert result.queries == FAST["threads"] * FAST["queries_per_thread"]
            assert result.hits > 0

    def test_threads_interleave(self):
        vm = lvm()
        run_lusearch(vm, LusearchConfig(**FAST))
        names = [t.name for t in vm.threads]
        assert sum(1 for n in names if n.startswith("lusearch")) == FAST["threads"]


class TestSwapLeak:
    def test_leak_detected_per_swap(self):
        vm = lvm()
        result = run_swapleak(vm, SwapLeakConfig(array_size=8, swaps=12))
        assert result.asserted == 12
        assert result.violations == 12

    def test_paper_path_shape(self):
        vm = lvm()
        run_swapleak(vm, SwapLeakConfig(array_size=4, swaps=1))
        violation = vm.engine.log.violations[0]
        assert violation.path.type_names() == [
            "SArray",
            "SObject[]",
            "SObject",
            "SObject$Rep",
            "SObject",
        ]

    def test_hidden_reference_is_the_cause(self):
        vm = lvm()
        run_swapleak(vm, SwapLeakConfig(array_size=4, swaps=1))
        names = vm.engine.log.violations[0].path.type_names()
        assert REP_INNER in names  # the inner class carries the hidden edge

    def test_static_inner_class_repair(self):
        vm = lvm()
        result = run_swapleak(
            vm, SwapLeakConfig(array_size=8, swaps=12, static_rep=True)
        )
        assert result.violations == 0

    def test_swap_exchanges_reps(self):
        vm = lvm()
        result = run_swapleak(
            vm, SwapLeakConfig(array_size=2, swaps=2, assert_dead_swapped=False,
                               gc_at_end=False)
        )
        assert result.swaps == 2
