"""Structured per-collection GC events and the bounded ring that holds them.

A :class:`GcEvent` is the telemetry layer's unit of record: one immutable
row per collection, decomposed the way the paper's evaluation decomposes
time (§3.1 — mutator vs GC vs ownership phase) and work (objects traced,
ownees checked).  Events live in a fixed-capacity :class:`EventRing` on the
VM so a long-running process keeps a recent window without unbounded
growth; sinks (see :mod:`repro.telemetry.sinks`) stream every event out as
it is produced.
"""

from __future__ import annotations

from collections import deque
from dataclasses import asdict, dataclass, fields
from typing import Iterator, Optional

#: GC-event row schema, stamped into every JSONL row.  Version 2 added the
#: wall-clock/monotonic timestamp pair; version-1 rows (no ``schema`` key,
#: no timestamps) still load through :meth:`GcEvent.from_row`.
EVENT_SCHEMA = "repro-gc-event/2"


@dataclass(frozen=True)
class GcEvent:
    """One collection, fully decomposed."""

    seq: int                 #: collection ordinal (1-based, VM lifetime)
    collector: str           #: "marksweep" | "semispace" | "generational"
    kind: str                #: "full" | "minor"
    trigger: str             #: the reason string passed to collect()
    pause_s: float           #: wall-clock stop-the-world pause
    ownership_s: float       #: §2.5.2 ownership pre-phase time
    mark_s: float            #: mark/trace phase time
    sweep_s: float           #: sweep/evacuate/promote time
    objects_traced: int
    edges_traced: int
    objects_swept: int
    objects_freed: int
    bytes_freed: int
    objects_promoted: int
    bytes_before: int        #: heap occupancy entering the collection
    bytes_after: int         #: heap occupancy after reclamation
    live_before: int         #: live object count entering the collection
    live_after: int
    heap_bytes: int          #: configured heap budget (for occupancy %)
    assertion_checks: int    #: header-bit + ownee checks this cycle
    ownees_checked: int
    violations: int          #: assertion violations detected this cycle
    #: Unswept chunks left behind at pause end (lazy sweep modes; 0 means
    #: reclamation was exact when the event was emitted).  Defaulted so
    #: pre-existing constructors stay valid.
    sweep_debt_chunks: int = 0
    #: Addresses fenced in the collector's quarantine at pause end — the
    #: hardened recovery's poison set.  Growth says corruption is being
    #: caught and contained; hitting the bound raises QuarantineOverflowError.
    #: Defaulted so pre-existing constructors stay valid.
    quarantine_depth: int = 0
    #: Wall-clock epoch seconds (``time.time()``) at pause end.  The
    #: monotonic clock below is the one to do arithmetic on; this one is
    #: the one that correlates across processes and with external logs.
    #: Defaulted so version-1 constructors (and rows) stay valid.
    wall_time: float = 0.0
    #: ``time.perf_counter()`` at pause end, on the same clock as every
    #: other timer in the system.  ``(mono_time - pause_s, mono_time)`` is
    #: the stop-the-world interval MMU/utilization math consumes.
    mono_time: float = 0.0

    @property
    def occupancy_before(self) -> float:
        return self.bytes_before / self.heap_bytes if self.heap_bytes else 0.0

    @property
    def occupancy_after(self) -> float:
        return self.bytes_after / self.heap_bytes if self.heap_bytes else 0.0

    @property
    def pause_interval(self) -> tuple[float, float]:
        """The stop-the-world interval on the monotonic clock."""
        return (self.mono_time - self.pause_s, self.mono_time)

    def as_dict(self) -> dict:
        row = asdict(self)
        row["schema"] = EVENT_SCHEMA
        row["occupancy_before"] = self.occupancy_before
        row["occupancy_after"] = self.occupancy_after
        return row

    @classmethod
    def from_row(cls, row: dict) -> "GcEvent":
        """Rebuild an event from a JSONL sink row, any schema version.

        Version-1 rows carry no ``schema`` key and no timestamps; their
        defaults fill in as 0.0.  Derived keys (``occupancy_*``) and any
        future unknown keys are ignored, so newer rows also load.
        """
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in row.items() if k in known})

    def render(self) -> str:
        return (
            f"GC#{self.seq} {self.collector}/{self.kind} "
            f"pause={self.pause_s * 1e3:.2f}ms "
            f"freed={self.objects_freed}obj/{self.bytes_freed}B "
            f"occupancy={self.occupancy_before:.0%}->{self.occupancy_after:.0%} "
            f"violations={self.violations} ({self.trigger})"
        )


@dataclass(frozen=True)
class SnapshotEvent:
    """One heap snapshot written (``snapshot_written`` in the event stream).

    Emitted by the snapshot subsystem after serialization completes —
    always outside the GC pause, so ``duration_s`` is capture+write cost,
    not added pause time (the in-pause recording cost shows up in the
    ``abl-snapshot`` bench instead).
    """

    event: str               #: always "snapshot_written" (sink discriminator)
    seq: int                 #: collection ordinal the snapshot belongs to
    collector: str
    trigger: str             #: "manual" | "interval" | "violation"
    path: str                #: snapshot body path (index is path + ".idx.json")
    objects: int             #: live objects recorded
    roots: int               #: root entries recorded
    total_bytes: int         #: live bytes recorded (heap view)
    file_bytes: int          #: serialized body size on disk
    duration_s: float        #: capture + serialization wall-clock time

    def as_dict(self) -> dict:
        return asdict(self)

    def render(self) -> str:
        return (
            f"snapshot gc#{self.seq} {self.trigger} -> {self.path} "
            f"({self.objects} objects, {self.total_bytes}B live, "
            f"{self.file_bytes}B on disk, {self.duration_s * 1e3:.2f}ms)"
        )


@dataclass(frozen=True)
class DegradedEvent:
    """One recovery-path activation (``degraded`` in the event stream).

    Emitted when a hardened layer absorbs a fault instead of crashing:
    heap corruption quarantined (``heap``), assertion engine disabled for
    one pause (``engine``), a sink circuit breaker tripping (``sink``),
    snapshot serialization failing (``snapshot``), or the heap growing
    under OOM pressure (``heap_grown``).
    """

    event: str               #: always "degraded" (sink discriminator)
    kind: str                #: "heap" | "engine" | "sink" | "snapshot" | "heap_grown"
    seq: int                 #: collection ordinal when the fault was absorbed
    detail: str              #: human-readable cause summary
    #: Wall-clock epoch seconds at absorption time (0.0 on version-1 rows).
    wall_time: float = 0.0

    def as_dict(self) -> dict:
        return asdict(self)

    def render(self) -> str:
        return f"degraded[{self.kind}] gc#{self.seq}: {self.detail}"


class EventRing:
    """Bounded FIFO of the most recent :class:`GcEvent` records.

    Appending beyond ``capacity`` silently drops the oldest event but counts
    the drop, so exporters can report how much history was shed.
    """

    __slots__ = ("capacity", "_events", "dropped", "appended")

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ValueError(f"ring capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._events: deque[GcEvent] = deque(maxlen=capacity)
        self.dropped = 0
        self.appended = 0

    def append(self, event: GcEvent) -> None:
        if len(self._events) == self.capacity:
            self.dropped += 1
        self._events.append(event)
        self.appended += 1

    @property
    def latest(self) -> Optional[GcEvent]:
        return self._events[-1] if self._events else None

    def snapshot(self) -> list[GcEvent]:
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[GcEvent]:
        return iter(self._events)

    def __repr__(self) -> str:
        return (
            f"<EventRing {len(self._events)}/{self.capacity} "
            f"(+{self.dropped} dropped)>"
        )
