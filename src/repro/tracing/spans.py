"""The span recorder: nested in-pause phase spans with negligible cost.

The telemetry subsystem (PR 1) sees whole collections; this layer sees
*inside* them.  A :class:`SpanTracer` records a strictly nested stream of
begin/end events — ``collect`` → ``prologue`` / ``pause`` →
``ownership_phase`` / ``mark`` (→ ``root_scan`` / ``mark_drain``) /
``sweep`` / ``lazy_sweep_slice`` — plus instant events for the assertion
lifecycle (``assertion_register`` → ``assertion_armed`` →
``assertion_checked`` / ``assertion_violated``) and snapshot captures, and
counter events for sweep debt.

Design bars, inherited from the telemetry and snapshot subsystems:

* **Zero overhead when off.**  A VM built without ``tracing=True`` leaves
  ``collector.span_tracer`` as ``None``; every emit site is one attribute
  load plus an ``is None`` test, and *no span object of any kind is
  allocated* (the ``abl-tracing`` benchmark and a dedicated test pin this).
* **Near-zero overhead when on.**  Spans are phase-granular — a handful per
  collection, never per object or per edge — so the hot drain loops from
  PR 2 are untouched.  Recording one span is two tuple appends.
* **Spans and counters can never disagree.**  The
  :class:`~repro.gc.stats.PhaseTimer` unification threads the *same*
  ``perf_counter`` readings into both the ``GcStats`` timer accumulators
  and the matching spans, so ``sum(span durations) == timer`` exactly —
  bit-for-bit, not approximately (a tier-1 test asserts ``==``).

The event stream is a flat list of tuples (cheapest possible record):

* ``("B", name, cat, ts, args)`` — span begin (``args`` may be ``None``)
* ``("E", name, ts)``            — span end (name repeated for exporters)
* ``("X", name, cat, ts, dur, args, track)`` — complete span on a synthetic
  track (parallel mark workers; see below)
* ``("i", name, cat, ts, args)`` — instant event
* ``("C", name, ts, values)``    — counter track sample (``{series: num}``)

``ts`` is a raw ``time.perf_counter()`` reading; exporters rebase to the
tracer's ``t0``.  Because the simulator is single-threaded, begin/end pairs
nest properly by construction — the exporter and the analysis replay both
verify it anyway.

Parallel mark workers are the one concurrent producer in the system, and
they do **not** emit into this stream live: the begin/end stack is
single-threaded state.  Instead the mark coordinator records each worker's
busy window after the pool joins, as a *complete* span (:meth:`complete`)
carrying its own duration and a synthetic ``track`` id, so worker lanes
render side by side under the ``mark`` span without ever touching the
begin/end stack.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.heap import header as _hdr

__all__ = ["SpanTracer", "MARK_ATTRIBUTION_UNTAGGED", "WORKER_TRACK_BASE"]

#: Allocation-site key used for objects carrying no ``alloc_site`` tag.
MARK_ATTRIBUTION_UNTAGGED = "<untagged>"

#: Synthetic track-id base for parallel-mark worker lanes: worker *i*
#: records its complete spans with ``track=WORKER_TRACK_BASE + i``, and the
#: Chrome exporter turns each track into its own named ``tid`` lane.
WORKER_TRACK_BASE = 100


class _SpanContext:
    """Context manager returned by :meth:`SpanTracer.span`."""

    __slots__ = ("tracer", "name", "cat", "args")

    def __init__(self, tracer: "SpanTracer", name: str, cat: str, args):
        self.tracer = tracer
        self.name = name
        self.cat = cat
        self.args = args

    def __enter__(self) -> "_SpanContext":
        self.tracer.begin(self.name, cat=self.cat, args=self.args)
        return self

    def __exit__(self, *exc) -> None:
        self.tracer.end()


class SpanTracer:
    """Records the begin/end/instant/counter event stream for one VM."""

    __slots__ = (
        "t0",
        "events",
        "_open",
        "attribute_marks",
        "mark_attribution",
        "spans_begun",
        "spans_ended",
        "mark_bit",
    )

    def __init__(self, attribute_marks: bool = False):
        #: Epoch every exported timestamp is relative to.
        self.t0 = time.perf_counter()
        #: The flat event stream (see module docstring for tuple shapes).
        self.events: list[tuple] = []
        #: Names of currently open spans (the begin/end stack).
        self._open: list[str] = []
        #: When True, each full collection's mark phase is followed by a
        #: heap walk accumulating per-(type, alloc-site) mark work into
        #: :attr:`mark_attribution` (the flamegraph export's input).  Costs
        #: O(live objects) per GC, so it is opt-in even when tracing is on.
        self.attribute_marks = attribute_marks
        #: ``(type_name, alloc_site) -> [objects_marked, bytes_marked]``,
        #: cumulative over every attributed collection.
        self.mark_attribution: dict[tuple[str, str], list[int]] = {}
        self.spans_begun = 0
        self.spans_ended = 0
        self.mark_bit = _hdr.MARK_BIT

    # -- recording (the emit hot path) ---------------------------------------------

    def begin(
        self,
        name: str,
        cat: str = "gc",
        ts: Optional[float] = None,
        args: Optional[dict] = None,
    ) -> None:
        """Open a span.  ``ts`` lets :class:`PhaseTimer` hand over the very
        reading it will also accumulate into ``GcStats`` — the
        counters-equal-spans guarantee."""
        if ts is None:
            ts = time.perf_counter()
        self.events.append(("B", name, cat, ts, args))
        self._open.append(name)
        self.spans_begun += 1

    def end(self, ts: Optional[float] = None) -> None:
        """Close the innermost open span."""
        if ts is None:
            ts = time.perf_counter()
        name = self._open.pop()
        self.events.append(("E", name, ts))
        self.spans_ended += 1

    def complete(
        self,
        name: str,
        start_ts: float,
        end_ts: float,
        cat: str = "gc",
        args: Optional[dict] = None,
        track: int = 0,
    ) -> None:
        """Record an already-finished span on a synthetic track.

        Used for per-worker parallel-mark lanes: the window is measured on
        the worker and recorded here retroactively (single-threaded), so
        the begin/end stack is never shared across threads.  Counts as one
        begun *and* one ended span — the balance invariant holds.
        """
        self.events.append(("X", name, cat, start_ts, end_ts - start_ts, args, track))
        self.spans_begun += 1
        self.spans_ended += 1

    def span(self, name: str, cat: str = "gc", **args) -> _SpanContext:
        """``with tracer.span("root_scan"):`` — begin/end as a context."""
        return _SpanContext(self, name, cat, args or None)

    def instant(self, name: str, cat: str = "gc", **args) -> None:
        """A zero-duration marker (assertion lifecycle, capture triggers)."""
        self.events.append(("i", name, cat, time.perf_counter(), args or None))

    def counter(self, name: str, **values) -> None:
        """A counter-track sample (renders as a graph lane in Perfetto)."""
        self.events.append(("C", name, time.perf_counter(), values))

    # -- mark-work attribution ------------------------------------------------------

    def record_mark_attribution(self, heap) -> None:
        """Accumulate this collection's mark work by (type, alloc site).

        Called by collectors between mark end and sweep begin, when the
        mark bits still identify exactly the set of objects this cycle's
        trace visited.  Pure observation: reads headers, writes nothing,
        so the deterministic work counters are untouched.
        """
        mark_bit = self.mark_bit
        attribution = self.mark_attribution
        untagged = MARK_ATTRIBUTION_UNTAGGED
        for obj in heap:
            if obj.status & mark_bit:
                key = (obj.cls.name, obj.alloc_site or untagged)
                row = attribution.get(key)
                if row is None:
                    attribution[key] = [1, obj.size_bytes]
                else:
                    row[0] += 1
                    row[1] += obj.size_bytes

    # -- introspection ----------------------------------------------------------------

    @property
    def open_depth(self) -> int:
        return len(self._open)

    def snapshot_events(self) -> list[tuple]:
        """A consistent prefix of the event stream (safe to read while a
        workload thread is still appending: list slicing is atomic under
        the GIL, and analysis replays tolerate an unclosed tail)."""
        return self.events[:]

    def __repr__(self) -> str:
        return (
            f"<SpanTracer {self.spans_begun} spans "
            f"({len(self.events)} events, depth={len(self._open)})>"
        )
