"""Seeded, deterministic fault injection for the hardened GC.

This package is the chaos half of the robustness story: the collectors
(see :mod:`repro.gc.base`) carry the recovery machinery — integrity
sentinel, quarantine, engine degradation, OOM recovery ladder, sink
circuit breakers — and this package supplies the faults that prove the
machinery works.  Everything is driven by a single seed so a failing
chaos run is replayable bit-for-bit.

* :class:`FaultPlan` / :class:`Fault` — a schedule of faults keyed to
  collection ordinals and allocation counts.
* :class:`FaultInjector` — attaches to a live VM and applies the plan:
  header-bit flips, dangling references, free-list corruption, simulated
  allocation failure, and injected exceptions in assertion reactions,
  telemetry sinks, and snapshot serialization.
* :func:`run_chaos` — the soak harness behind ``python -m repro chaos``:
  a (collector × sweep-mode) × workload matrix under a seeded fault
  schedule, asserting the crash-consistency contract afterwards.
"""

from repro.faults.chaos import CellResult, ChaosReport, run_chaos
from repro.faults.injector import (
    FAULT_KINDS,
    ExplodingSink,
    Fault,
    FaultInjector,
    FaultPlan,
    InjectedFault,
)

__all__ = [
    "FAULT_KINDS",
    "CellResult",
    "ChaosReport",
    "ExplodingSink",
    "Fault",
    "FaultInjector",
    "FaultPlan",
    "InjectedFault",
    "run_chaos",
]
