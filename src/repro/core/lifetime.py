"""Lifetime-assertion support: forcing asserted-dead objects to die.

§2.6: "Force the assertion to be true.  In the case of lifetime assertions,
the garbage collector can force objects to be reclaimed by nulling out all
incoming references.  This might allow a program to run longer without
running out of memory but risks introducing a null pointer exception."

:func:`force_reclaim` runs between the mark and sweep phases: it nulls every
reference to the victims held by surviving (marked) objects and by roots,
then clears the victims' mark bits so the sweep reclaims them.  Objects that
were reachable *only* through a victim remain marked and float for one
collection cycle — the same one-GC imprecision the ownership phase has.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional

from repro.heap import header as hdr
from repro.heap.layout import NULL

if TYPE_CHECKING:
    from repro.gc.base import Collector
    from repro.runtime.vm import VirtualMachine


def force_reclaim(
    collector: "Collector",
    vm: Optional["VirtualMachine"],
    victims: Iterable[int],
) -> int:
    """Null all references to ``victims`` and unmark them; returns count."""
    victim_set = {a for a in victims if collector.heap.contains(a)}
    if not victim_set:
        return 0

    # Sever heap references held by survivors (and by other victims).
    for obj in collector.heap:
        slots = obj.slots
        for idx in obj.reference_slot_indices():
            if slots[idx] in victim_set:
                slots[idx] = NULL

    # Sever root references (frames and statics).
    if vm is not None:
        vm.null_roots(victim_set)

    # Unmark so the sweep reclaims them.
    for address in victim_set:
        collector.heap.get(address).clear(hdr.MARK_BIT)
    return len(victim_set)
