"""Assertion bookkeeping: the collector-side metadata the paper costs out.

The paper is explicit about the space budget of each assertion family:

* ``assert-dead`` / ``assert-unshared`` — *no* per-object space: the mark
  lives in a spare header bit.  The registry only keeps the assertion *site*
  (a label for diagnostics) per asserted address, which is the minimum
  needed to tell the programmer *which* assertion fired.
* ``assert-instances`` — two words per loaded class plus one word per
  tracked type (those live on the class descriptors / class registry).
* ``assert-ownedby`` — "a pair of arrays, one containing owner objects and
  the other containing arrays of ownee objects, one for each owner [...]
  The ownee arrays are sorted, so we do a binary search to find the ownee
  object." (§2.5.2)  :class:`OwnerRecord` reproduces that structure,
  including the sorted-array binary search with probe counting.

The registry also keeps the cumulative API-call counters the paper reports
in §3.1.2 ("695 calls to assert-dead and 15,553 calls to assert-ownedBy").
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import Iterable, Optional

from repro.core.reporting import AssertionKind
from repro.errors import AssertionUsageError


class DeadSite:
    """Where (and when) an assert-dead was issued, keyed by object address."""

    __slots__ = ("label", "serial", "asserted_at_gc", "kind")

    def __init__(
        self,
        label: str,
        serial: int,
        asserted_at_gc: int,
        kind: AssertionKind = AssertionKind.DEAD,
    ):
        self.label = label
        self.serial = serial
        self.asserted_at_gc = asserted_at_gc
        self.kind = kind

    def __repr__(self) -> str:
        return f"<dead-site #{self.serial} {self.label!r}>"


class OwnerRecord:
    """One owner object and its sorted array of ownee addresses."""

    __slots__ = ("owner_address", "ownees", "label")

    def __init__(self, owner_address: int, label: str):
        self.owner_address = owner_address
        self.ownees: list[int] = []  # sorted ascending
        self.label = label

    def add(self, ownee_address: int) -> None:
        idx = bisect_left(self.ownees, ownee_address)
        if idx < len(self.ownees) and self.ownees[idx] == ownee_address:
            return  # idempotent re-assert of the same pair
        insort(self.ownees, ownee_address)

    def remove(self, ownee_address: int) -> bool:
        idx = bisect_left(self.ownees, ownee_address)
        if idx < len(self.ownees) and self.ownees[idx] == ownee_address:
            del self.ownees[idx]
            return True
        return False

    def contains(self, ownee_address: int) -> tuple[bool, int]:
        """Binary search; returns (found, probes) so the collector can count
        the §2.5.2 "n log n" lookup work."""
        lo, hi = 0, len(self.ownees) - 1
        probes = 0
        while lo <= hi:
            probes += 1
            mid = (lo + hi) // 2
            val = self.ownees[mid]
            if val == ownee_address:
                return True, probes
            if val < ownee_address:
                lo = mid + 1
            else:
                hi = mid - 1
        return False, max(probes, 1)

    def resort(self) -> None:
        self.ownees.sort()

    def __len__(self) -> int:
        return len(self.ownees)

    def __repr__(self) -> str:
        return f"<owner {self.owner_address:#x} ownees={len(self.ownees)}>"


class AssertionRegistry:
    """All live assertion metadata for one VM."""

    def __init__(self) -> None:
        #: address -> DeadSite for every outstanding assert-dead.
        self.dead_sites: dict[int, DeadSite] = {}
        #: address -> label for every outstanding assert-unshared.
        self.unshared_sites: dict[int, str] = {}
        #: owner address -> OwnerRecord (the paper's pair of arrays).
        self.owners: dict[int, OwnerRecord] = {}
        #: ownee address -> owner address (reverse index for purging and
        #: misuse diagnostics).
        self.ownee_owner: dict[int, int] = {}

        #: Cumulative API call counts (the §3.1.2 in-text numbers).
        self.calls: dict[AssertionKind, int] = {kind: 0 for kind in AssertionKind}
        #: assert-dead assertions satisfied (object reclaimed as asserted).
        self.dead_satisfied = 0
        #: ownee entries dropped because the ownee was reclaimed.
        self.ownees_reclaimed = 0
        self._serial = 0

    # -- assert-dead -----------------------------------------------------------------

    def next_serial(self) -> int:
        self._serial += 1
        return self._serial

    def register_dead(
        self,
        address: int,
        label: str,
        gc_number: int,
        kind: AssertionKind = AssertionKind.DEAD,
    ) -> DeadSite:
        site = DeadSite(label, self.next_serial(), gc_number, kind)
        self.dead_sites[address] = site
        return site

    # -- assert-unshared --------------------------------------------------------------

    def register_unshared(self, address: int, label: str) -> None:
        self.unshared_sites[address] = label

    # -- assert-ownedby ---------------------------------------------------------------

    def register_owned_by(self, owner_address: int, ownee_address: int, label: str) -> OwnerRecord:
        if owner_address == ownee_address:
            raise AssertionUsageError("an object cannot own itself")
        existing_owner = self.ownee_owner.get(ownee_address)
        if existing_owner is not None and existing_owner != owner_address:
            raise AssertionUsageError(
                f"object {ownee_address:#x} is already owned by "
                f"{existing_owner:#x}; owner regions may not overlap (§2.5.2)"
            )
        record = self.owners.get(owner_address)
        if record is None:
            record = OwnerRecord(owner_address, label)
            self.owners[owner_address] = record
        record.add(ownee_address)
        self.ownee_owner[ownee_address] = owner_address
        return record

    def owner_of(self, ownee_address: int) -> Optional[int]:
        return self.ownee_owner.get(ownee_address)

    def owner_records(self) -> Iterable[OwnerRecord]:
        return self.owners.values()

    def live_ownee_count(self) -> int:
        return len(self.ownee_owner)

    # -- GC lifecycle -----------------------------------------------------------------

    def purge_freed(self, freed: set[int]) -> dict[str, list[int]]:
        """Drop metadata for reclaimed addresses.

        Returns the interesting buckets: assert-dead assertions *satisfied*
        by this collection and owners that were reclaimed (whose surviving
        ownees have now outlived their owner).
        """
        satisfied = [a for a in self.dead_sites if a in freed]
        for address in satisfied:
            del self.dead_sites[address]
        self.dead_satisfied += len(satisfied)

        for address in [a for a in self.unshared_sites if a in freed]:
            del self.unshared_sites[address]

        dead_owners: list[int] = []
        for owner_address, record in list(self.owners.items()):
            reclaimed = [a for a in record.ownees if a in freed]
            for a in reclaimed:
                record.remove(a)
                self.ownee_owner.pop(a, None)
            self.ownees_reclaimed += len(reclaimed)
            if owner_address in freed:
                dead_owners.append(owner_address)
        return {"dead_satisfied": satisfied, "dead_owners": dead_owners}

    def drop_owner(self, owner_address: int) -> list[int]:
        """Remove an owner record; returns its surviving ownee addresses."""
        record = self.owners.pop(owner_address, None)
        if record is None:
            return []
        survivors = list(record.ownees)
        for a in survivors:
            self.ownee_owner.pop(a, None)
        return survivors

    def apply_forwarding(self, fwd: dict[int, int]) -> None:
        """Rewrite every address-keyed table after a copying collection."""
        if not fwd:
            return
        self.dead_sites = {fwd.get(a, a): s for a, s in self.dead_sites.items()}
        self.unshared_sites = {fwd.get(a, a): s for a, s in self.unshared_sites.items()}
        new_owners: dict[int, OwnerRecord] = {}
        for owner_address, record in self.owners.items():
            new_address = fwd.get(owner_address, owner_address)
            record.owner_address = new_address
            record.ownees = [fwd.get(a, a) for a in record.ownees]
            record.resort()
            new_owners[new_address] = record
        self.owners = new_owners
        self.ownee_owner = {
            fwd.get(a, a): fwd.get(o, o) for a, o in self.ownee_owner.items()
        }

    # -- introspection -----------------------------------------------------------------

    def snapshot(self) -> dict:
        return {
            "dead_pending": len(self.dead_sites),
            "dead_satisfied": self.dead_satisfied,
            "unshared_pending": len(self.unshared_sites),
            "owners": len(self.owners),
            "ownees": len(self.ownee_owner),
            "ownees_reclaimed": self.ownees_reclaimed,
            "calls": {k.value: v for k, v in self.calls.items()},
        }
