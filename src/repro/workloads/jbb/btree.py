"""``longBTree``: the SPEC JBB2000 order-table B-tree, on the simulated heap.

SPEC JBB2000 stores Orders "into an orderTable, implemented as a BTree"
(§3.2.1), and the paper's Figure 1 leak path runs straight through it::

    ... -> spec.jbb.District -> spec.jbb.infra.Collections.longBTree
        -> spec.jbb.infra.Collections.longBTreeNode -> [Object ->
        spec.jbb.infra.Collections.longBTreeNode -> [Object -> spec.jbb.Order

This is a textbook B-tree (CLRS-style, minimum degree ``t``) in which every
node, key array, and value array is a heap object, so assertion violations
report exactly that path shape.  Insert uses preemptive splitting; delete
implements the full rebalancing algorithm (borrow from siblings, merge).
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.errors import RuntimeFault
from repro.heap.object_model import FieldKind
from repro.runtime.handles import Handle
from repro.runtime.vm import VirtualMachine

TREE_CLASS = "spec.jbb.infra.Collections.longBTree"
NODE_CLASS = "spec.jbb.infra.Collections.longBTreeNode"

#: Default minimum degree: nodes hold t-1..2t-1 keys, t..2t children.
DEFAULT_DEGREE = 4


def _ensure_classes(vm: VirtualMachine) -> None:
    if vm.classes.maybe(TREE_CLASS) is None:
        vm.define_class(
            TREE_CLASS,
            [("root", FieldKind.REF), ("degree", FieldKind.INT), ("size", FieldKind.INT)],
        )
    if vm.classes.maybe(NODE_CLASS) is None:
        vm.define_class(
            NODE_CLASS,
            [
                ("keys", FieldKind.REF),      # int[2t-1]
                ("values", FieldKind.REF),    # Object[2t-1]
                ("children", FieldKind.REF),  # Object[2t]
                ("nkeys", FieldKind.INT),
                ("leaf", FieldKind.BOOL),
            ],
        )


class LongBTree:
    """Python driver wrapper around the on-heap B-tree."""

    def __init__(self, vm: VirtualMachine, handle: Handle):
        self.vm = vm
        self.handle = handle

    # -- construction ------------------------------------------------------------

    @classmethod
    def new(cls, vm: VirtualMachine, degree: int = DEFAULT_DEGREE) -> "LongBTree":
        if degree < 2:
            raise RuntimeFault(f"B-tree degree must be >= 2, got {degree}")
        _ensure_classes(vm)
        with vm.scope("longBTree.new"):
            handle = vm.new(TREE_CLASS)
            handle["degree"] = degree
            handle["size"] = 0
            handle["root"] = cls._new_node(vm, degree, leaf=True)
        return cls(vm, handle)

    @classmethod
    def wrap(cls, vm: VirtualMachine, handle: Handle) -> "LongBTree":
        return cls(vm, handle)

    @staticmethod
    def _new_node(vm: VirtualMachine, degree: int, leaf: bool) -> Handle:
        with vm.scope("longBTreeNode.new"):
            node = vm.new(NODE_CLASS)
            node["keys"] = vm.new_array(FieldKind.INT, 2 * degree - 1)
            node["values"] = vm.new_array(vm.classes.object_class, 2 * degree - 1)
            node["children"] = vm.new_array(vm.classes.object_class, 2 * degree)
            node["nkeys"] = 0
            node["leaf"] = leaf
        return node

    # -- basic properties ----------------------------------------------------------

    @property
    def degree(self) -> int:
        return self.handle["degree"]

    def __len__(self) -> int:
        return self.handle["size"]

    # -- lookup ----------------------------------------------------------------------

    def get(self, key: int) -> Optional[Handle]:
        node = self.handle["root"]
        while node is not None:
            idx, found = self._search_node(node, key)
            if found:
                return node["values"][idx]
            if node["leaf"]:
                return None
            node = node["children"][idx]
        return None

    def contains(self, key: int) -> bool:
        node = self.handle["root"]
        while node is not None:
            idx, found = self._search_node(node, key)
            if found:
                return True
            if node["leaf"]:
                return False
            node = node["children"][idx]
        return False

    @staticmethod
    def _search_node(node: Handle, key: int) -> tuple[int, bool]:
        """Binary search within a node; returns (index, found)."""
        keys = node["keys"]
        lo, hi = 0, node["nkeys"]
        while lo < hi:
            mid = (lo + hi) // 2
            k = keys[mid]
            if k == key:
                return mid, True
            if k < key:
                lo = mid + 1
            else:
                hi = mid
        return lo, False

    # -- insertion -------------------------------------------------------------------

    def insert(self, key: int, value: Optional[Handle]) -> bool:
        """Insert ``key`` → ``value``; returns False if the key existed."""
        # Node splits allocate, so the incoming value must stay rooted
        # across the whole descent.
        with self.vm.scope("longBTree.insert") as scope:
            if value is not None:
                scope.register(value.address)
            degree = self.degree
            root = self.handle["root"]
            if root["nkeys"] == 2 * degree - 1:
                new_root = self._new_node(self.vm, degree, leaf=False)
                new_root["children"][0] = root
                self.handle["root"] = new_root
                self._split_child(new_root, 0)
                root = new_root
            inserted = self._insert_nonfull(root, key, value)
        if inserted:
            self.handle["size"] = self.handle["size"] + 1
        return inserted

    def _split_child(self, parent: Handle, index: int) -> None:
        degree = self.degree
        child = parent["children"][index]
        sibling = self._new_node(self.vm, degree, leaf=child["leaf"])
        # Move the top t-1 keys/values of child into the sibling.
        for j in range(degree - 1):
            sibling["keys"][j] = child["keys"][j + degree]
            sibling["values"][j] = child["values"][j + degree]
            child["values"][j + degree] = None
        if not child["leaf"]:
            for j in range(degree):
                sibling["children"][j] = child["children"][j + degree]
                child["children"][j + degree] = None
        sibling["nkeys"] = degree - 1
        # Shift parent's keys/children right to make room.
        n = parent["nkeys"]
        for j in range(n, index, -1):
            parent["keys"][j] = parent["keys"][j - 1]
            parent["values"][j] = parent["values"][j - 1]
            parent["children"][j + 1] = parent["children"][j]
        parent["keys"][index] = child["keys"][degree - 1]
        parent["values"][index] = child["values"][degree - 1]
        child["values"][degree - 1] = None
        parent["children"][index + 1] = sibling
        parent["nkeys"] = n + 1
        child["nkeys"] = degree - 1

    def _insert_nonfull(self, node: Handle, key: int, value: Optional[Handle]) -> bool:
        degree = self.degree
        while True:
            idx, found = self._search_node(node, key)
            if found:
                node["values"][idx] = value
                return False
            if node["leaf"]:
                n = node["nkeys"]
                for j in range(n, idx, -1):
                    node["keys"][j] = node["keys"][j - 1]
                    node["values"][j] = node["values"][j - 1]
                node["keys"][idx] = key
                node["values"][idx] = value
                node["nkeys"] = n + 1
                return True
            child = node["children"][idx]
            if child["nkeys"] == 2 * degree - 1:
                self._split_child(node, idx)
                # The promoted key may change which side we descend to.
                if key == node["keys"][idx]:
                    node["values"][idx] = value
                    return False
                if key > node["keys"][idx]:
                    idx += 1
                child = node["children"][idx]
            node = child

    # -- deletion ---------------------------------------------------------------------

    def remove(self, key: int) -> Optional[Handle]:
        """Remove ``key``; returns its value, or None if absent."""
        if not self.contains(key):
            return None
        removed = self._remove_from(self.handle["root"], key)
        root = self.handle["root"]
        if root["nkeys"] == 0 and not root["leaf"]:
            self.handle["root"] = root["children"][0]
        self.handle["size"] = self.handle["size"] - 1
        return removed

    def _remove_from(self, node: Handle, key: int) -> Optional[Handle]:
        degree = self.degree
        idx, found = self._search_node(node, key)
        if found and node["leaf"]:
            value = node["values"][idx]
            n = node["nkeys"]
            for j in range(idx, n - 1):
                node["keys"][j] = node["keys"][j + 1]
                node["values"][j] = node["values"][j + 1]
            node["values"][n - 1] = None
            node["nkeys"] = n - 1
            return value
        if found:
            value = node["values"][idx]
            left = node["children"][idx]
            right = node["children"][idx + 1]
            if left["nkeys"] >= degree:
                pred_key, pred_val = self._max_entry(left)
                node["keys"][idx] = pred_key
                node["values"][idx] = pred_val
                self._remove_from(self._fill_for_descent(node, idx), pred_key)
            elif right["nkeys"] >= degree:
                succ_key, succ_val = self._min_entry(right)
                node["keys"][idx] = succ_key
                node["values"][idx] = succ_val
                self._remove_from(self._fill_for_descent(node, idx + 1), succ_key)
            else:
                self._merge_children(node, idx)
                self._remove_from(node["children"][idx], key)
            return value
        # Key lives in a subtree; ensure the child we descend into has >= t keys.
        child = self._fill_for_descent(node, idx)
        return self._remove_from(child, key)

    def _fill_for_descent(self, node: Handle, idx: int) -> Handle:
        """Guarantee ``children[idx]`` has at least ``degree`` keys."""
        degree = self.degree
        if idx > node["nkeys"]:
            idx = node["nkeys"]
        child = node["children"][idx]
        if child["nkeys"] >= degree:
            return child
        if idx > 0 and node["children"][idx - 1]["nkeys"] >= degree:
            self._borrow_from_left(node, idx)
            return node["children"][idx]
        if idx < node["nkeys"] and node["children"][idx + 1]["nkeys"] >= degree:
            self._borrow_from_right(node, idx)
            return node["children"][idx]
        if idx < node["nkeys"]:
            self._merge_children(node, idx)
            return node["children"][idx]
        self._merge_children(node, idx - 1)
        return node["children"][idx - 1]

    def _borrow_from_left(self, node: Handle, idx: int) -> None:
        child = node["children"][idx]
        left = node["children"][idx - 1]
        n = child["nkeys"]
        for j in range(n, 0, -1):
            child["keys"][j] = child["keys"][j - 1]
            child["values"][j] = child["values"][j - 1]
        if not child["leaf"]:
            for j in range(n + 1, 0, -1):
                child["children"][j] = child["children"][j - 1]
        child["keys"][0] = node["keys"][idx - 1]
        child["values"][0] = node["values"][idx - 1]
        ln = left["nkeys"]
        node["keys"][idx - 1] = left["keys"][ln - 1]
        node["values"][idx - 1] = left["values"][ln - 1]
        left["values"][ln - 1] = None
        if not child["leaf"]:
            child["children"][0] = left["children"][ln]
            left["children"][ln] = None
        left["nkeys"] = ln - 1
        child["nkeys"] = n + 1

    def _borrow_from_right(self, node: Handle, idx: int) -> None:
        child = node["children"][idx]
        right = node["children"][idx + 1]
        n = child["nkeys"]
        child["keys"][n] = node["keys"][idx]
        child["values"][n] = node["values"][idx]
        node["keys"][idx] = right["keys"][0]
        node["values"][idx] = right["values"][0]
        if not child["leaf"]:
            child["children"][n + 1] = right["children"][0]
        rn = right["nkeys"]
        for j in range(rn - 1):
            right["keys"][j] = right["keys"][j + 1]
            right["values"][j] = right["values"][j + 1]
        right["values"][rn - 1] = None
        if not right["leaf"]:
            for j in range(rn):
                right["children"][j] = right["children"][j + 1]
            right["children"][rn] = None
        right["nkeys"] = rn - 1
        child["nkeys"] = n + 1

    def _merge_children(self, node: Handle, idx: int) -> None:
        """Merge children[idx], keys[idx], children[idx+1] into one node."""
        child = node["children"][idx]
        right = node["children"][idx + 1]
        n = child["nkeys"]
        child["keys"][n] = node["keys"][idx]
        child["values"][n] = node["values"][idx]
        rn = right["nkeys"]
        for j in range(rn):
            child["keys"][n + 1 + j] = right["keys"][j]
            child["values"][n + 1 + j] = right["values"][j]
        if not child["leaf"]:
            for j in range(rn + 1):
                child["children"][n + 1 + j] = right["children"][j]
        child["nkeys"] = n + 1 + rn
        # Remove keys[idx] / children[idx+1] from the parent.
        pn = node["nkeys"]
        for j in range(idx, pn - 1):
            node["keys"][j] = node["keys"][j + 1]
            node["values"][j] = node["values"][j + 1]
            node["children"][j + 1] = node["children"][j + 2]
        node["values"][pn - 1] = None
        node["children"][pn] = None
        node["nkeys"] = pn - 1

    @staticmethod
    def _min_entry(node: Handle) -> tuple[int, Optional[Handle]]:
        while not node["leaf"]:
            node = node["children"][0]
        return node["keys"][0], node["values"][0]

    @staticmethod
    def _max_entry(node: Handle) -> tuple[int, Optional[Handle]]:
        while not node["leaf"]:
            node = node["children"][node["nkeys"]]
        n = node["nkeys"]
        return node["keys"][n - 1], node["values"][n - 1]

    # -- iteration ---------------------------------------------------------------------

    def items(self) -> Iterator[tuple[int, Optional[Handle]]]:
        """In-order iteration over (key, value)."""
        yield from self._iter_node(self.handle["root"])

    def _iter_node(self, node: Handle) -> Iterator[tuple[int, Optional[Handle]]]:
        n = node["nkeys"]
        if node["leaf"]:
            for i in range(n):
                yield node["keys"][i], node["values"][i]
            return
        for i in range(n):
            yield from self._iter_node(node["children"][i])
            yield node["keys"][i], node["values"][i]
        yield from self._iter_node(node["children"][n])

    def keys(self) -> Iterator[int]:
        for key, _value in self.items():
            yield key

    def min_key(self) -> Optional[int]:
        if len(self) == 0:
            return None
        key, _value = self._min_entry(self.handle["root"])
        return key

    def first_keys(self, count: int) -> list[int]:
        """The smallest ``count`` keys (delivery processes oldest orders)."""
        out: list[int] = []
        for key in self.keys():
            if len(out) >= count:
                break
            out.append(key)
        return out

    # -- invariants (used by property tests) ------------------------------------------------

    def check_invariants(self) -> None:
        """Raise if B-tree structural invariants are violated."""
        degree = self.degree
        count = self._check_node(self.handle["root"], degree, is_root=True, lo=None, hi=None)
        if count != len(self):
            raise RuntimeFault(f"size mismatch: counted {count}, recorded {len(self)}")

    def _check_node(self, node: Handle, degree: int, is_root: bool, lo, hi) -> int:
        n = node["nkeys"]
        if not is_root and n < degree - 1:
            raise RuntimeFault(f"underfull node: {n} keys, min {degree - 1}")
        if n > 2 * degree - 1:
            raise RuntimeFault(f"overfull node: {n} keys, max {2 * degree - 1}")
        keys = [node["keys"][i] for i in range(n)]
        if keys != sorted(keys) or len(set(keys)) != len(keys):
            raise RuntimeFault(f"node keys not strictly sorted: {keys}")
        for key in keys:
            if (lo is not None and key <= lo) or (hi is not None and key >= hi):
                raise RuntimeFault(f"key {key} outside range ({lo}, {hi})")
        if node["leaf"]:
            return n
        count = n
        for i in range(n + 1):
            child = node["children"][i]
            if child is None:
                raise RuntimeFault(f"missing child {i} of internal node")
            child_lo = keys[i - 1] if i > 0 else lo
            child_hi = keys[i] if i < n else hi
            count += self._check_node(child, degree, False, child_lo, child_hi)
        return count
