"""Cork-style type-growth leak detection (Jump & McKinley, POPL 2007).

Cork piggybacks on the collector like GC assertions do, but it is a
*heuristic*: it summarizes the live heap per type at each collection and
reports types whose volume grows persistently.  The paper's contrast
(§2.7): "Our information is similar to that provided by Cork, but much more
precise: our path consists of object instances, not just types."

:class:`TypeGrowthProfiler` installs as a VM gc-observer.  Its books are
the telemetry layer's census primitives
(:class:`~repro.telemetry.census.ClassCensus` fed by
:func:`~repro.telemetry.census.take_census`) rather than a private history
dict; :meth:`report` flags classes whose live volume rose in at least
``min_growth_fraction`` of the observed windows and grew overall by
``min_total_ratio``.  The output is a ranked list of *types* — no
instances, no paths, and a programmer still has to find the actual leak
site.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.telemetry.census import ClassCensus, take_census

if TYPE_CHECKING:
    from repro.runtime.vm import VirtualMachine


@dataclass
class GrowthReport:
    """One suspicious type, Cork-style."""

    type_name: str
    first_bytes: int
    last_bytes: int
    rising_fraction: float
    samples: list[int] = field(default_factory=list)

    @property
    def total_ratio(self) -> float:
        return self.last_bytes / self.first_bytes if self.first_bytes else float("inf")

    def render(self) -> str:
        return (
            f"type {self.type_name}: {self.first_bytes} -> {self.last_bytes} bytes "
            f"over {len(self.samples)} GCs "
            f"(rising in {self.rising_fraction:.0%} of intervals)"
        )


class TypeGrowthProfiler:
    """Per-type live-volume census at every collection."""

    def __init__(self, vm: "VirtualMachine"):
        self.vm = vm
        #: Aligned per-class (count, bytes) time series, one sample per
        #: observed GC — the telemetry census, not private bookkeeping.
        self.census = ClassCensus()
        vm.gc_observers.append(self._observe)

    @property
    def collections_observed(self) -> int:
        return self.census.samples

    @property
    def history(self) -> dict[str, list[int]]:
        """Back-compat view: class name -> live-byte series per observed GC."""
        return {
            name: self.census.bytes_series(name)
            for name in self.census.class_names()
        }

    def detach(self) -> None:
        self.vm.gc_observers.remove(self._observe)

    # -- census ---------------------------------------------------------------------

    def _observe(self, vm: "VirtualMachine", freed: set[int]) -> None:
        self.census.observe(take_census(vm.heap), gc_number=vm.stats.collections)

    # -- reporting -------------------------------------------------------------------

    def slopes(self) -> dict[str, float]:
        """Per-type byte-growth slopes (bytes per observed GC).

        A thin view over :meth:`ClassCensus.slopes` so consumers that want
        Cork's ranking — ``snapshot diff`` cites it next to its own — read
        it from the shared census instead of recomputing trend lines.
        """
        return self.census.slopes()

    def ranked_slopes(self) -> list[tuple[str, float]]:
        """Cork's ranking: types by growth slope, steepest first (name is
        the deterministic tie-break)."""
        return sorted(self.slopes().items(), key=lambda kv: (-kv[1], kv[0]))

    def report(
        self,
        min_samples: int = 3,
        min_growth_fraction: float = 0.75,
        min_total_ratio: float = 1.5,
    ) -> list[GrowthReport]:
        """Types whose live volume keeps growing — *potential* leaks only.

        Matches Cork's spirit: a type qualifies when its volume rose in at
        least ``min_growth_fraction`` of observed GC intervals and its
        final volume is ``min_total_ratio`` times its first non-zero one.
        """
        reports: list[GrowthReport] = []
        for name, samples in self.history.items():
            # Align histories: drop leading zeros before the type existed.
            trimmed = samples[:]
            while trimmed and trimmed[0] == 0:
                trimmed.pop(0)
            if len(trimmed) < min_samples:
                continue
            rises = sum(1 for a, b in zip(trimmed, trimmed[1:]) if b > a)
            intervals = len(trimmed) - 1
            rising_fraction = rises / intervals if intervals else 0.0
            first, last = trimmed[0], trimmed[-1]
            if (
                rising_fraction >= min_growth_fraction
                and first > 0
                and last / first >= min_total_ratio
            ):
                reports.append(
                    GrowthReport(
                        type_name=name,
                        first_bytes=first,
                        last_bytes=last,
                        rising_fraction=rising_fraction,
                        samples=trimmed,
                    )
                )
        reports.sort(key=lambda r: r.last_bytes - r.first_bytes, reverse=True)
        return reports
