"""Small-heap model checker: enumeration, the full matrix, and a broken
collector it must catch.

The harness (:mod:`repro.verify.modelcheck`) is itself load-bearing — it
gates CI — so these tests pin three things: the shape enumerator really
is exhaustive-modulo-isomorphism, the real collectors pass the whole
matrix at a useful scope, and a deliberately unsound collector (one that
drops a mark bit before sweeping) is caught, not waved through.
"""

from __future__ import annotations

from repro.heap import header as hdr
from repro.gc.marksweep import MarkSweepCollector
from repro.runtime.vm import VirtualMachine
from repro.verify import (
    Cell,
    HeapShape,
    default_cells,
    enumerate_shapes,
    run_model_check,
)
from repro.verify.modelcheck import MODEL_HEAP_BYTES, canonical_form


# -- enumeration ------------------------------------------------------------------------


def test_shapes_respect_the_scope_bounds():
    shapes = enumerate_shapes(max_objects=3, max_edges=2, max_roots=1)
    assert shapes, "empty scope"
    for shape in shapes:
        assert 1 <= shape.n <= 3
        assert shape.edge_count() <= 2
        assert len(shape.roots) <= 1
        for l, r in shape.slots:
            assert l is None or 0 <= l < shape.n
            assert r is None or 0 <= r < shape.n


def test_single_object_shapes_are_exactly_eight():
    # One node: left in {null, self} x right in {null, self} x rooted or
    # not = 8 distinct configurations, none isomorphic to another.
    shapes = [s for s in enumerate_shapes(1, 3, 2) if s.n == 1]
    assert len(shapes) == 8


def test_isomorphic_shapes_are_deduplicated():
    # 0 -> 1 and 1 -> 0 (root on the source) are the same graph relabelled.
    a = canonical_form(2, ((1, None), (None, None)), (0,))
    b = canonical_form(2, ((None, None), (0, None)), (1,))
    assert a == b

    # ...and only one representative of the class survives enumeration.
    shapes = enumerate_shapes(2, 1, 1)
    keys = [canonical_form(s.n, s.slots, s.roots) for s in shapes]
    assert len(keys) == len(set(keys))


def test_enumeration_scope_grows_monotonically():
    small = len(enumerate_shapes(2, 2, 1))
    bigger = len(enumerate_shapes(3, 2, 1))
    assert bigger > small


def test_reachability_oracle_handles_cycles_and_dead_subgraphs():
    # 0 <-> 1 cycle rooted at 0; 2 -> 0 is garbage pointing into the live set.
    shape = HeapShape(3, ((1, None), (0, None), (0, None)), (0,))
    assert shape.reachable() == {0, 1}


# -- the real matrix --------------------------------------------------------------------


def test_full_matrix_passes_at_small_scope():
    """Every cell x every canonical shape at N=2: zero violations."""
    report = run_model_check(max_objects=2, max_edges=2, max_roots=1)
    assert report.ok, report.render()
    assert len(report.cell_labels) == len(default_cells())
    assert report.runs == report.shape_count * len(report.cell_labels)


def test_marksweep_asserted_cell_passes_at_depth_three():
    """One asserted cell through the full N=3 shape set (845+ shapes)."""
    cells = [Cell("marksweep", "lazy", 0, True)]
    report = run_model_check(max_objects=3, max_edges=3, max_roots=2, cells=cells)
    assert report.ok, report.render()
    # Shape-count floor: the N=3/E=3/R=2 scope has a known census; a
    # shrinking count means the enumerator silently lost coverage.
    assert report.shape_count >= 988
    assert report.shapes_by_n[1] == 8
    assert report.shapes_by_n[2] == 135


# -- the broken collector ---------------------------------------------------------------


class _DropOneMarkCollector(MarkSweepCollector):
    """Marks correctly, then silently unmarks one live object.

    The classic incremental-update bug shape: an object the trace proved
    live loses its mark before the sweep, so the sweep frees it.  The
    model checker must convict this collector of Soundness1 violations.
    """

    def _run_mark_phase(self, tracer):
        result = super()._run_mark_phase(tracer)
        marked = [o for o in self.heap if o.status & hdr.MARK_BIT]
        if marked:
            victim = max(marked, key=lambda o: o.address)
            victim.status &= ~hdr.MARK_BIT
        return result


def test_model_checker_convicts_a_mark_dropping_collector():
    def factory(cell):
        collector = _DropOneMarkCollector(MODEL_HEAP_BYTES)
        return VirtualMachine(
            heap_bytes=MODEL_HEAP_BYTES,
            collector=collector,
            assertions=False,
            telemetry=False,
        )

    cells = [Cell("marksweep", "eager", 0, False)]
    report = run_model_check(max_objects=2, max_edges=2, max_roots=1,
                             cells=cells, vm_factory=factory)
    assert not report.ok
    assert any("Soundness1" in v for v in report.violations), report.violations[:5]
    assert "FAIL" in report.render()


def test_report_renders_shape_census_and_verdict():
    report = run_model_check(max_objects=1, max_edges=1, max_roots=1)
    text = report.render()
    assert "shapes:" in text and "cells:" in text
    assert "PASS" in text
