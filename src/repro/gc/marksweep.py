"""The MarkSweep collector — the paper's configuration.

"We implemented these assertions in Jikes RVM 3.0.0 using the MarkSweep
collector.  We chose MarkSweep because it is a full-heap collector, which
will check all assertions at every garbage collection." (§2.2)

Allocation is segregated-fit free-list allocation; collection is a full-heap
mark phase (with the assertion engine's pre-mark ownership phase and
per-object encounter hooks) followed by an eager sweep that returns dead
cells to the free lists.
"""

from __future__ import annotations

from repro.errors import HeapError
from repro.gc.base import Collector
from repro.gc.stats import PhaseTimer
from repro.heap import header as hdr
from repro.heap.blocks import BlockSpace
from repro.heap.object_model import ClassDescriptor, HeapObject
from repro.heap.space import FreeListSpace


class MarkSweepCollector(Collector):
    """Full-heap, non-moving mark-sweep over a segregated-fit space.

    Two space policies are available: ``"freelist"`` (simple per-size-class
    free lists; the default, and what the heap budgets are calibrated for)
    and ``"blocks"`` (Jikes-style block-structured layout with observable
    fragmentation; see :mod:`repro.heap.blocks`).
    """

    name = "marksweep"
    moving = False

    def __init__(
        self,
        heap_bytes: int,
        engine=None,
        track_paths=None,
        space_policy: str = "freelist",
    ):
        super().__init__(heap_bytes, engine, track_paths)
        if space_policy == "freelist":
            self.space = FreeListSpace("ms", heap_bytes)
        elif space_policy == "blocks":
            self.space = BlockSpace("ms", heap_bytes)
        else:
            raise HeapError(f"unknown space policy {space_policy!r}")
        self.space_policy = space_policy

    # -- allocation -----------------------------------------------------------------

    def allocate(self, cls: ClassDescriptor, length: int = 0) -> HeapObject:
        nbytes = cls.size_of(length)
        self._telemetry_allocation(nbytes)
        address = self.space.allocate(nbytes)
        if address is None:
            self.collect(reason=f"allocation of {nbytes} bytes failed")
            address = self.space.allocate(nbytes)
            if address is None:
                raise self._oom(cls, nbytes, "space full after full-heap GC")
        return self.heap.install(address, cls, length)

    def bytes_in_use(self) -> int:
        return self.space.bytes_in_use

    # -- collection -----------------------------------------------------------------

    def collect(self, reason: str = "explicit") -> None:
        pending = self._telemetry_begin("full", reason)
        with PhaseTimer(self.stats, "gc_seconds"):
            self.stats.collections += 1
            self.stats.full_collections += 1
            self.gc_log.append(f"GC {self.stats.collections}: {reason}")

            tracer = self._make_tracer()
            self._run_mark_phase(tracer)
            freed = self._sweep()
        self._finish_collection(freed)
        self._telemetry_end(pending)

    def _sweep(self) -> set[int]:
        """Free every unmarked object; reset GC bits on survivors."""
        freed: set[int] = set()
        stats = self.stats
        heap = self.heap
        space = self.space
        with PhaseTimer(stats, "sweep_seconds"):
            for obj in heap.objects():
                stats.objects_swept += 1
                if obj.status & hdr.MARK_BIT:
                    self.clear_gc_bits(obj)
                else:
                    freed.add(obj.address)
                    stats.objects_freed += 1
                    stats.bytes_freed += space.free(obj.address)
                    heap.evict(obj)
        return freed
