"""GC assertions: the paper's primary contribution.

The pieces:

* :class:`~repro.core.api.GcAssertions` — the programmer-facing calls
  (``assert_dead``, ``start_region``/``assert_alldead``,
  ``assert_instances``, ``assert_unshared``, ``assert_ownedby``).
* :class:`~repro.core.engine.AssertionEngine` — the collector-side checker
  that piggybacks on tracing.
* :class:`~repro.core.registry.AssertionRegistry` — the metadata the paper
  costs out (header bits, per-class words, sorted ownee arrays).
* :mod:`~repro.core.ownership` — the two-phase ownership scan.
* :mod:`~repro.core.reporting` — Figure-1-style full-path violation reports.
* :mod:`~repro.core.reactions` — LOG / HALT / FORCE policies.
"""

from repro.core.api import GcAssertions
from repro.core.engine import AssertionEngine
from repro.core.probes import HeapProbes, ProbeStats
from repro.core.reactions import Reaction, ReactionPolicy
from repro.core.registry import AssertionRegistry, DeadSite, OwnerRecord
from repro.core.reporting import (
    AssertionKind,
    HeapPath,
    PathEntry,
    Violation,
    ViolationLog,
)

__all__ = [
    "GcAssertions",
    "AssertionEngine",
    "HeapProbes",
    "ProbeStats",
    "Reaction",
    "ReactionPolicy",
    "AssertionRegistry",
    "DeadSite",
    "OwnerRecord",
    "AssertionKind",
    "HeapPath",
    "PathEntry",
    "Violation",
    "ViolationLog",
]
