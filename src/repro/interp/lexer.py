"""Lexer for MiniJ, the small class-based language that runs on the VM.

MiniJ exists so that GC assertions can be exercised the way the paper uses
them: from *inside programs running on the managed runtime*, with interpreter
stack frames as real GC roots.  The surface syntax is a small Java-like
language::

    class Node {
      var value: int;
      var next: Node;
      def sum(): int { ... }
    }

    def main(): void {
      var head: Node = new Node();
      gcAssertDead(head);
      head = null;
      gc();
    }
"""

from __future__ import annotations

import enum
from typing import Iterator

from repro.errors import MiniJSyntaxError


class TokenKind(enum.Enum):
    # literals / identifiers
    INT = "int-literal"
    FLOAT = "float-literal"
    STRING = "string-literal"
    IDENT = "identifier"
    # keywords
    CLASS = "class"
    EXTENDS = "extends"
    DEF = "def"
    VAR = "var"
    IF = "if"
    ELSE = "else"
    WHILE = "while"
    FOR = "for"
    BREAK = "break"
    CONTINUE = "continue"
    RETURN = "return"
    NEW = "new"
    NULL = "null"
    TRUE = "true"
    FALSE = "false"
    THIS = "this"
    # punctuation
    LPAREN = "("
    RPAREN = ")"
    LBRACE = "{"
    RBRACE = "}"
    LBRACKET = "["
    RBRACKET = "]"
    SEMI = ";"
    COLON = ":"
    COMMA = ","
    DOT = "."
    ASSIGN = "="
    # operators
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    PERCENT = "%"
    EQ = "=="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    AND = "&&"
    OR = "||"
    NOT = "!"
    EOF = "<eof>"


KEYWORDS = {
    "class": TokenKind.CLASS,
    "extends": TokenKind.EXTENDS,
    "def": TokenKind.DEF,
    "var": TokenKind.VAR,
    "if": TokenKind.IF,
    "else": TokenKind.ELSE,
    "while": TokenKind.WHILE,
    "for": TokenKind.FOR,
    "break": TokenKind.BREAK,
    "continue": TokenKind.CONTINUE,
    "return": TokenKind.RETURN,
    "new": TokenKind.NEW,
    "null": TokenKind.NULL,
    "true": TokenKind.TRUE,
    "false": TokenKind.FALSE,
    "this": TokenKind.THIS,
}

_TWO_CHAR = {
    "==": TokenKind.EQ,
    "!=": TokenKind.NE,
    "<=": TokenKind.LE,
    ">=": TokenKind.GE,
    "&&": TokenKind.AND,
    "||": TokenKind.OR,
}

_ONE_CHAR = {
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    "{": TokenKind.LBRACE,
    "}": TokenKind.RBRACE,
    "[": TokenKind.LBRACKET,
    "]": TokenKind.RBRACKET,
    ";": TokenKind.SEMI,
    ":": TokenKind.COLON,
    ",": TokenKind.COMMA,
    ".": TokenKind.DOT,
    "=": TokenKind.ASSIGN,
    "+": TokenKind.PLUS,
    "-": TokenKind.MINUS,
    "*": TokenKind.STAR,
    "/": TokenKind.SLASH,
    "%": TokenKind.PERCENT,
    "<": TokenKind.LT,
    ">": TokenKind.GT,
    "!": TokenKind.NOT,
}


class Token:
    __slots__ = ("kind", "text", "value", "line", "column")

    def __init__(self, kind: TokenKind, text: str, value, line: int, column: int):
        self.kind = kind
        self.text = text
        self.value = value
        self.line = line
        self.column = column

    def __repr__(self) -> str:
        return f"<token {self.kind.name} {self.text!r} @{self.line}:{self.column}>"


class Lexer:
    """Hand-written scanner with line/column tracking and // and /* comments."""

    def __init__(self, source: str):
        self.source = source
        self.pos = 0
        self.line = 1
        self.column = 1

    def _error(self, message: str) -> MiniJSyntaxError:
        return MiniJSyntaxError(message, self.line, self.column)

    def _peek(self, offset: int = 0) -> str:
        idx = self.pos + offset
        return self.source[idx] if idx < len(self.source) else ""

    def _advance(self) -> str:
        ch = self.source[self.pos]
        self.pos += 1
        if ch == "\n":
            self.line += 1
            self.column = 1
        else:
            self.column += 1
        return ch

    def _skip_trivia(self) -> None:
        while self.pos < len(self.source):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                self._advance()
                self._advance()
                while self.pos < len(self.source):
                    if self._peek() == "*" and self._peek(1) == "/":
                        self._advance()
                        self._advance()
                        break
                    self._advance()
                else:
                    raise self._error("unterminated block comment")
            else:
                return

    def tokens(self) -> Iterator[Token]:
        while True:
            self._skip_trivia()
            line, column = self.line, self.column
            if self.pos >= len(self.source):
                yield Token(TokenKind.EOF, "", None, line, column)
                return
            ch = self._peek()
            if ch.isdigit():
                yield self._number(line, column)
            elif ch.isalpha() or ch == "_":
                yield self._identifier(line, column)
            elif ch == '"':
                yield self._string(line, column)
            else:
                two = ch + self._peek(1)
                if two in _TWO_CHAR:
                    self._advance()
                    self._advance()
                    yield Token(_TWO_CHAR[two], two, None, line, column)
                elif ch in _ONE_CHAR:
                    self._advance()
                    yield Token(_ONE_CHAR[ch], ch, None, line, column)
                else:
                    raise self._error(f"unexpected character {ch!r}")

    def _number(self, line: int, column: int) -> Token:
        start = self.pos
        while self._peek().isdigit():
            self._advance()
        if self._peek() == "." and self._peek(1).isdigit():
            self._advance()
            while self._peek().isdigit():
                self._advance()
            text = self.source[start : self.pos]
            return Token(TokenKind.FLOAT, text, float(text), line, column)
        text = self.source[start : self.pos]
        return Token(TokenKind.INT, text, int(text), line, column)

    def _identifier(self, line: int, column: int) -> Token:
        start = self.pos
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        text = self.source[start : self.pos]
        kind = KEYWORDS.get(text, TokenKind.IDENT)
        value = text if kind is TokenKind.IDENT else None
        return Token(kind, text, value, line, column)

    def _string(self, line: int, column: int) -> Token:
        self._advance()  # opening quote
        chars: list[str] = []
        while True:
            if self.pos >= len(self.source):
                raise self._error("unterminated string literal")
            ch = self._advance()
            if ch == '"':
                break
            if ch == "\\":
                esc = self._advance()
                chars.append({"n": "\n", "t": "\t", '"': '"', "\\": "\\"}.get(esc, esc))
            else:
                chars.append(ch)
        text = "".join(chars)
        return Token(TokenKind.STRING, text, text, line, column)


def tokenize(source: str) -> list[Token]:
    """Tokenize a whole program, EOF token included."""
    return list(Lexer(source).tokens())
