"""FigureResult construction, rendering, and serialization."""

import pytest

from repro.bench.figures import (
    ASSERTED_BENCHMARKS,
    PAPER_REFERENCE,
    FigureResult,
    infrastructure_figures,
    withassertions_figures,
)
from repro.bench.methodology import Config, OverheadRow


def make_row(name, base, other):
    return OverheadRow(name, base, other, 0.001, 0.001, {}, {})


class TestFigureResult:
    def test_geomean_of_ratios(self):
        fig = FigureResult("t", "time", Config.INFRASTRUCTURE)
        fig.rows.append(make_row("a", 1.0, 2.0))
        fig.rows.append(make_row("b", 1.0, 0.5))
        assert fig.geomean_ratio == pytest.approx(1.0)
        assert fig.geomean_overhead_pct == pytest.approx(0.0)

    def test_row_lookup(self):
        fig = FigureResult("t", "time", Config.INFRASTRUCTURE)
        fig.rows.append(make_row("a", 1.0, 1.1))
        assert fig.row("a").other_mean == 1.1
        with pytest.raises(KeyError):
            fig.row("zzz")

    def test_render_shows_baseline_and_target_configs(self):
        fig = FigureResult(
            "t", "GC time", Config.WITH_ASSERTIONS, config_a=Config.INFRASTRUCTURE
        )
        fig.rows.append(make_row("db", 1.0, 1.3))
        text = fig.render()
        assert "Infrastructure vs WithAssertions" in text
        assert "Infrastructure = 100" in text
        assert "db" in text
        assert "+30.0%" in text

    def test_render_includes_paper_reference(self):
        fig = FigureResult(
            "fig3", "GC time", Config.INFRASTRUCTURE, paper=PAPER_REFERENCE["fig3"]
        )
        fig.rows.append(make_row("bloat", 1.0, 1.2))
        assert "13.36" in fig.render()

    def test_as_dict_round_trips_rows(self):
        fig = FigureResult("fig2", "total", Config.INFRASTRUCTURE)
        fig.rows.append(make_row("antlr", 2.0, 2.2))
        data = fig.as_dict()
        assert data["figure"] == "fig2"
        assert data["rows"]["antlr"]["overhead_pct"] == pytest.approx(10.0)
        assert data["rows"]["antlr"]["base_mean_s"] == 2.0
        import json

        json.dumps(data)  # must be JSON-serializable

    def test_paper_reference_complete(self):
        assert set(PAPER_REFERENCE) == {"fig2", "fig3", "fig4", "fig5", "counts"}
        assert PAPER_REFERENCE["fig3"]["worst_case"][0] == "bloat"


class TestFigureGenerators:
    def test_infrastructure_figures_share_samples(self):
        figs = infrastructure_figures(trials=1, benchmarks=["mpegaudio"])
        assert set(figs) == {"fig2", "fig2-mutator", "fig3"}
        for fig in figs.values():
            assert [r.benchmark for r in fig.rows] == ["mpegaudio"]
        # Deterministic counters agree across the shared-sample figures.
        assert (
            figs["fig2"].row("mpegaudio").counters_base
            == figs["fig3"].row("mpegaudio").counters_base
        )

    def test_withassertions_figures_cover_paper_benchmarks(self):
        figs = withassertions_figures(trials=1)
        assert {r.benchmark for r in figs["fig4"].rows} == set(ASSERTED_BENCHMARKS)
        assert figs["fig5-infra"].config_a is Config.INFRASTRUCTURE
