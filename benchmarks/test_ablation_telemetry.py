"""Ablation abl-telemetry: the cost of the telemetry emit path.

Mirrors the §2.7 "path tracking is free" ablation (abl-path) for the
telemetry subsystem added on top of the paper: with telemetry *disabled*
(``VirtualMachine(telemetry=False)``) the emit path reduces to one
attribute load + ``is None`` test per allocation and per collection, so the
run must be within noise of the pre-telemetry baseline — and the
deterministic work counters must be *identical*, since telemetry observes
the collector without changing what it does.  With telemetry *enabled* we
pay one histogram record per allocation and one event + census walk per
collection; this ablation bounds that too.
"""

from __future__ import annotations

from benchmarks.conftest import trials
from repro.bench.methodology import confidence_interval_90, mean
from repro.runtime.vm import VirtualMachine
from repro.workloads.synthetic import PROFILES, run_synthetic
from repro.workloads.suite import HEAP_BUDGETS

PROFILE = "bloat"  # the GC-heaviest suite member, as in abl-path


def _run(telemetry: bool) -> tuple[float, dict, VirtualMachine]:
    vm = VirtualMachine(heap_bytes=HEAP_BUDGETS[PROFILE], telemetry=telemetry)
    run_synthetic(vm, PROFILES[PROFILE])
    return vm.stats.gc_seconds, vm.stats.snapshot(), vm


def test_telemetry_overhead(once, figure_report):
    def run():
        enabled = [_run(True) for _ in range(trials())]
        disabled = [_run(False) for _ in range(trials())]
        return enabled, disabled

    enabled, disabled = once(run)
    on_times = [t for t, _s, _vm in enabled]
    off_times = [t for t, _s, _vm in disabled]
    ratio = mean(on_times) / mean(off_times)
    figure_report.append(
        "Ablation abl-telemetry (telemetry on/off, GC time on 'bloat'):\n"
        f"  off: {mean(off_times) * 1e3:.1f} ms ±{confidence_interval_90(off_times) * 1e3:.1f}\n"
        f"  on:  {mean(on_times) * 1e3:.1f} ms ±{confidence_interval_90(on_times) * 1e3:.1f}\n"
        f"  ratio: {ratio:.3f} (disabled mode is the pre-telemetry baseline)"
    )
    # The enabled emit path (begin/end snapshot, histograms, census walk)
    # must stay cheap relative to the collection it observes.
    assert ratio < 2.0

    # Telemetry observes the collector without perturbing it: every
    # deterministic work counter is identical whether it is on or off.
    on_counters = enabled[0][1]["counters"]
    off_counters = disabled[0][1]["counters"]
    assert on_counters == off_counters

    # And the enabled run actually produced the observability artifacts.
    vm = enabled[0][2]
    assert len(vm.telemetry.events) > 0
    assert vm.telemetry.pause_hist.count == on_counters["collections"]
    assert vm.telemetry.alloc_hist.count > 0
    assert vm.telemetry.census.samples == on_counters["collections"]


def test_disabled_mode_is_inert(once):
    """telemetry=False leaves no hub anywhere a hot path could reach."""

    def run():
        vm = VirtualMachine(heap_bytes=HEAP_BUDGETS[PROFILE], telemetry=False)
        run_synthetic(vm, PROFILES[PROFILE])
        return vm

    vm = once(run)
    assert vm.telemetry is None
    assert vm.collector.telemetry is None
