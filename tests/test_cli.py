"""CLI (`python -m repro`) tests, driven through main(argv)."""

import json
import pathlib
import runpy
import sys
import warnings

import pytest

from repro.__main__ import main

PROGRAMS = pathlib.Path(__file__).resolve().parent.parent / "examples" / "programs"


def run_as_module(argv: list[str]) -> int:
    """Invoke ``python -m repro <argv>`` in-process via runpy."""
    saved = sys.argv
    sys.argv = ["repro"] + argv
    try:
        with pytest.raises(SystemExit) as excinfo, warnings.catch_warnings():
            # repro.__main__ is already imported by this test module; the
            # re-execution runpy warns about is exactly what we want here.
            warnings.filterwarnings("ignore", category=RuntimeWarning)
            runpy.run_module("repro", run_name="__main__")
        return excinfo.value.code or 0
    finally:
        sys.argv = saved


class TestCli:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "GC assertions" in out
        assert "pseudojbb" in out
        assert "marksweep" in out

    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "Warning: an object that was asserted dead is reachable." in out
        assert "1 satisfied" in out

    def test_verify(self, capsys):
        assert main(["verify"]) == 0
        out = capsys.readouterr().out
        for collector in ("marksweep", "semispace", "generational"):
            assert collector in out
        assert "OK" in out
        assert "FAILED" not in out

    def test_minij(self, capsys):
        path = str(PROGRAMS / "linked_list.minij")
        assert main(["minij", path]) == 0
        out = capsys.readouterr().out
        assert "sum: 55" in out

    def test_minij_custom_entry(self, tmp_path, capsys):
        source = tmp_path / "t.minij"
        source.write_text("def go(): void { print(7); }")
        assert main(["minij", str(source), "--entry", "go"]) == 0
        assert "7" in capsys.readouterr().out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["nope"])

    def test_figures_fast(self, capsys):
        assert main(["figures", "--trials", "1"]) == 0
        out = capsys.readouterr().out
        assert "fig2" in out
        assert "fig5" in out
        assert "geomean" in out

    def test_stats_human(self, capsys):
        assert main(["stats", "--workload", "db"]) == 0
        out = capsys.readouterr().out
        assert "collections:" in out
        assert "pause times:" in out
        assert "live census" in out

    def test_stats_json_has_events_percentiles_census(self, capsys):
        assert main(["stats", "--workload", "pseudojbb", "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["events"], "expected per-collection events"
        event = summary["events"][0]
        assert {"seq", "kind", "pause_s", "mark_s", "objects_freed"} <= set(event)
        for key in ("p50", "p90", "p99"):
            assert key in summary["pause_seconds"]
        assert summary["census"]["classes"], "expected a per-class census"

    def test_stats_prometheus(self, capsys):
        assert main(["stats", "--workload", "db", "--prom"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_gc_pause_seconds histogram" in out
        assert "repro_gc_collections_total" in out

    def test_stats_jsonl_sink(self, tmp_path, capsys):
        path = tmp_path / "events.jsonl"
        assert main(["stats", "--workload", "db", "--jsonl", str(path)]) == 0
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert rows and rows[0]["seq"] == 1

    def test_stats_unknown_workload(self, capsys):
        assert main(["stats", "--workload", "nope"]) == 2
        assert "unknown workload" in capsys.readouterr().out

    def test_figures_json_out(self, tmp_path, capsys):
        path = tmp_path / "BENCH_figures.json"
        assert main(["figures", "--trials", "1", "--json-out", str(path)]) == 0
        payload = json.loads(path.read_text())
        assert payload["schema"] == "repro-bench-figures/1"
        assert payload["trials"] == 1
        assert "fig2" in payload["figures"]
        assert "fig5" in payload["figures"]
        fig2 = payload["figures"]["fig2"]
        assert "geomean_overhead_pct" in fig2
        assert "pseudojbb" in fig2["rows"]


class TestSnapshotCli:
    @pytest.fixture()
    def captured_dir(self, tmp_path, capsys):
        out_dir = tmp_path / "snaps"
        code = main(
            [
                "snapshot", "capture",
                "--workload", "swapleak",
                "--out-dir", str(out_dir),
                "--every-n-gcs", "1",
                "--gc-every-swaps", "16",
                "--swaps", "48",
            ]
        )
        assert code == 0  # no --assertions, so no violations
        capsys.readouterr()
        snapshots = sorted(out_dir.glob("heap-gc*.jsonl"))
        assert len(snapshots) >= 2
        return snapshots

    def test_capture_with_assertions_exits_one(self, tmp_path, capsys):
        code = main(
            [
                "snapshot", "capture",
                "--workload", "swapleak",
                "--out-dir", str(tmp_path / "viol"),
                "--assertions",
                "--swaps", "8",
            ]
        )
        assert code == 1
        assert "GC assertion reports:" in capsys.readouterr().out

    def test_analyze(self, captured_dir, capsys):
        assert main(["snapshot", "analyze", str(captured_dir[-1])]) == 0
        out = capsys.readouterr().out
        assert "SObject" in out
        assert "retains" in out

    def test_diff_ranks_leaking_type_first(self, captured_dir, capsys):
        code = main(
            ["snapshot", "diff", str(captured_dir[0]), str(captured_dir[-1])]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "#1 SObject:" in out

    def test_why(self, captured_dir, capsys):
        snapshot = json.loads(
            (pathlib.Path(str(captured_dir[-1]) + ".idx.json")).read_text()
        )
        addr = next(iter(snapshot["offsets"]))
        assert main(["snapshot", "why", str(captured_dir[-1]), addr]) == 0
        out = capsys.readouterr().out
        assert "Retained size:" in out
        assert "Dominator chain" in out

    def test_why_unreachable_is_usage_error(self, captured_dir, capsys):
        assert main(["snapshot", "why", str(captured_dir[-1]), "0xdead0"]) == 2
        assert "not reachable" in capsys.readouterr().out

    def test_bad_snapshot_file_is_usage_error(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.jsonl"
        bogus.write_text('{"kind": "header", "schema": "other/1"}\n')
        assert main(["snapshot", "analyze", str(bogus)]) == 2
        assert "cannot load snapshot" in capsys.readouterr().out
        assert main(["snapshot", "analyze", str(tmp_path / "missing.jsonl")]) == 2


class TestRunpyInvocation:
    """Satellite: every subcommand is reachable via ``python -m repro``."""

    @pytest.mark.parametrize(
        "argv",
        [
            ["info"],
            ["demo"],
            ["figures", "--help"],
            ["bench", "--help"],
            ["verify", "--help"],
            ["stats", "--help"],
            ["minij", "--help"],
            ["snapshot", "--help"],
            ["snapshot", "capture", "--help"],
            ["snapshot", "analyze", "--help"],
            ["snapshot", "diff", "--help"],
            ["snapshot", "why", "--help"],
        ],
    )
    def test_subcommand_exits_zero(self, argv, capsys):
        assert run_as_module(argv) == 0
        capsys.readouterr()

    def test_help_epilogs_document_exit_codes(self, capsys):
        for argv in (["stats", "--help"], ["snapshot", "diff", "--help"]):
            run_as_module(argv)
            assert "exit codes: 0 = success" in capsys.readouterr().out

    def test_usage_error_exits_two(self, capsys):
        assert run_as_module(["snapshot", "capture", "--every-n-gcs"]) == 2
        capsys.readouterr()

    def test_capture_via_runpy(self, tmp_path, capsys):
        code = run_as_module(
            [
                "snapshot", "capture",
                "--workload", "swapleak",
                "--out-dir", str(tmp_path / "rp"),
                "--every-n-gcs", "1",
                "--gc-every-swaps", "16",
                "--swaps", "32",
            ]
        )
        assert code == 0
        assert "snapshot(s) written" in capsys.readouterr().out
