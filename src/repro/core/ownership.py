"""The ownership phase: checking ``assert-ownedby`` during collection.

§2.5.2 of the paper rejects the general algorithm ("each object being tagged
with all ownees reachable from it [...] prohibitive") in favor of changing
the *order* of tracing:

    "Instead of starting at the roots, we added a new ownership phase to the
    collector that starts tracing from each owner object."

The two-phase algorithm implemented here follows the paper's final design
exactly:

**Phase 1** (this module, run as the engine's ``pre_mark`` hook), for each
registered owner:

* Do **not** mark the owner itself — its liveness is established by the
  normal root scan; if it is unreachable it will be collected this GC.
* If an ownee of the *current* owner is reached: mark it, set its ``OWNED``
  bit, and *truncate* the scan there, queueing the ownee so its subtree is
  scanned after the owner's scan completes (this is how the paper tolerates
  back edges / overlapping data structures).
* If an ownee of a *different* owner is reached: issue an improper-use
  warning (the owner regions are required to be disjoint) and do not mark.
* If a different owner object is reached: mark it and stop — "we will scan
  this owner independently."

**Phase 2** is the normal root scan: the engine's ``on_first_encounter``
hook reports any ownee reached without its ``OWNED`` bit — it was not
reachable from its owner, i.e. it (or the paths to it) outlived the owner.

Everything marked in phase 1 stays marked for phase 2, so owner-reachable
subgraphs are never traced twice ("we are able to check the ownership
assertion without per-object memory overhead or processing any objects
twice") — and, exactly as the paper concedes, objects reachable only from a
*dead* owner survive this collection as floating garbage.

The module also provides the **naive** per-pair reachability check that the
paper rejects, used by the ``abl-own`` ablation benchmark to quantify how
much the two-phase design saves.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.registry import OwnerRecord
from repro.heap import header as hdr
from repro.heap.layout import NULL

if TYPE_CHECKING:
    from repro.core.engine import AssertionEngine
    from repro.gc.base import Collector


def run_ownership_phase(engine: "AssertionEngine", collector: "Collector") -> None:
    """Phase 1: trace from every live owner, truncating at ownees."""
    heap = collector.heap
    registry = engine.registry
    misuse_reported: set[int] = set()
    for record in list(registry.owner_records()):
        owner = heap.maybe(record.owner_address)
        if owner is None or owner.is_freed:
            # Owner already reclaimed by an earlier (minor) collection; the
            # epilogue's owner-death processing handles its ownees.
            continue
        touched, self_reached = _scan_from_owner(
            engine, collector, record, owner, misuse_reported
        )
        if self_reached:
            # The owner is reachable from its own ownee region (a back
            # edge reached it), so this scan just marked the owner from
            # its own record.  If the root scan cannot justify the owner,
            # leaving that mark would make the region self-sustaining —
            # re-marked from its own registry entry every collection,
            # never reclaimed.  The engine re-judges these owners against
            # true root reachability in ``post_mark`` and demotes the
            # marks of the dead ones.  (Found by the small-scope model
            # checker: root-less {owner -> ownee -> owner} shapes leaked
            # permanently.)
            engine.note_self_sustained(record, touched)


def _scan_from_owner(
    engine: "AssertionEngine",
    collector: "Collector",
    record: OwnerRecord,
    owner,
    misuse_reported: set[int],
) -> tuple[list[int], bool]:
    """Scan one owner region; returns (addresses marked, owner-back-edge?)."""
    heap = collector.heap
    stats = collector.stats
    stack: list[int] = []
    ownee_queue: list[int] = []
    owner_address = record.owner_address
    touched: list[int] = []
    self_reached = False

    def reach(address: int) -> None:
        nonlocal self_reached
        if address == NULL:
            return
        obj = heap.get(address)
        stats.header_bit_checks += 1
        status = obj.status
        if status & hdr.MARK_BIT:
            # Second encounter during GC tracing: same unshared check the
            # root scan performs (§2.5.1).
            engine.on_repeat_encounter(obj, None, None)
            return
        if status & hdr.OWNEE_BIT:
            stats.ownee_lookups += 1
            found, probes = record.contains(address)
            stats.ownee_search_probes += probes
            if found:
                # Mark, set owned, truncate: scan its subtree after the
                # owner's scan completes (back-edge tolerance, §2.5.2).
                obj.status |= hdr.MARK_BIT | hdr.OWNED_BIT
                stats.objects_traced += 1
                touched.append(address)
                engine.phase1_visit(obj, record)
                ownee_queue.append(address)
            else:
                # Ownee of a different owner: improper use of the assertion.
                if address not in misuse_reported:
                    misuse_reported.add(address)
                    engine.report_ownership_misuse(obj, record)
            return
        if (status & hdr.OWNER_BIT) and address != owner_address:
            # Another owner: mark it and stop — it gets its own scan.
            obj.status |= hdr.MARK_BIT
            stats.objects_traced += 1
            touched.append(address)
            engine.phase1_visit(obj, record)
            return
        if address == owner_address:
            # Back edge to the current owner.  It must be marked here for
            # soundness (the root scan prunes at phase-1 marks, so this
            # scan may be the only path that reaches it), but the mark is
            # provisional — see run_ownership_phase.
            self_reached = True
        obj.status |= hdr.MARK_BIT
        stats.objects_traced += 1
        touched.append(address)
        engine.phase1_visit(obj, record)
        stack.append(address)

    # Seed with the owner's children; deliberately do NOT mark the owner.
    for child in owner.reference_slots():
        stats.edges_traced += 1
        reach(child)

    while True:
        while stack:
            obj = heap.get(stack.pop())
            for child in obj.reference_slots():
                stats.edges_traced += 1
                reach(child)
        if not ownee_queue:
            break
        # Process deferred ownees: scan the subtree below each one.
        obj = heap.get(ownee_queue.pop())
        for child in obj.reference_slots():
            stats.edges_traced += 1
            reach(child)
    return touched, self_reached


def run_naive_ownership_check(engine: "AssertionEngine", collector: "Collector") -> None:
    """The general algorithm the paper rejects, for the abl-own ablation.

    For every (owner, ownee) pair, run an independent reachability search
    from the owner.  No marking is shared between pairs, so the cost is
    O(pairs x reachable-subgraph) instead of one shared traversal.  Found
    ownees get their ``OWNED`` bit so phase-2 violation detection (and
    reporting) is identical to the two-phase design.
    """
    heap = collector.heap
    stats = collector.stats
    for record in list(engine.registry.owner_records()):
        owner = heap.maybe(record.owner_address)
        if owner is None or owner.is_freed:
            continue
        for ownee_address in record.ownees:
            visited: set[int] = set()
            stack = [c for c in owner.reference_slots() if c != NULL]
            found = False
            while stack:
                address = stack.pop()
                if address in visited:
                    continue
                visited.add(address)
                stats.naive_ownership_visits += 1
                if address == ownee_address:
                    found = True
                    break
                obj = heap.get(address)
                for child in obj.reference_slots():
                    if child != NULL and child not in visited:
                        stack.append(child)
            if found:
                heap.get(ownee_address).status |= hdr.OWNED_BIT
