"""Exhaustive collector verification: model checking, paranoia, coverage.

Three layers, one goal — turn "the collector seems fine" into "every
invariant we can name has been checked against every state we can reach":

* :mod:`repro.verify.modelcheck` — enumerate *all* heap shapes up to a
  small scope and run every collector configuration over each, asserting
  executable Soundness/Completeness against a brute-force oracle;
* :mod:`repro.verify.paranoid` — a full-heap wellformedness walker that
  cross-checks the allocator's own bookkeeping (free lists, chunk tables,
  bump records, zone routing) against the object table;
* :mod:`repro.verify.coverage` — the fault → invariant matrix proving
  each injected fault kind is caught by a named invariant.
"""

from repro.verify.coverage import (
    FAULT_INVARIANTS,
    CoverageMatrix,
    detect_cell,
    detect_tenant_cell,
)
from repro.verify.modelcheck import (
    Cell,
    HeapShape,
    ModelCheckReport,
    default_cells,
    enumerate_shapes,
    run_model_check,
)
from repro.verify.paranoid import iter_spaces, iter_sharded_spaces, paranoid_problems

__all__ = [
    "FAULT_INVARIANTS",
    "CoverageMatrix",
    "detect_cell",
    "detect_tenant_cell",
    "Cell",
    "HeapShape",
    "ModelCheckReport",
    "default_cells",
    "enumerate_shapes",
    "run_model_check",
    "iter_spaces",
    "iter_sharded_spaces",
    "paranoid_problems",
]
