"""Collector statistics: timers and deterministic work counters.

The paper evaluates overhead as wall-clock time (total, mutator, GC) on a
Pentium-M.  A Python simulator's wall clock is noisy at the single-digit-%
level the paper reports, so alongside the timers we keep *work counters*
(objects traced, header-bit checks, binary-search probes, …) that decompose
the overhead deterministically.  Benchmarks report both.
"""

from __future__ import annotations

import time


class GcStats:
    """Counters and timers accumulated across a VM's lifetime."""

    __slots__ = (
        "collections",
        "full_collections",
        "minor_collections",
        "gc_seconds",
        "ownership_phase_seconds",
        "mark_seconds",
        "sweep_seconds",
        "objects_traced",
        "edges_traced",
        "objects_swept",
        "objects_freed",
        "bytes_freed",
        "objects_promoted",
        "header_bit_checks",
        "instance_count_increments",
        "ownee_lookups",
        "ownee_search_probes",
        "ownees_checked",
        "path_entries_tagged",
        "assertion_checks",
        "violations_detected",
        "naive_ownership_visits",
        "weak_refs_cleared",
    )

    def __init__(self) -> None:
        for field in self.__slots__:
            setattr(self, field, 0)
        self.gc_seconds = 0.0
        self.ownership_phase_seconds = 0.0
        self.mark_seconds = 0.0
        self.sweep_seconds = 0.0

    def snapshot(self) -> dict:
        return {field: getattr(self, field) for field in self.__slots__}

    def merged_with(self, other: "GcStats") -> "GcStats":
        out = GcStats()
        for field in self.__slots__:
            setattr(out, field, getattr(self, field) + getattr(other, field))
        return out

    def __repr__(self) -> str:
        return (
            f"<GcStats collections={self.collections} "
            f"gc={self.gc_seconds:.4f}s traced={self.objects_traced}>"
        )


class PhaseTimer:
    """Context manager accumulating elapsed seconds into a stats attribute."""

    __slots__ = ("stats", "attr", "_start")

    def __init__(self, stats: GcStats, attr: str):
        self.stats = stats
        self.attr = attr
        self._start = 0.0

    def __enter__(self) -> "PhaseTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        elapsed = time.perf_counter() - self._start
        setattr(self.stats, self.attr, getattr(self.stats, self.attr) + elapsed)
