"""End-to-end request tracing across the multi-tenant service (tier 1).

What this file pins:

* trace-context propagation — W3C-traceparent-shaped ids survive the
  stamp → encode → FrameDecoder → from_frame round trip, and unknown
  trace-ish keys from newer clients pass through untouched;
* sequence numbering — every outbound session frame carries a monotonic
  ``seq`` assigned *before* shedding, so the client-side
  :class:`~repro.service.wire.SequenceTracker` counts exactly the shed
  frames;
* mono delivery-lag measurement — the SLO scores perf_counter span
  stamps; wall-clock time is display-only and cannot skew the budget;
* exemplars — a firing delivery-lag alert names the trace_id of a bad
  observation;
* the served-with-tracing path is counter-identical to a direct VM run
  (the zero-overhead-when-off *and* non-perturbation-when-on contract);
* the merged export validates as a Chrome trace and re-parents every
  tenant-track GC span under the owning request span.
"""

from __future__ import annotations

import json

import pytest

from repro.runtime.vm import VirtualMachine
from repro.service import (
    AssertionService,
    FrameDecoder,
    SequenceTracker,
    ServiceClient,
    ServiceConfig,
    TenantSession,
    encode_frame,
    resolve_workload,
)
from repro.tracing.distributed import (
    TENANT_TRACK_BASE,
    DistributedTracer,
    TraceContext,
    merge_service_trace,
    render_request_report,
    request_rows,
)
from repro.tracing.export import TRACE_PID, validate_chrome_trace


def _run_direct(workload: str = "swapleak", overrides=None):
    heap_bytes, runner = resolve_workload(workload, overrides=overrides or {})
    vm = VirtualMachine(
        heap_bytes=heap_bytes, assertions=True, telemetry=True,
        hardened=True, max_heap_bytes=heap_bytes * 2,
    )
    runner(vm)
    vm.collector.sweep_all()
    return vm.stats.snapshot()["counters"], vm.violation_lines()


# -- trace context ----------------------------------------------------------------------


class TestTraceContext:
    def test_new_ids_are_w3c_shaped(self):
        ctx = TraceContext.new()
        assert len(ctx.trace_id) == 32 and int(ctx.trace_id, 16) >= 0
        assert len(ctx.span_id) == 16 and int(ctx.span_id, 16) >= 0

    def test_seeded_rng_is_deterministic(self):
        import random

        a = TraceContext.new(random.Random(7))
        b = TraceContext.new(random.Random(7))
        assert a == b

    def test_child_shares_trace_and_parents_under_origin(self):
        root = TraceContext.new()
        child = root.child()
        assert child.trace_id == root.trace_id
        assert child.parent_span_id == root.span_id
        assert child.span_id != root.span_id

    def test_traceparent_round_trip(self):
        ctx = TraceContext.new()
        parsed = TraceContext.from_traceparent(ctx.to_traceparent())
        assert parsed.trace_id == ctx.trace_id
        assert parsed.span_id == ctx.span_id

    def test_malformed_traceparent_is_none(self):
        assert TraceContext.from_traceparent("hello") is None
        assert TraceContext.from_traceparent("00-xyz-abc-01") is None

    def test_stamp_and_from_frame_round_trip(self):
        ctx = TraceContext.new()
        frame = ctx.stamp({"type": "open", "tenant": "acme"})
        recovered = TraceContext.from_frame(frame)
        assert recovered.trace_id == ctx.trace_id
        # from_frame recovers the *sender's position*: its span is the
        # frame's parent_span_id, which the receiver parents under.
        assert recovered.span_id == ctx.span_id

    def test_unstamped_frame_is_none(self):
        assert TraceContext.from_frame({"type": "open"}) is None
        assert TraceContext.from_frame({"trace_id": 42}) is None


class TestWireRoundTrip:
    def test_stamped_open_survives_the_decoder(self):
        ctx = TraceContext.new()
        frame = ctx.stamp({"type": "open", "tenant": "acme", "workload": "swapleak"})
        decoder = FrameDecoder()
        (decoded,) = decoder.feed(encode_frame(frame))
        assert decoded["trace_id"] == ctx.trace_id
        assert decoded["parent_span_id"] == ctx.span_id
        assert TraceContext.from_frame(decoded) == TraceContext.from_frame(frame)

    def test_unknown_trace_keys_from_future_clients_pass_through(self):
        frame = {
            "type": "open", "trace_id": "ab" * 16, "parent_span_id": "cd" * 8,
            "trace_flags": "01", "tracestate": "vendor=opaque",
        }
        decoder = FrameDecoder()
        (decoded,) = decoder.feed(encode_frame(frame))
        assert decoded == frame


# -- sequence numbers and gap detection -------------------------------------------------


class TestSequenceNumbers:
    def test_tracker_counts_gaps_per_session(self):
        tracker = SequenceTracker()
        assert tracker.observe({"session": "s1", "seq": 0}) == 0
        assert tracker.observe({"session": "s1", "seq": 1}) == 0
        assert tracker.observe({"session": "s1", "seq": 4}) == 2
        assert tracker.observe({"session": "s2", "seq": 3}) == 3  # 0..2 shed
        assert tracker.gaps == {"s1": 2, "s2": 3}
        assert tracker.total_gaps == 5

    def test_frames_without_seq_are_ignored(self):
        tracker = SequenceTracker()
        assert tracker.observe({"type": "welcome"}) == 0
        assert tracker.observe({"session": "s1", "type": "violation"}) == 0
        assert tracker.total_gaps == 0 and tracker.frames_seen == 0

    def test_session_numbers_every_frame_before_shedding(self):
        """Shed gc-event frames consume seqs: delivered seq gaps == drops."""
        heap_bytes, runner = resolve_workload("swapleak", overrides={"swaps": 48})
        session = TenantSession("s1", "acme", heap_bytes, queue_frames=2)
        session.run(runner)
        delivered = [frame for frame, _t in session.queue.drain()]
        assert all(isinstance(frame.get("seq"), int) for frame in delivered)
        tracker = SequenceTracker()
        for frame in delivered:
            tracker.observe(frame)
        assert session.queue.dropped_frames > 0
        assert tracker.total_gaps == session.queue.dropped_frames
        # seq space = delivered + shed, contiguous from 0.
        assert session.out_seq == len(delivered) + session.queue.dropped_frames

    def test_client_observes_shed_frames_end_to_end(self):
        config = ServiceConfig(http_port=None, outbound_queue_frames=2)
        with AssertionService(config) as service:
            with ServiceClient("127.0.0.1", service.port) as client:
                client.hello()
                opened = client.open("acme", "swapleak", overrides={"swaps": 64})
                assert opened["type"] == "opened"
                streamed: list = []
                result = client.submit(opened["session"], collect=streamed)
                closed = client.close_session(opened["session"], collect=streamed)
                assert result["outcome"] == "completed"
                # Client-side gap count equals the server's shed count.
                assert client.frames_missed == closed["dropped_frames"]


# -- mono-stamp delivery lag + exemplar alerts ------------------------------------------


class TestMonoDeliveryLag:
    def test_lag_is_mono_difference_not_wall_clock(self):
        from repro.service.metrics import ServiceMetrics

        metrics = ServiceMetrics(delivery_lag_slo_s=0.200)
        # A wall-clock step of a million seconds must not register: only
        # the perf_counter span (1ms, within SLO) is measured.
        metrics.observe_delivery_lag(500.0, 500.001, wall_time=1e6)
        assert metrics.slo_status()["healthy"] is True
        assert metrics.delivery_lag.count == 1
        assert metrics.delivery_lag.percentile(50) < 0.1

    def test_backwards_mono_span_clamps_to_zero(self):
        from repro.service.metrics import ServiceMetrics

        metrics = ServiceMetrics()
        metrics.observe_delivery_lag(500.0, 499.0, wall_time=0.0)
        assert metrics.slo_status()["healthy"] is True

    def test_firing_alert_carries_exemplar_trace_id(self):
        from repro.service.metrics import ServiceMetrics

        metrics = ServiceMetrics(delivery_lag_slo_s=1e-9)
        for i in range(100):
            metrics.observe_delivery_lag(
                0.0, 1.0, wall_time=float(i), trace_id=f"{i:032x}"
            )
        firing = [a for a in metrics.alerts if a.state == "firing"]
        assert firing and firing[0].exemplar is not None
        assert len(firing[0].exemplar) == 32
        assert "exemplar=" in firing[0].render()
        status = metrics.slo_status()
        delivery = [
            o for o in status["objectives"]
            if o["name"] == "violation-delivery-lag"
        ][0]
        assert delivery["exemplar"] is not None

    def test_resolved_alert_has_no_exemplar(self):
        from repro.monitor.slo import BurnRateRule, SloObjective

        rule = BurnRateRule(
            SloObjective("x", "d", budget=0.01, probe=lambda h, e: True),
            long_window=10, short_window=4, clear_good=4,
        )
        alerts = []
        for i in range(10):
            alert = rule.observe(False, seq=i, wall_time=0.0, exemplar="t1")
            if alert:
                alerts.append(alert)
        for i in range(10, 20):
            alert = rule.observe(True, seq=i, wall_time=0.0)
            if alert:
                alerts.append(alert)
        states = [a.state for a in alerts]
        assert states == ["firing", "resolved"]
        assert alerts[0].exemplar == "t1"
        assert alerts[1].exemplar is None


# -- the traced service, end to end -----------------------------------------------------


def _traced_session(service: AssertionService, tenant: str, ctx: TraceContext):
    with ServiceClient("127.0.0.1", service.port, trace=ctx) as client:
        client.hello()
        opened = client.open(tenant, "swapleak", overrides={"swaps": 32})
        assert opened["type"] == "opened", opened
        assert opened["trace_id"] == ctx.trace_id
        streamed: list = []
        result = client.submit(opened["session"], collect=streamed)
        assert result["type"] == "result", result
        client.close_session(opened["session"], collect=streamed)
    return opened, result, streamed


class TestDistributedService:
    def test_tracing_off_has_no_tracer_anywhere(self):
        with AssertionService(ServiceConfig(http_port=None)) as service:
            assert service.tracer is None
            with ServiceClient("127.0.0.1", service.port) as client:
                client.hello()
                opened = client.open("acme", "swapleak", overrides={"swaps": 8})
                result = client.submit(opened["session"])
                assert "trace_id" not in opened
                assert "trace_id" not in result
                client.close_session(opened["session"])
            assert service.traced_sessions == []

    def test_traced_run_is_counter_identical_to_direct(self):
        overrides = {"swaps": 32}
        direct_counters, direct_violations = _run_direct("swapleak", overrides)
        config = ServiceConfig(http_port=None, tracing=True)
        with AssertionService(config) as service:
            with ServiceClient("127.0.0.1", service.port, trace=True) as client:
                client.hello()
                opened = client.open("acme", "swapleak", overrides=overrides)
                result = client.submit(opened["session"])
                client.close_session(opened["session"])
        assert result["counters"] == direct_counters
        assert result["violations"] == direct_violations

    def test_request_lifecycle_spans_and_reparenting(self):
        config = ServiceConfig(http_port=None, tracing=True)
        with AssertionService(config) as service:
            ctx_a, ctx_b = TraceContext.new(), TraceContext.new()
            _traced_session(service, "tenant-a", ctx_a)
            _traced_session(service, "tenant-b", ctx_b)
            payload = service.merged_trace_payload()
            rows = request_rows(service.tracer)

        assert validate_chrome_trace(payload) == []

        # Two requests, each parented under its client's context and
        # carrying the full lifecycle breakdown.
        assert {row["trace_id"] for row in rows} == {
            ctx_a.trace_id, ctx_b.trace_id,
        }
        for row in rows:
            assert row["outcome"] == "completed"
            assert row["execution_s"] > 0
            assert row["violations_delivered"] > 0
            assert row["max_delivery_lag_s"] > 0

        events = payload["traceEvents"]
        request_spans = {
            e["args"]["span_id"]: e["args"]["trace_id"]
            for e in events
            if e.get("name") == "request" and e["pid"] == TRACE_PID
        }
        assert len(request_spans) == 2

        # Re-parenting invariant: every tenant track's span stream hangs
        # off a request span — top-level spans carry explicit parent
        # args, nested spans inherit by B/E containment.
        tenant_pids = sorted({
            e["pid"] for e in events if e["pid"] >= TENANT_TRACK_BASE
        })
        assert len(tenant_pids) == 2
        for pid in tenant_pids:
            track = [e for e in events if e["pid"] == pid and e["ph"] != "M"]
            assert track, f"tenant pid {pid} has no events"
            depth = 0
            saw_top_level_span = False
            saw_gc_pause = False
            for event in track:
                if event["ph"] == "B":
                    if depth == 0:
                        saw_top_level_span = True
                        parent = event["args"]["parent_span_id"]
                        assert parent in request_spans
                        assert event["args"]["trace_id"] == request_spans[parent]
                    if event["name"] == "pause":
                        saw_gc_pause = True
                        assert depth > 0  # nested under collect
                    depth += 1
                elif event["ph"] == "E":
                    depth -= 1
                elif event["ph"] == "i":
                    # Instants (assertion lifecycle) always carry linkage.
                    assert event["args"]["parent_span_id"] in request_spans
            assert saw_top_level_span and saw_gc_pause

        # Assertion-violation instants exist on tenant tracks and share
        # the clients' trace ids.
        instants = [
            e for e in events
            if e["ph"] == "i" and e["pid"] >= TENANT_TRACK_BASE
            and e.get("cat") == "assertion"
        ]
        assert instants
        assert {e["args"]["trace_id"] for e in instants} <= {
            ctx_a.trace_id, ctx_b.trace_id,
        }

    def test_rejected_open_still_gets_a_request_span(self):
        config = ServiceConfig(
            http_port=None, tracing=True, heap_budget_bytes=1,
        )
        with AssertionService(config) as service:
            with ServiceClient("127.0.0.1", service.port, trace=True) as client:
                client.hello()
                rejected = client.open("acme", "swapleak")
                assert rejected["type"] == "rejected"
                assert rejected["trace_id"] == client.trace.trace_id
            rows = request_rows(service.tracer)
        assert len(rows) == 1
        assert rows[0]["outcome"] == "rejected"
        assert rows[0]["trace_id"] is not None

    def test_unstamped_client_gets_server_rooted_trace(self):
        config = ServiceConfig(http_port=None, tracing=True)
        with AssertionService(config) as service:
            with ServiceClient("127.0.0.1", service.port) as client:
                client.hello()
                opened = client.open("acme", "swapleak", overrides={"swaps": 8})
                assert len(opened["trace_id"]) == 32
                client.submit(opened["session"])
                client.close_session(opened["session"])
            assert validate_chrome_trace(service.merged_trace_payload()) == []

    def test_render_request_report_is_printable(self):
        tracer = DistributedTracer()
        assert render_request_report(request_rows(tracer)) == "no requests traced"


class TestMergeRobustness:
    def test_open_spans_are_closed_at_the_horizon(self):
        tracer = DistributedTracer()
        lane = tracer.lane("k", "request s1 (acme)")
        span = tracer.begin(
            "request", start=tracer.t0 + 10.0, lane=lane, trace_id="ab" * 16,
        )
        tracer.record(
            "admission_wait", tracer.t0 + 10.0, tracer.t0 + 10.5, lane=lane,
            trace_id="ab" * 16, parent_span_id=span,
        )
        payload = merge_service_trace(tracer, [])
        assert validate_chrome_trace(payload) == []
        request = [
            e for e in payload["traceEvents"] if e.get("name") == "request"
        ][0]
        assert request["dur"] >= 0

    def test_abandoned_tenant_spans_do_not_break_validation(self):
        from repro.tracing.spans import SpanTracer

        tenant_tracer = SpanTracer()
        tenant_tracer.begin("collect", cat="gc")
        tenant_tracer.begin("pause", cat="gc")
        tenant_tracer.end()
        # "collect" left open: the merge drops the unmatched pair.
        record = {
            "tenant": "acme", "session": "s1", "tracer": tenant_tracer,
            "trace_id": "ab" * 16, "request_span_id": "cd" * 8,
        }
        payload = merge_service_trace(DistributedTracer(), [record])
        assert validate_chrome_trace(payload) == []
        names = [
            e["name"] for e in payload["traceEvents"]
            if e["ph"] in ("B", "E")
        ]
        assert "pause" in names and "collect" not in names

    def test_merged_payload_is_json_serializable(self):
        config = ServiceConfig(http_port=None, tracing=True)
        with AssertionService(config) as service:
            _traced_session(service, "acme", TraceContext.new())
            payload = service.merged_trace_payload(meta={"run": "test"})
        blob = json.loads(json.dumps(payload))
        assert blob["otherData"]["schema"] == "repro-dtrace/1"
        assert blob["otherData"]["run"] == "test"


# -- the loadgen acceptance shape -------------------------------------------------------


class TestLoadgenTrace:
    def test_trace_out_requires_self_hosting(self):
        from repro.errors import ConfigurationError
        from repro.service import LoadgenConfig, run_loadgen

        config = LoadgenConfig(
            sessions=1, port=12345, trace_out="/tmp/never-written.json",
        )
        with pytest.raises(ConfigurationError):
            run_loadgen(config)

    def test_multi_tenant_merged_export_acceptance(self, tmp_path):
        """The PR's acceptance artifact: >= 2 tenants' request spans on
        distinct tracks, nested GC pauses + violation instants, shared
        client trace ids, and a fired alert whose exemplar is in the
        export."""
        from repro.service import LoadgenConfig, run_loadgen

        out = str(tmp_path / "dtrace.json")
        config = LoadgenConfig(
            sessions=4, rate=400.0, seed=0,
            mix=(("swapleak", 1),),
            trace_out=out,
            delivery_lag_slo_s=1e-9,
        )
        report = run_loadgen(config)
        assert report.ok, report.render()
        assert report.trace["path"] == out
        assert validate_chrome_trace(out) == []

        with open(out) as handle:
            payload = json.load(handle)
        events = payload["traceEvents"]
        requests = [e for e in events if e.get("name") == "request"]
        client_trace_ids = {row["trace_id"] for row in report.requests}
        assert len(requests) == 4
        assert {e["args"]["trace_id"] for e in requests} == client_trace_ids

        tenant_pids = {e["pid"] for e in events if e["pid"] >= TENANT_TRACK_BASE}
        assert len(tenant_pids) >= 2
        pauses = {
            e["pid"] for e in events
            if e["ph"] == "B" and e["name"] == "pause"
            and e["pid"] >= TENANT_TRACK_BASE
        }
        violations = {
            e["pid"] for e in events
            if e["ph"] == "i" and e.get("cat") == "assertion"
            and e["pid"] >= TENANT_TRACK_BASE
        }
        assert len(pauses & violations) >= 2  # >= 2 tenants with both

        # The forced delivery-lag alert fired and its exemplar is a
        # trace id present in the export.
        firing = [
            a for a in report.alerts
            if a["objective"] == "violation-delivery-lag"
            and a["state"] == "firing"
        ]
        assert firing and firing[0]["exemplar"] in client_trace_ids

    def test_untraced_loadgen_report_has_no_trace_artifacts(self):
        from repro.service import LoadgenConfig, run_loadgen

        report = run_loadgen(LoadgenConfig(
            sessions=2, rate=400.0, seed=1, mix=(("swapleak", 1),),
        ))
        assert report.ok
        assert report.trace is None
        assert report.requests == []
