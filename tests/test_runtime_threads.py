"""Threads, frames, statics: root enumeration, regions, forwarding."""

import pytest

from repro.errors import RegionError
from repro.heap.layout import NULL
from repro.runtime.threads import Frame, MutatorThread, StaticRoots


@pytest.fixture
def thread():
    return MutatorThread(0, "t0")


class TestFrames:
    def test_push_pop(self, thread):
        frame = thread.push_frame("m")
        assert thread.current_frame is frame
        assert thread.pop_frame() is frame

    def test_pop_empty_raises(self, thread):
        with pytest.raises(RegionError):
            thread.pop_frame()

    def test_current_frame_empty_raises(self, thread):
        with pytest.raises(RegionError):
            thread.current_frame

    def test_ref_locals_are_roots(self, thread):
        frame = thread.push_frame("m")
        frame.set_ref("x", 0x1000)
        roots = dict(thread.root_entries())
        assert 0x1000 in roots.values()
        descriptions = list(roots.keys())
        assert any("x" in d and "m" in d for d in descriptions)

    def test_null_refs_not_enumerated(self, thread):
        frame = thread.push_frame("m")
        frame.set_ref("x", NULL)
        assert list(thread.root_entries()) == []

    def test_clear_ref_keeps_slot_nulled(self, thread):
        frame = thread.push_frame("m")
        frame.set_ref("x", 0x1000)
        frame.clear_ref("x")
        assert frame.get_ref("x") == NULL
        assert "x" in frame.refs

    def test_drop_ref_removes_slot(self, thread):
        frame = thread.push_frame("m")
        frame.set_ref("x", 0x1000)
        frame.drop_ref("x")
        assert "x" not in frame.refs

    def test_scalars_are_not_roots(self, thread):
        frame = thread.push_frame("m")
        frame.set_scalar("n", 0x1000)  # an int that looks like an address
        assert list(thread.root_entries()) == []

    def test_forwarding_rewrites_locals(self, thread):
        frame = thread.push_frame("m")
        frame.set_ref("x", 0x1000)
        frame.apply_forwarding({0x1000: 0x2000})
        assert frame.get_ref("x") == 0x2000

    def test_null_out(self, thread):
        frame = thread.push_frame("m")
        frame.set_ref("x", 0x1000)
        frame.set_ref("y", 0x2000)
        thread.null_out({0x1000})
        assert frame.get_ref("x") == NULL
        assert frame.get_ref("y") == 0x2000


class TestStatics:
    def test_roots_and_description(self):
        statics = StaticRoots()
        statics.set_ref("cache", 0x3000)
        roots = list(statics.root_entries())
        assert roots == [("static 'cache'", 0x3000)]

    def test_forwarding(self):
        statics = StaticRoots()
        statics.set_ref("a", 0x1000)
        statics.apply_forwarding({0x1000: 0x2000, 0x9999: 0x1})
        assert statics.get_ref("a") == 0x2000

    def test_get_missing_is_null(self):
        assert StaticRoots().get_ref("nope") == NULL


class TestRegions:
    """The per-thread §2.3.2 region flag and allocation queue."""

    def test_begin_sets_flag(self, thread):
        thread.begin_region("r")
        assert thread.in_region
        assert thread.region_label == "r"

    def test_nested_region_rejected(self, thread):
        thread.begin_region()
        with pytest.raises(RegionError):
            thread.begin_region()

    def test_end_without_begin_rejected(self, thread):
        with pytest.raises(RegionError):
            thread.end_region()

    def test_allocations_recorded_only_in_region(self, thread):
        thread.note_allocation(0x1000)
        thread.begin_region()
        thread.note_allocation(0x2000)
        thread.note_allocation(0x3000)
        queue = thread.end_region()
        assert queue == [0x2000, 0x3000]

    def test_end_resets_state(self, thread):
        thread.begin_region()
        thread.note_allocation(0x2000)
        thread.end_region()
        assert not thread.in_region
        assert thread.region_queue == []

    def test_region_queue_is_not_a_root(self, thread):
        thread.begin_region()
        thread.note_allocation(0x2000)
        assert list(thread.root_entries()) == []

    def test_purge_freed_drops_queue_entries(self, thread):
        thread.begin_region()
        thread.note_allocation(0x2000)
        thread.note_allocation(0x3000)
        thread.purge_freed({0x2000})
        assert thread.region_queue == [0x3000]

    def test_forwarding_rewrites_queue(self, thread):
        thread.begin_region()
        thread.note_allocation(0x2000)
        thread.apply_forwarding({0x2000: 0x4000})
        assert thread.region_queue == [0x4000]
