"""Tracing collectors: MarkSweep (the paper's), SemiSpace, generational."""

from repro.gc.base import Collector
from repro.gc.generational import GenerationalCollector
from repro.gc.marksweep import MarkSweepCollector
from repro.gc.semispace import SemiSpaceCollector
from repro.gc.stats import GcStats, PhaseTimer
from repro.gc.tracer import Tracer
from repro.gc.verify import HeapVerificationError, verify_heap

__all__ = [
    "HeapVerificationError",
    "verify_heap",
    "Collector",
    "GenerationalCollector",
    "MarkSweepCollector",
    "SemiSpaceCollector",
    "GcStats",
    "PhaseTimer",
    "Tracer",
]
