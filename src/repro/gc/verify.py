"""Heap integrity verification.

A debugging/testing aid that walks the entire VM state and checks the
invariants every collector must preserve.  Used by the property-based tests
after random mutation/GC sequences, and available to users as
``verify_heap(vm)`` when debugging collector extensions.

Checked invariants:

* every reference slot holds NULL or the address of a live object;
* every root (static, frame local, handle scope) points at a live object;
* no live object carries the MARK, OWNED, or FREED bits between collections;
* object addresses agree with the heap table and are word aligned;
* space accounting covers at least the live bytes;
* assertion-registry addresses (dead sites, unshared sites, owners, ownees)
  all refer to live objects — a stale entry would corrupt checking after
  address reuse;
* region queues only contain live addresses.

With ``paranoid=True`` the walk additionally runs the wellformedness
checks in :mod:`repro.verify.paranoid` (free-list/live disjointness,
orphaned allocator cells, zone-routing agreement, quarantine fencing,
header flag hygiene) — the ``debug.c``-style full-heap walker.

.. warning::
   By default ``verify_heap`` *finishes deferred lazy-sweep work*
   (``collector.sweep_all()``) so exactness invariants are judged against
   an up-to-date heap: that mutates sweep-debt, frees pending garbage,
   and bumps the freed counters.  Pass ``finish_lazy_sweep=False`` for a
   strictly read-only verification (used by the per-GC ``--paranoid``
   hooks and the chaos detection probe); in that mode pending garbage is
   skipped via :meth:`pending_garbage_predicate` and the MARK/OWNED
   staleness checks are suppressed while sweep debt is outstanding
   (survivors legitimately carry MARK bits until their chunk sweeps).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import HeapCorruption, QuarantineOverflowError
from repro.heap import header as hdr
from repro.heap.layout import NULL, is_aligned

if TYPE_CHECKING:
    from repro.runtime.vm import VirtualMachine


class HeapVerificationError(HeapCorruption):
    """Raised when :func:`verify_heap` finds a broken invariant."""


def _fail(problems: list[str], message: str) -> None:
    problems.append(message)


def verify_heap(
    vm: "VirtualMachine",
    raise_on_error: bool = True,
    *,
    finish_lazy_sweep: bool = True,
    paranoid: bool = False,
) -> list[str]:
    """Verify all heap/VM invariants; returns the list of problems found.

    ``finish_lazy_sweep=True`` (the default) repays outstanding lazy-sweep
    debt first — a documented **mutation** of collector state (see the
    module docstring).  ``finish_lazy_sweep=False`` verifies read-only,
    skipping pending garbage and the bit-staleness checks that only hold
    on an exact heap.  ``paranoid=True`` appends the allocator-structure
    wellformedness walk from :mod:`repro.verify.paranoid`.
    """
    problems: list[str] = []
    heap = vm.heap

    pending = None
    exact = True
    if finish_lazy_sweep:
        # Lazy sweep modes defer reclamation; finish it so the invariants
        # below (no MARK bits between collections, registry liveness,
        # accounting) are judged against an exact heap.
        vm.collector.sweep_all()
    elif vm.collector.sweep_debt() > 0:
        pending = vm.collector.pending_garbage_predicate()
        exact = False

    # -- object table and headers ------------------------------------------------
    for obj in heap:
        if pending is not None and pending(obj):
            continue  # dead-but-unswept: exempt from the exactness checks
        if not is_aligned(obj.address):
            _fail(problems, f"{obj!r}: unaligned address")
        if heap.maybe(obj.address) is not obj:
            _fail(problems, f"{obj!r}: table entry mismatch")
        if obj.status & hdr.FREED_BIT:
            _fail(problems, f"{obj!r}: live object carries FREED bit")
        if exact and obj.status & hdr.MARK_BIT:
            _fail(problems, f"{obj!r}: MARK bit set outside a collection")
        if exact and obj.status & hdr.OWNED_BIT:
            _fail(problems, f"{obj!r}: OWNED bit set outside a collection")
        for ref in obj.reference_slots():
            if ref != NULL and not heap.contains(ref):
                _fail(problems, f"{obj!r}: dangling reference {ref:#x}")
        for idx in obj.weak_slot_indices():
            weak = obj.slots[idx]
            if weak != NULL and not heap.contains(weak):
                _fail(problems, f"{obj!r}: dangling weak reference {weak:#x}")

    # -- roots ----------------------------------------------------------------------
    for description, address in vm.root_entries():
        if not heap.contains(address):
            _fail(problems, f"root {description}: dangling address {address:#x}")

    # -- region queues ----------------------------------------------------------------
    for thread in vm.threads:
        for address in thread.region_queue:
            if not heap.contains(address):
                _fail(
                    problems,
                    f"thread {thread.name!r}: region queue holds dead {address:#x}",
                )

    # -- space accounting --------------------------------------------------------------
    live_bytes = heap.live_bytes()
    in_use = vm.collector.bytes_in_use()
    if in_use < live_bytes:
        _fail(
            problems,
            f"space accounting: {in_use} bytes in use < {live_bytes} live bytes",
        )

    # -- assertion registry ---------------------------------------------------------------
    engine = vm.engine
    if engine is not None:
        registry = engine.registry
        for address in registry.dead_sites:
            if not heap.contains(address):
                _fail(problems, f"registry: dead site for dead address {address:#x}")
        for address in registry.unshared_sites:
            if not heap.contains(address):
                _fail(problems, f"registry: unshared site for dead address {address:#x}")
        for owner_address, record in registry.owners.items():
            if not heap.contains(owner_address):
                _fail(problems, f"registry: owner record for dead {owner_address:#x}")
            if record.ownees != sorted(record.ownees):
                _fail(problems, f"registry: ownee array unsorted for {owner_address:#x}")
            for ownee_address in record.ownees:
                if not heap.contains(ownee_address):
                    _fail(
                        problems,
                        f"registry: ownee {ownee_address:#x} of {owner_address:#x} is dead",
                    )
                if registry.ownee_owner.get(ownee_address) != owner_address:
                    _fail(
                        problems,
                        f"registry: reverse index disagrees for {ownee_address:#x}",
                    )
        for ownee_address, owner_address in registry.ownee_owner.items():
            record = registry.owners.get(owner_address)
            if record is None or not record.contains(ownee_address)[0]:
                _fail(
                    problems,
                    f"registry: ownee_owner entry {ownee_address:#x} not in owner record",
                )

    # -- paranoid allocator-structure walk ------------------------------------------------
    if paranoid:
        from repro.verify.paranoid import paranoid_problems

        problems.extend(paranoid_problems(vm))

    if problems and raise_on_error:
        raise HeapVerificationError(
            f"{len(problems)} heap invariant violation(s):\n  " + "\n  ".join(problems),
            problems=problems,
        )
    return problems


#: Default bound on the corruption quarantine.  Each fenced address leaks
#: its backing cell on purpose; 1024 of them is far beyond what any seeded
#: chaos schedule produces, so reaching it means unrecoverable degradation.
DEFAULT_QUARANTINE_CAPACITY = 1024


class Quarantine:
    """Fence for addresses the sentinel has declared corrupt.

    A fenced address is dead to the allocator: its table entry is evicted,
    its free-list cell (if any) is withheld from reuse, and later sweeps
    skip it.  The backing cell is deliberately leaked — reusing memory the
    collector no longer trusts is how a recoverable fault becomes silent
    corruption.

    Capacity is bounded: the quarantine trades cells for integrity, and an
    unbounded fence set under a sustained corruption storm is itself a
    leak.  :meth:`fence` raises :class:`QuarantineOverflowError` once
    ``capacity`` addresses are held.
    """

    __slots__ = ("fenced", "capacity")

    def __init__(self, capacity: int = DEFAULT_QUARANTINE_CAPACITY) -> None:
        self.fenced: set[int] = set()
        self.capacity = capacity

    def fence(self, address: int) -> bool:
        """Fence an address; returns False if it was already fenced.

        Raises :class:`QuarantineOverflowError` when the bounded capacity
        is exhausted — containment has failed and the heap should be
        considered lost, not repaired further.
        """
        if address in self.fenced:
            return False
        if len(self.fenced) >= self.capacity:
            raise QuarantineOverflowError(
                f"quarantine overflow: {self.capacity} addresses already "
                f"fenced; refusing {address:#x}",
                problems=[f"quarantine at capacity ({self.capacity})"],
                fenced=self.fenced,
            )
        self.fenced.add(address)
        return True

    @property
    def remaining(self) -> int:
        return self.capacity - len(self.fenced)

    def __contains__(self, address: int) -> bool:
        return address in self.fenced

    def __len__(self) -> int:
        return len(self.fenced)


class SentinelReport:
    """What one sentinel scan found and repaired."""

    __slots__ = (
        "phase",
        "problems",
        "objects_quarantined",
        "refs_fenced",
        "roots_fenced",
        "stale_bits_cleared",
        "registry_scrubbed",
        "freelist_scrubbed",
    )

    def __init__(self, phase: str):
        self.phase = phase
        self.problems: list[str] = []
        self.objects_quarantined = 0
        self.refs_fenced = 0
        self.roots_fenced = 0
        self.stale_bits_cleared = 0
        self.registry_scrubbed = 0
        self.freelist_scrubbed = 0

    @property
    def clean(self) -> bool:
        return not self.problems

    def repairs(self) -> int:
        return (
            self.objects_quarantined
            + self.refs_fenced
            + self.roots_fenced
            + self.stale_bits_cleared
            + self.registry_scrubbed
            + self.freelist_scrubbed
        )

    def render(self) -> str:
        head = f"sentinel[{self.phase}]: {len(self.problems)} problem(s), {self.repairs()} repair(s)"
        return head + "".join(f"\n  {p}" for p in self.problems)


def run_sentinel(
    vm: "VirtualMachine",
    quarantine: Quarantine,
    *,
    phase: str = "pre-gc",
    expect_clear_bits: bool = True,
    scrub_freelists: bool = False,
) -> SentinelReport:
    """Repair scan behind the hardened collectors' pre/post-GC sentinel.

    Unlike :func:`verify_heap` (detect and raise), this *fixes* what it can:
    freed-bit zombies are evicted and fenced, stale MARK/OWNED bits cleared,
    dangling strong/weak slots and roots nulled, region queues purged, and
    assertion-registry entries for vanished addresses scrubbed.  The caller
    is responsible for only asking for ``expect_clear_bits`` when lazy sweep
    debt has been repaid (survivors legitimately carry MARK bits until their
    chunk is swept).

    ``scrub_freelists=True`` (enabled when the collector runs paranoid)
    adds a fifth pass over the allocator structures themselves: free-list
    cells that alias live objects or fenced addresses are withheld and
    fenced, and orphan bump-space records with no table entry are dropped
    — so the paranoid walker that follows validates a repaired heap.
    """
    report = SentinelReport(phase)
    heap = vm.heap

    # Pass 1: headers + zombies.  Snapshot the table first — eviction mutates it.
    zombies = []
    for obj in list(heap):
        if obj.status & hdr.FREED_BIT:
            report.problems.append(f"{obj!r}: freed object still in address table")
            zombies.append(obj)
            continue
        if expect_clear_bits and obj.status & (hdr.MARK_BIT | hdr.OWNED_BIT):
            report.problems.append(f"{obj!r}: stale MARK/OWNED bits outside a collection")
            obj.clear(hdr.MARK_BIT)
            obj.clear(hdr.OWNED_BIT)
            report.stale_bits_cleared += 1
    for obj in zombies:
        address = obj.address
        heap.evict(obj)
        if quarantine.fence(address):
            report.objects_quarantined += 1

    # Pass 2: dangling strong/weak slots (after zombie eviction so references
    # into an evicted zombie are fenced too).
    for obj in heap:
        slots = obj.slots
        for idx in obj.reference_slot_indices():
            ref = slots[idx]
            if ref != NULL and not heap.contains(ref):
                report.problems.append(f"{obj!r}: dangling reference {ref:#x} nulled")
                slots[idx] = NULL
                report.refs_fenced += 1
        if obj.has_weak_slots:
            for idx in obj.weak_slot_indices():
                weak = slots[idx]
                if weak != NULL and not heap.contains(weak):
                    report.problems.append(f"{obj!r}: dangling weak reference {weak:#x} nulled")
                    slots[idx] = NULL
                    report.refs_fenced += 1

    # Pass 3: roots and region queues.
    dangling_roots: set[int] = set()
    for description, address in vm.root_entries():
        if not heap.contains(address):
            report.problems.append(f"root {description}: dangling address {address:#x} nulled")
            dangling_roots.add(address)
    if dangling_roots:
        vm.null_roots(dangling_roots)
        report.roots_fenced += len(dangling_roots)
    for thread in vm.threads:
        stale = [a for a in thread.region_queue if not heap.contains(a)]
        if stale:
            report.problems.append(
                f"thread {thread.name!r}: region queue held {len(stale)} dead address(es)"
            )
            thread.purge_freed(set(stale))

    # Pass 4: assertion-registry scrub — a stale entry corrupts checking after
    # address reuse, so entries for vanished addresses are dropped outright.
    engine = vm.engine
    if engine is not None:
        registry = engine.registry
        for address in [a for a in registry.dead_sites if not heap.contains(a)]:
            report.problems.append(f"registry: dead site for vanished {address:#x} scrubbed")
            del registry.dead_sites[address]
            report.registry_scrubbed += 1
        for address in [a for a in registry.unshared_sites if not heap.contains(a)]:
            report.problems.append(f"registry: unshared site for vanished {address:#x} scrubbed")
            del registry.unshared_sites[address]
            report.registry_scrubbed += 1
        for owner_address in [a for a in registry.owners if not heap.contains(a)]:
            report.problems.append(f"registry: owner record for vanished {owner_address:#x} scrubbed")
            registry.drop_owner(owner_address)
            report.registry_scrubbed += 1
        dead_ownees = [a for a in registry.ownee_owner if not heap.contains(a)]
        for ownee_address in dead_ownees:
            owner_address = registry.ownee_owner.pop(ownee_address)
            record = registry.owners.get(owner_address)
            if record is not None:
                record.remove(ownee_address)
            report.problems.append(f"registry: vanished ownee {ownee_address:#x} scrubbed")
            report.registry_scrubbed += 1

    # Pass 5 (opt-in): allocator free structures.  A free-list cell that
    # aliases a live object would hand that object's memory to the next
    # allocation; a phantom bump record charges bytes for a cell no object
    # owns.  Both are withheld/fenced rather than reused.
    if scrub_freelists:
        from repro.verify.paranoid import iter_spaces

        for name, space in iter_spaces(vm.collector):
            free_list = getattr(space, "free_list", None)
            if free_list is not None:
                for cell_bytes, cells in list(free_list._cells.items()):
                    keep = []
                    for address in cells:
                        if heap.contains(address) or address in quarantine:
                            report.problems.append(
                                f"{name}: free cell {address:#x} ({cell_bytes}B) "
                                "aliases a live or fenced address; withheld"
                            )
                            free_list.free_bytes -= cell_bytes
                            quarantine.fence(address)
                            report.freelist_scrubbed += 1
                        else:
                            keep.append(address)
                    if len(keep) != len(cells):
                        if keep:
                            free_list._cells[cell_bytes] = keep
                        else:
                            del free_list._cells[cell_bytes]
            allocated = getattr(space, "_allocated", None)
            if allocated is not None:
                orphans = [
                    a for a in allocated
                    if not heap.contains(a) and a not in quarantine
                ]
                for address in orphans:
                    nbytes = allocated.pop(address)
                    space.bytes_in_use -= nbytes
                    quarantine.fence(address)
                    report.problems.append(
                        f"{name}: orphan bump cell {address:#x} ({nbytes}B) scrubbed"
                    )
                    report.freelist_scrubbed += 1

    return report
