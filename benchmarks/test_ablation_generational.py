"""Ablation abl-gen: assertion-checking latency under generational GC.

§2.2: "A generational collector, however, performs full-heap collections
infrequently, allowing some assertions to go unchecked for long periods of
time."  We quantify that: run an allocation-heavy workload that violates an
assert-dead early, and measure how many collections (and how much allocation)
pass before the violation is detected under MarkSweep (every collection is
full-heap) vs generational (only full-heap collections check).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.heap.object_model import FieldKind
from repro.runtime.vm import VirtualMachine

HEAP = 192 << 10


@dataclass
class LatencyResult:
    collections_until_detection: int
    checking_collections: int
    total_collections: int
    detected: bool


def _measure_latency(collector: str) -> LatencyResult:
    vm = VirtualMachine(heap_bytes=HEAP, collector=collector)
    cls = vm.define_class("L", [("next", FieldKind.REF), ("pad", FieldKind.REF)])

    # Create the "leak": a rooted object asserted dead immediately.
    with vm.scope():
        leaked = vm.new(cls)
        vm.statics.set_ref("leak", leaked.address)
        vm.assertions.assert_dead(leaked, site="latency-probe")

    detected_at = None
    # Churn allocation; collections trigger naturally.
    for i in range(30_000):
        with vm.scope():
            vm.new(cls)
        if vm.engine.log.violations:
            detected_at = vm.stats.collections
            break
    stats = vm.stats
    return LatencyResult(
        collections_until_detection=detected_at if detected_at is not None else -1,
        checking_collections=stats.full_collections,
        total_collections=stats.collections,
        detected=detected_at is not None,
    )


def test_generational_detection_latency(once, figure_report):
    def run():
        return _measure_latency("marksweep"), _measure_latency("generational")

    ms, gen = once(run)
    figure_report.append(
        "Ablation abl-gen (detection latency, collections until the violation "
        "is reported):\n"
        f"  marksweep:    detected after {ms.collections_until_detection} "
        f"collection(s) ({ms.checking_collections} checking / {ms.total_collections} total)\n"
        f"  generational: detected after {gen.collections_until_detection} "
        f"collection(s) ({gen.checking_collections} checking / {gen.total_collections} total)"
    )
    # MarkSweep checks at the very first collection.
    assert ms.detected
    assert ms.collections_until_detection == 1
    # The generational collector runs many minor collections that check
    # nothing; detection needs a full-heap collection.
    assert gen.total_collections > gen.checking_collections

    # With only nursery pressure, the violation may go undetected for the
    # whole run — exactly the §2.2 caveat.  Either it was never detected, or
    # it took strictly more collections than MarkSweep needed.
    if gen.detected:
        assert gen.collections_until_detection > ms.collections_until_detection


def test_explicit_full_gc_closes_the_gap(once):
    """A forced full-heap collection detects immediately on both."""

    def run():
        results = {}
        for collector in ("marksweep", "generational"):
            vm = VirtualMachine(heap_bytes=HEAP, collector=collector)
            cls = vm.define_class("L", [("next", FieldKind.REF)])
            with vm.scope():
                leaked = vm.new(cls)
                vm.statics.set_ref("leak", leaked.address)
                vm.assertions.assert_dead(leaked)
            vm.gc()
            results[collector] = len(vm.engine.log)
        return results

    results = once(run)
    assert results == {"marksweep": 1, "generational": 1}
