"""The benchmark suite registry used by the figure-regeneration harness.

One entry per suite member from the paper's Figures 2–5: DaCapo 2006
members, SPEC JVM98 members, and pseudojbb.  ``db``, ``lusearch``, and
``pseudojbb`` run their full analog workloads; the remaining members run
synthetic allocation profiles (see :mod:`repro.workloads.synthetic` and
DESIGN.md §4 for the substitution rationale).

Heap budgets follow the paper's sizing rule — each benchmark runs "with a
heap size fixed at two times the minimum possible for that benchmark" — and
were calibrated with :func:`measure_live_peak`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.runtime.vm import VirtualMachine
from repro.workloads.db import DbConfig, run_db
from repro.workloads.jbb.driver import JbbConfig, run_pseudojbb
from repro.workloads.lusearch import LusearchConfig, run_lusearch
from repro.workloads.synthetic import PROFILES, run_synthetic

Runner = Callable[[VirtualMachine], object]

#: Calibrated heap budgets: 2x the measured minimum heap per benchmark
#: (binary search with `find_min_heap`, see tools in benchmarks/).  This is
#: the paper's rule: "a heap size fixed at two times the minimum possible
#: for that benchmark using the MarkSweep collector."
HEAP_BUDGETS: dict[str, int] = {
    "antlr": 35664,
    "bloat": 384464,
    "fop": 112000,
    "hsqldb": 452096,
    "jython": 32768,
    "luindex": 137872,
    "pmd": 177536,
    "xalan": 32768,
    "compress": 267952,
    "jess": 56240,
    "javac": 233456,
    "mpegaudio": 32768,
    "mtrt": 32768,
    "jack": 63744,
    "db": 73168,
    "lusearch": 304928,
    "pseudojbb": 32768,
}


@dataclass(frozen=True)
class SuiteEntry:
    """One benchmark: plain runner, optional asserted runner, heap budget."""

    name: str
    heap_bytes: int
    run: Runner
    #: The paper adds assertions only to db and pseudojbb (§3.1.1); None
    #: for the rest.
    run_with_assertions: Optional[Runner] = None


def _db_plain(vm: VirtualMachine):
    return run_db(vm, DbConfig())


def _db_asserted(vm: VirtualMachine):
    return run_db(
        vm, DbConfig(assert_ownedby_entries=True, assert_dead_on_delete=True)
    )


def _jbb_plain(vm: VirtualMachine):
    return run_pseudojbb(vm, JbbConfig())


def _jbb_asserted(vm: VirtualMachine):
    return run_pseudojbb(
        vm,
        JbbConfig(
            assert_dead_orders=True,
            assert_ownedby_orders=True,
            assert_instances_company=True,
        ),
    )


def _lusearch_plain(vm: VirtualMachine):
    return run_lusearch(vm, LusearchConfig(gc_midway=False))


def _synthetic_runner(profile_name: str) -> Runner:
    profile = PROFILES[profile_name]

    def run(vm: VirtualMachine):
        return run_synthetic(vm, profile)

    return run


def build_suite() -> dict[str, SuiteEntry]:
    """All Figure 2/3 suite members, name → entry."""
    entries: dict[str, SuiteEntry] = {}
    for name in PROFILES:
        entries[name] = SuiteEntry(
            name=name, heap_bytes=HEAP_BUDGETS[name], run=_synthetic_runner(name)
        )
    entries["db"] = SuiteEntry(
        name="db",
        heap_bytes=HEAP_BUDGETS["db"],
        run=_db_plain,
        run_with_assertions=_db_asserted,
    )
    entries["lusearch"] = SuiteEntry(
        name="lusearch", heap_bytes=HEAP_BUDGETS["lusearch"], run=_lusearch_plain
    )
    entries["pseudojbb"] = SuiteEntry(
        name="pseudojbb",
        heap_bytes=HEAP_BUDGETS["pseudojbb"],
        run=_jbb_plain,
        run_with_assertions=_jbb_asserted,
    )
    return entries


def measure_live_peak(entry: SuiteEntry, probe_heap_bytes: int = 64 << 20) -> dict:
    """Calibration helper: run a benchmark in a huge heap and report live/peak
    byte volumes, used to size the 2x-minimum heaps above."""
    vm = VirtualMachine(heap_bytes=probe_heap_bytes, assertions=False)
    entry.run(vm)
    in_use = vm.collector.bytes_in_use()
    vm.gc("calibration")
    return {
        "name": entry.name,
        "peak_bytes_in_use": in_use,
        "live_bytes_after_gc": vm.collector.bytes_in_use(),
        "objects_live": vm.heap.stats.objects_live,
        "bytes_allocated": vm.heap.stats.bytes_allocated,
    }
