"""Unit tests for object-header bit manipulation."""

from repro.heap import header as hdr


class TestBits:
    def test_all_flag_bits_distinct(self):
        bits = [
            hdr.MARK_BIT,
            hdr.DEAD_BIT,
            hdr.UNSHARED_BIT,
            hdr.OWNED_BIT,
            hdr.OWNEE_BIT,
            hdr.OWNER_BIT,
            hdr.FREED_BIT,
            hdr.HASHED_BIT,
        ]
        assert len(set(bits)) == len(bits)
        for a in bits:
            for b in bits:
                if a is not b:
                    assert a & b == 0

    def test_flags_fit_in_flag_mask(self):
        combined = (
            hdr.MARK_BIT
            | hdr.DEAD_BIT
            | hdr.UNSHARED_BIT
            | hdr.OWNED_BIT
            | hdr.OWNEE_BIT
            | hdr.OWNER_BIT
            | hdr.FREED_BIT
            | hdr.HASHED_BIT
        )
        assert combined & ~hdr.FLAG_MASK == 0

    def test_set_and_test(self):
        status = hdr.new_status()
        assert not hdr.test(status, hdr.DEAD_BIT)
        status = hdr.set_bit(status, hdr.DEAD_BIT)
        assert hdr.test(status, hdr.DEAD_BIT)

    def test_clear(self):
        status = hdr.set_bit(hdr.new_status(), hdr.MARK_BIT)
        status = hdr.clear_bit(status, hdr.MARK_BIT)
        assert not hdr.test(status, hdr.MARK_BIT)

    def test_set_is_idempotent(self):
        status = hdr.set_bit(hdr.new_status(), hdr.UNSHARED_BIT)
        assert hdr.set_bit(status, hdr.UNSHARED_BIT) == status

    def test_flags_do_not_clobber_hash(self):
        status = hdr.new_status(hash_code=12345)
        status = hdr.set_bit(status, hdr.MARK_BIT | hdr.DEAD_BIT)
        assert hdr.hash_of(status) == 12345
        status = hdr.clear_bit(status, hdr.MARK_BIT)
        assert hdr.hash_of(status) == 12345

    def test_sticky_mask_excludes_mark_and_owned(self):
        assert hdr.STICKY_MASK & hdr.MARK_BIT == 0
        assert hdr.STICKY_MASK & hdr.OWNED_BIT == 0
        assert hdr.STICKY_MASK & hdr.DEAD_BIT != 0
        assert hdr.STICKY_MASK & hdr.UNSHARED_BIT != 0


class TestDescribe:
    def test_empty(self):
        assert hdr.describe(0) == "-"

    def test_single(self):
        assert hdr.describe(hdr.DEAD_BIT) == "DEAD"

    def test_multiple(self):
        text = hdr.describe(hdr.MARK_BIT | hdr.OWNEE_BIT)
        assert "MARK" in text
        assert "OWNEE" in text
