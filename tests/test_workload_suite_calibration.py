"""Suite calibration helpers and paper-scale configurations."""

import pytest

from repro.workloads.db import DbConfig
from repro.workloads.jbb import JbbConfig
from repro.workloads.suite import HEAP_BUDGETS, build_suite, measure_live_peak


class TestCalibration:
    def test_measure_live_peak_reports_sane_numbers(self):
        entry = build_suite()["mpegaudio"]
        info = measure_live_peak(entry)
        assert info["name"] == "mpegaudio"
        assert 0 < info["live_bytes_after_gc"] <= info["peak_bytes_in_use"]
        # Cells round object sizes up to size classes, so bytes-in-use can
        # slightly exceed raw allocated bytes — but only by the class waste.
        assert info["peak_bytes_in_use"] <= info["bytes_allocated"] * 1.3
        assert info["objects_live"] > 0

    def test_budgets_exceed_live_sets(self):
        """Every 2x-min budget must comfortably exceed the benchmark's
        post-GC live size (otherwise it could not have completed)."""
        suite = build_suite()
        for name in ("mpegaudio", "jess", "antlr"):
            info = measure_live_peak(suite[name])
            assert HEAP_BUDGETS[name] > info["live_bytes_after_gc"]


class TestPaperScaleConfigs:
    def test_db_paper_scale_larger_than_default(self):
        default = DbConfig()
        full = DbConfig.paper_scale()
        assert full.initial_entries > 10 * default.initial_entries
        # The paper-scale db is retention-heavy (the §3.1.2 profile).
        assert full.find_weight > full.delete_weight

    def test_jbb_paper_scale_larger_than_default(self):
        default = JbbConfig()
        full = JbbConfig.paper_scale()
        assert full.transactions_per_iteration > default.transactions_per_iteration
        assert (
            full.warehouses * full.districts_per_warehouse
            > default.warehouses * default.districts_per_warehouse
        )

    def test_paper_scale_configs_run(self):
        """A scaled-down sanity pass: the constructors produce runnable
        configurations (full scale is exercised via REPRO_BENCH_FULL)."""
        from repro.runtime.vm import VirtualMachine
        from repro.workloads.db import run_db
        from repro.workloads.jbb import run_pseudojbb

        db_config = DbConfig.paper_scale()
        db_config.initial_entries = 200
        db_config.operations = 200
        result = run_db(VirtualMachine(heap_bytes=8 << 20), db_config)
        assert result.adds >= 200

        jbb_config = JbbConfig.paper_scale()
        jbb_config.iterations = 1
        jbb_config.transactions_per_iteration = 100
        result = run_pseudojbb(VirtualMachine(heap_bytes=16 << 20), jbb_config)
        assert result.transactions == 100
