"""Word and object-layout constants for the simulated heap.

The simulator models a 64-bit address space with 8-byte words.  Objects are
word aligned, which leaves the low three bits of every object address unused;
the tracing worklist steals the lowest of those bits for its path-tracking
algorithm (see :mod:`repro.gc.worklist`), exactly as the paper does in
Jikes RVM ("Because all objects in Jikes RVM are word aligned, the two low
order bits are unused, and we can safely use one of them").
"""

from __future__ import annotations

#: Bytes per machine word in the simulated address space.
WORD_BYTES = 8

#: Log2 of the word size; object addresses are aligned to this many bits.
WORD_SHIFT = 3

#: Alignment mask: ``addr & ALIGN_MASK == 0`` for every object address.
ALIGN_MASK = WORD_BYTES - 1

#: Bit stolen from aligned addresses by the path-tracking worklist.
ADDRESS_TAG_BIT = 0x1

#: Size of the per-object header in bytes (one status word + one type word,
#: mirroring Jikes RVM's two-word object header).
HEADER_BYTES = 2 * WORD_BYTES

#: Arrays carry one extra length word after the header.
ARRAY_LENGTH_BYTES = WORD_BYTES

#: Lowest address handed out by the address allocator.  Starting above zero
#: keeps address 0 free to represent ``null``.
HEAP_BASE_ADDRESS = 0x1000

#: The null reference.  Stored in reference fields and local slots.
NULL = 0


def align_up(nbytes: int) -> int:
    """Round ``nbytes`` up to the next word boundary."""
    return (nbytes + ALIGN_MASK) & ~ALIGN_MASK


def is_aligned(address: int) -> bool:
    """Return True if ``address`` is word aligned (and therefore untagged)."""
    return (address & ALIGN_MASK) == 0


def scalar_size(kind: "str") -> int:
    """Return the in-object size in bytes of a field of the given kind.

    The simulator gives every field a full word, as Jikes RVM does for
    references and longs; this keeps offsets trivially aligned.
    """
    return WORD_BYTES
