"""The chaos soak harness behind ``python -m repro chaos``.

Runs a seeded fault schedule (:meth:`FaultPlan.one_of_each`) against the
full crash-consistency matrix — (collector × sweep mode) × workload —
on hardened VMs, then asserts the contract the robustness layer makes:

* **no untyped exceptions** — a fault may surface a typed
  :class:`~repro.errors.ReproError` (that is a documented outcome), but
  anything else escaping is a harness failure;
* **the heap recovers** — after a final recovery collection and
  ``sweep_all``, :func:`~repro.gc.verify.verify_heap` finds zero
  problems and the heap's fast/slow byte accountings agree;
* **coverage** — every fault kind in the plan was applied at least once
  (the injector's ``apply_remaining`` backstop guarantees this even for
  short workloads);
* **detection still works while degraded** — the injected
  ``flip-dead`` produces an assert-dead violation whose ``site`` is
  ``None``, proving assertion checking survived the fault storm;
* **every fault is caught by a named invariant** — each cell records
  which invariants observed its injected damage (sentinel repairs,
  paranoid-walker findings, violation discriminators, containment
  counters), and the report's fault → invariant
  :class:`~repro.verify.coverage.CoverageMatrix` must cover all 11
  fault kinds or the soak fails.

Each cell runs in its own VM with telemetry on, a snapshot policy
capturing every 2nd GC into a temp directory, and a growth ceiling of
2× the workload heap so the OOM ladder has headroom.  Between the
fault backstop and the recovery collection a *read-only* paranoid probe
(:func:`~repro.gc.verify.verify_heap` with ``finish_lazy_sweep=False,
paranoid=True``) walks the damaged heap; what it flags there is
detection evidence, not a cell failure.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.core.reporting import AssertionKind
from repro.errors import ReproError
from repro.faults.injector import FaultInjector, FaultPlan
from repro.gc.verify import verify_heap
from repro.runtime.vm import VirtualMachine
from repro.verify.coverage import CoverageMatrix, detect_cell, detect_tenant_cell

#: The crash-consistency matrix rows: (collector, sweep_mode, gc_workers).
#: The workers=4 rows rerun the sharded collectors under parallel marking —
#: every fault kind must be caught and recovered while four workers drain
#: zones concurrently.  The injector pins its victims to one zone
#: (``CHAOS_PIN_ZONE``) so the worker that observes each corruption is the
#: same run to run.
MATRIX: tuple[tuple[str, Optional[str], int], ...] = (
    ("marksweep", "eager", 0),
    ("marksweep", "lazy", 0),
    ("generational", "eager", 0),
    ("generational", "lazy", 0),
    ("semispace", None, 0),
    ("marksweep", "eager", 4),
    ("marksweep", "lazy", 4),
    ("generational", "eager", 4),
    ("generational", "lazy", 4),
)

#: The zone fault victims are pinned to in parallel-marking cells.
CHAOS_PIN_ZONE = 1


def _chaos_workloads(quick: bool) -> dict[str, tuple[Callable, int]]:
    """name -> (runner, heap_bytes).  Quick mode is the CI smoke pair."""
    from repro.workloads.lusearch import LusearchConfig, run_lusearch
    from repro.workloads.suite import HEAP_BUDGETS
    from repro.workloads.swapleak import SwapLeakConfig, run_swapleak

    def lusearch(vm: VirtualMachine):
        return run_lusearch(vm, LusearchConfig(gc_midway=False))

    def swapleak(vm: VirtualMachine):
        return run_swapleak(vm, SwapLeakConfig(swaps=64, gc_every_swaps=8))

    workloads: dict[str, tuple[Callable, int]] = {
        "lusearch": (lusearch, HEAP_BUDGETS["lusearch"]),
        "swapleak": (swapleak, 96 * 1024),
    }
    if not quick:
        from repro.workloads.db import DbConfig, run_db
        from repro.workloads.jbb.driver import JbbConfig, run_pseudojbb

        workloads["db"] = (lambda vm: run_db(vm, DbConfig()), HEAP_BUDGETS["db"])
        workloads["pseudojbb"] = (
            lambda vm: run_pseudojbb(vm, JbbConfig()),
            HEAP_BUDGETS["pseudojbb"],
        )
    return workloads


@dataclass
class CellResult:
    """One matrix cell: its outcome and the contract checks."""

    collector: str
    sweep_mode: Optional[str]
    workload: str
    seed: int
    gc_workers: int = 0
    #: "completed", "typed:<ErrorName>", or "untyped:<ErrorName>: <msg>".
    outcome: str = "completed"
    #: Contract-check failures; empty means the cell passed.
    failures: list[str] = field(default_factory=list)
    kinds_applied: set[str] = field(default_factory=set)
    degradations: dict[str, int] = field(default_factory=dict)
    recovery: dict[str, int] = field(default_factory=dict)
    violations: int = 0
    injected_dead_violations: int = 0
    injected_unshared_violations: int = 0
    collections: int = 0
    sink_errors: int = 0
    #: fault kind -> "invariant-name: evidence" for every kind whose injected
    #: damage was observed by a named invariant in this cell.
    detections: dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def label(self) -> str:
        mode = f"/{self.sweep_mode}" if self.sweep_mode else ""
        workers = f"/workers={self.gc_workers}" if self.gc_workers else ""
        return (
            f"{self.collector}{mode}{workers} × {self.workload} "
            f"(seed {self.seed})"
        )

    def render(self) -> str:
        status = "ok" if self.ok else "FAIL"
        head = (
            f"{status:4} {self.label}: {self.outcome}, "
            f"{self.collections} GCs, {self.violations} violation(s) "
            f"({self.injected_dead_violations} injected-dead), "
            f"degradations={self.degradations or '{}'}, "
            f"invariants-fired={sorted(self.detections) or '[]'}"
        )
        return head + "".join(f"\n       !! {f}" for f in self.failures)


@dataclass
class ChaosReport:
    """The full matrix outcome; ``ok`` is the process exit-code gate."""

    cells: list[CellResult] = field(default_factory=list)
    seeds: tuple[int, ...] = (0,)
    quick: bool = False
    #: Fault → invariant coverage, aggregated over all cells by
    #: :func:`run_chaos`.  ``None`` on hand-built partial reports; when set,
    #: an uncovered fault kind fails the whole soak.
    coverage: Optional[CoverageMatrix] = None

    @property
    def ok(self) -> bool:
        cells_ok = all(cell.ok for cell in self.cells)
        if self.coverage is not None:
            return cells_ok and self.coverage.ok
        return cells_ok

    def render(self) -> str:
        lines = [
            f"chaos soak: {len(self.cells)} cell(s), "
            f"seeds={list(self.seeds)}{' (quick)' if self.quick else ''}"
        ]
        lines.extend(cell.render() for cell in self.cells)
        passed = sum(1 for cell in self.cells if cell.ok)
        lines.append(f"{passed}/{len(self.cells)} cells passed")
        if self.coverage is not None:
            lines.append(self.coverage.render())
        return "\n".join(lines)


def _pending_refusals(collector) -> int:
    """Armed-but-unconsumed allocation refusals across every space/shard."""
    from repro.verify.paranoid import _SPACE_ATTRS

    total = 0
    for attr in _SPACE_ATTRS:
        space = getattr(collector, attr, None)
        if space is None:
            continue
        total += getattr(space, "_fault_refusals", 0)
        for shard in getattr(space, "shards", None) or ():
            total += getattr(shard, "_fault_refusals", 0)
    return total


def run_cell(
    collector: str,
    sweep_mode: Optional[str],
    workload: str,
    runner: Callable,
    heap_bytes: int,
    seed: int,
    gc_workers: int = 0,
    paranoid: bool = False,
) -> CellResult:
    """One matrix cell: hardened VM, seeded faults, contract checks."""
    from repro.snapshot.capture import SnapshotPolicy

    result = CellResult(collector, sweep_mode, workload, seed, gc_workers)
    plan = FaultPlan.one_of_each(seed)
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as snapdir:
        vm = VirtualMachine(
            heap_bytes=heap_bytes,
            collector=collector,
            sweep_mode=sweep_mode,
            hardened=True,
            max_heap_bytes=heap_bytes * 2,
            gc_workers=gc_workers or None,
            paranoid=paranoid,
        )
        SnapshotPolicy(snapdir, every_n_gcs=2).attach(vm)
        injector = FaultInjector(
            vm, plan, pin_zone=CHAOS_PIN_ZONE if gc_workers else None
        ).attach()

        try:
            runner(vm)
        except ReproError as exc:
            # A typed error surfacing is a documented matrix outcome; the
            # contract is that the heap is still recoverable afterwards.
            result.outcome = f"typed:{type(exc).__name__}"
        except Exception as exc:  # the contract the whole PR exists for
            result.outcome = f"untyped:{type(exc).__name__}: {exc}"
            result.failures.append(f"untyped exception escaped: {result.outcome}")

        injector.apply_remaining()

        # Read-only detection probe: the paranoid walker sees the injected
        # damage *before* recovery repairs it.  Its findings are coverage
        # evidence for the fault → invariant matrix, never cell failures.
        probe_problems = verify_heap(
            vm, raise_on_error=False, finish_lazy_sweep=False, paranoid=True
        )
        pending_refusals = _pending_refusals(vm.collector)

        # Recovery: one full collection over the (possibly corrupt) heap,
        # then exact reclamation.  The pre-GC sentinel repairs what the
        # late-applied faults broke; a typed error here is still a
        # contract failure because recovery must always succeed.
        try:
            vm.gc("chaos recovery")
            vm.collector.sweep_all()
        except Exception as exc:
            result.failures.append(
                f"recovery collection failed: {type(exc).__name__}: {exc}"
            )

        problems = verify_heap(vm, raise_on_error=False)
        if problems:
            result.failures.append(
                f"verify_heap found {len(problems)} problem(s) after recovery: "
                + "; ".join(problems[:3])
            )
        heap = vm.heap
        if heap.live_bytes() != heap.live_bytes_slow():
            result.failures.append(
                f"byte accounting drifted: fast={heap.live_bytes()} "
                f"slow={heap.live_bytes_slow()}"
            )
        if heap.stats.objects_live != len(heap.address_table()):
            result.failures.append(
                f"live-object counter drifted: stats={heap.stats.objects_live} "
                f"table={len(heap.address_table())}"
            )

        result.kinds_applied = injector.kinds_applied()
        missing = plan.kinds() - result.kinds_applied
        if missing:
            result.failures.append(f"fault kinds never applied: {sorted(missing)}")

        if vm.engine is not None:
            log = vm.engine.log
            result.violations = len(log)
            result.injected_dead_violations = sum(
                1
                for violation in log.violations
                if violation.kind is AssertionKind.DEAD and violation.site is None
            )
            result.injected_unshared_violations = sum(
                1
                for violation in log.violations
                if violation.kind is AssertionKind.UNSHARED and violation.site is None
            )
            if "flip-dead" in result.kinds_applied and not result.injected_dead_violations:
                result.failures.append(
                    "injected DEAD bit produced no assert-dead violation"
                )

        if vm.telemetry is not None:
            result.sink_errors = vm.telemetry.sink_errors
            result.degradations = dict(vm.telemetry.degradations)
            vm.telemetry.close()
        result.recovery = vm.collector.recovery.snapshot()
        result.collections = vm.stats.collections
        result.detections = detect_cell(result, probe_problems, pending_refusals)
        injector.detach()
    return result


def run_tenant_isolation_cell(seed: int = 0) -> CellResult:
    """The service-layer chaos cell: a killed tenant perturbs nobody.

    Three tenant sessions run the same seeded workload side by side; the
    middle one gets the service fault kinds (``conn-drop`` at GC 1,
    ``session-kill`` at GC 2) injected into its VM.  The contract:

    * the victim ends ``killed`` — a session outcome, never an escape;
    * the bystanders' GC counters and violation sets are **bit-identical**
      to a solo baseline run of the same workload (the isolation claim);
    * every committed heap byte returns to the admission budget.
    """
    from repro.service.admission import AdmissionController
    from repro.service.session import TenantSession, resolve_workload

    result = CellResult("service", None, "tenant-isolation", seed)
    overrides = {"swaps": 32}

    # Solo baseline: what an unperturbed run of the workload looks like.
    heap_bytes, runner = resolve_workload("swapleak", overrides=overrides)
    baseline_vm = VirtualMachine(
        heap_bytes=heap_bytes, assertions=True, hardened=True,
        max_heap_bytes=heap_bytes * 2,
    )
    runner(baseline_vm)
    baseline_vm.collector.sweep_all()
    base_counters = baseline_vm.stats.snapshot()["counters"]
    base_violations = baseline_vm.violation_lines()

    admission = AdmissionController(budget_bytes=heap_bytes * 2 * 3)
    sessions: list[TenantSession] = []
    for tenant in ("tenant-a", "tenant-b", "tenant-c"):
        _heap, tenant_runner = resolve_workload("swapleak", overrides=overrides)
        session = TenantSession(f"chaos-{tenant}", tenant, heap_bytes)
        decision = admission.try_admit(session.committed_bytes)
        if not decision.admitted:
            result.failures.append(f"{tenant} unexpectedly rejected: {decision.reason}")
        session.runner = tenant_runner
        sessions.append(session)

    victim = sessions[1]
    plan = FaultPlan(seed)
    plan.add("conn-drop", at_gc=1)
    plan.add("session-kill", at_gc=2)
    injector = FaultInjector(victim.vm, plan).attach()

    for session in sessions:
        try:
            session.run(session.runner)
        except Exception as exc:  # session.run absorbs all tenant outcomes
            result.outcome = f"untyped:{type(exc).__name__}: {exc}"
            result.failures.append(f"untyped exception escaped: {result.outcome}")
        session.evict()
        admission.release(session.committed_bytes)

    result.kinds_applied = injector.kinds_applied()
    injector.detach()
    result.collections = sum(s.vm.stats.collections for s in sessions)
    result.violations = sum(len(s.vm.violation_lines()) for s in sessions)

    if victim.outcome != "killed":
        result.failures.append(
            f"victim session ended {victim.outcome!r}, expected 'killed'"
        )
    if not victim.connection_dropped:
        result.failures.append("conn-drop never severed the victim's stream")
    missing = plan.kinds() - result.kinds_applied
    if missing:
        result.failures.append(f"fault kinds never applied: {sorted(missing)}")
    for bystander in (sessions[0], sessions[2]):
        counters = bystander.vm.stats.snapshot()["counters"]
        if counters != base_counters:
            drift = sorted(
                k for k in counters if counters[k] != base_counters[k]
            )
            result.failures.append(
                f"{bystander.tenant} GC counters perturbed by the kill: {drift}"
            )
        if bystander.vm.violation_lines() != base_violations:
            result.failures.append(
                f"{bystander.tenant} violation set perturbed by the kill"
            )
        if bystander.outcome != "completed":
            result.failures.append(
                f"{bystander.tenant} ended {bystander.outcome!r}, expected 'completed'"
            )
    snap = admission.snapshot()
    if snap["committed_bytes"] != 0 or snap["active_sessions"] != 0:
        result.failures.append(
            f"admission budget leaked: {snap['committed_bytes']} bytes, "
            f"{snap['active_sessions']} session(s) still committed"
        )
    result.detections = detect_tenant_cell(result, victim)
    return result


def run_chaos(quick: bool = False, seed: int = 0, paranoid: bool = False) -> ChaosReport:
    """Run the whole matrix; quick mode is one seed × the CI smoke pair.

    With ``paranoid=True`` every heap cell's VM additionally runs the
    paranoid wellformedness walker around each collection (the hardened
    sentinel then also scrubs free lists pre-walk, so a mid-workload
    corruption surfaces as a typed :class:`~repro.gc.verify.HeapVerificationError`
    instead of lingering until the probe).
    """
    seeds = (seed,) if quick else (seed, seed + 1)
    workloads = _chaos_workloads(quick)
    report = ChaosReport(seeds=seeds, quick=quick)
    for collector, sweep_mode, gc_workers in MATRIX:
        for workload, (runner, heap_bytes) in workloads.items():
            for cell_seed in seeds:
                report.cells.append(
                    run_cell(
                        collector,
                        sweep_mode,
                        workload,
                        runner,
                        heap_bytes,
                        cell_seed,
                        gc_workers,
                        paranoid=paranoid,
                    )
                )
    for cell_seed in seeds:
        report.cells.append(run_tenant_isolation_cell(cell_seed))
    report.coverage = CoverageMatrix()
    for cell in report.cells:
        report.coverage.merge_cell(cell.label, cell.detections)
    return report
