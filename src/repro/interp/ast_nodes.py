"""Abstract syntax tree for MiniJ.

Nodes carry the source line for error reporting.  Type annotations are
:class:`TypeRef` values: scalar names (``int``, ``bool``, ``str``,
``float``, ``void``), class names, or arrays of either.
"""

from __future__ import annotations

from typing import Optional, Sequence

SCALAR_TYPES = ("int", "bool", "str", "float", "void")


class TypeRef:
    """A syntactic type: name, array depth, and weakness.

    ``Node[]`` has depth 1; ``weak Node`` (field declarations only) marks a
    non-retaining reference slot.
    """

    __slots__ = ("name", "array_depth", "weak")

    def __init__(self, name: str, array_depth: int = 0, weak: bool = False):
        self.name = name
        self.array_depth = array_depth
        self.weak = weak

    @property
    def is_scalar(self) -> bool:
        return self.array_depth == 0 and self.name in SCALAR_TYPES

    @property
    def is_reference(self) -> bool:
        return not self.is_scalar

    def element(self) -> "TypeRef":
        assert self.array_depth > 0
        return TypeRef(self.name, self.array_depth - 1)

    def __str__(self) -> str:
        prefix = "weak " if self.weak else ""
        return prefix + self.name + "[]" * self.array_depth

    def __repr__(self) -> str:
        return f"<type {self}>"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, TypeRef)
            and other.name == self.name
            and other.array_depth == self.array_depth
            and other.weak == self.weak
        )

    def __hash__(self) -> int:
        return hash((self.name, self.array_depth, self.weak))


class Node:
    __slots__ = ("line",)

    def __init__(self, line: int):
        self.line = line


# ---------------------------------------------------------------- expressions


class Expr(Node):
    __slots__ = ()


class IntLit(Expr):
    __slots__ = ("value",)

    def __init__(self, value: int, line: int):
        super().__init__(line)
        self.value = value


class FloatLit(Expr):
    __slots__ = ("value",)

    def __init__(self, value: float, line: int):
        super().__init__(line)
        self.value = value


class StrLit(Expr):
    __slots__ = ("value",)

    def __init__(self, value: str, line: int):
        super().__init__(line)
        self.value = value


class BoolLit(Expr):
    __slots__ = ("value",)

    def __init__(self, value: bool, line: int):
        super().__init__(line)
        self.value = value


class NullLit(Expr):
    __slots__ = ()


class ThisExpr(Expr):
    __slots__ = ()


class Name(Expr):
    __slots__ = ("ident",)

    def __init__(self, ident: str, line: int):
        super().__init__(line)
        self.ident = ident


class FieldAccess(Expr):
    __slots__ = ("target", "field")

    def __init__(self, target: Expr, field: str, line: int):
        super().__init__(line)
        self.target = target
        self.field = field


class Index(Expr):
    __slots__ = ("target", "index")

    def __init__(self, target: Expr, index: Expr, line: int):
        super().__init__(line)
        self.target = target
        self.index = index


class Call(Expr):
    """A free-function or builtin call: ``f(a, b)``."""

    __slots__ = ("func", "args")

    def __init__(self, func: str, args: Sequence[Expr], line: int):
        super().__init__(line)
        self.func = func
        self.args = list(args)


class MethodCall(Expr):
    """``target.m(a, b)`` with dynamic dispatch on the runtime class."""

    __slots__ = ("target", "method", "args")

    def __init__(self, target: Expr, method: str, args: Sequence[Expr], line: int):
        super().__init__(line)
        self.target = target
        self.method = method
        self.args = list(args)


class NewObject(Expr):
    __slots__ = ("type_name",)

    def __init__(self, type_name: str, line: int):
        super().__init__(line)
        self.type_name = type_name


class NewArray(Expr):
    __slots__ = ("elem_type", "length")

    def __init__(self, elem_type: TypeRef, length: Expr, line: int):
        super().__init__(line)
        self.elem_type = elem_type
        self.length = length


class Binary(Expr):
    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expr, right: Expr, line: int):
        super().__init__(line)
        self.op = op
        self.left = left
        self.right = right


class Unary(Expr):
    __slots__ = ("op", "operand")

    def __init__(self, op: str, operand: Expr, line: int):
        super().__init__(line)
        self.op = op
        self.operand = operand


# ---------------------------------------------------------------- statements


class Stmt(Node):
    __slots__ = ()


class VarDecl(Stmt):
    __slots__ = ("name", "type", "init")

    def __init__(self, name: str, type_: TypeRef, init: Optional[Expr], line: int):
        super().__init__(line)
        self.name = name
        self.type = type_
        self.init = init


class Assign(Stmt):
    """Assignment to a local, a field, or an array element."""

    __slots__ = ("target", "value")

    def __init__(self, target: Expr, value: Expr, line: int):
        super().__init__(line)
        self.target = target
        self.value = value


class ExprStmt(Stmt):
    __slots__ = ("expr",)

    def __init__(self, expr: Expr, line: int):
        super().__init__(line)
        self.expr = expr


class If(Stmt):
    __slots__ = ("cond", "then_body", "else_body")

    def __init__(self, cond: Expr, then_body: list[Stmt], else_body: Optional[list[Stmt]], line: int):
        super().__init__(line)
        self.cond = cond
        self.then_body = then_body
        self.else_body = else_body


class While(Stmt):
    __slots__ = ("cond", "body")

    def __init__(self, cond: Expr, body: list[Stmt], line: int):
        super().__init__(line)
        self.cond = cond
        self.body = body


class For(Stmt):
    """C-style for: ``for (init; cond; update) { body }`` — each part
    optional."""

    __slots__ = ("init", "cond", "update", "body")

    def __init__(
        self,
        init: Optional[Stmt],
        cond: Optional[Expr],
        update: Optional[Stmt],
        body: list[Stmt],
        line: int,
    ):
        super().__init__(line)
        self.init = init
        self.cond = cond
        self.update = update
        self.body = body


class Break(Stmt):
    __slots__ = ()


class Continue(Stmt):
    __slots__ = ()


class Return(Stmt):
    __slots__ = ("value",)

    def __init__(self, value: Optional[Expr], line: int):
        super().__init__(line)
        self.value = value


# ---------------------------------------------------------------- declarations


class Param:
    __slots__ = ("name", "type")

    def __init__(self, name: str, type_: TypeRef):
        self.name = name
        self.type = type_


class FuncDecl(Node):
    """A free function or a method (when ``owner`` is set)."""

    __slots__ = ("name", "params", "return_type", "body", "owner")

    def __init__(
        self,
        name: str,
        params: list[Param],
        return_type: TypeRef,
        body: list[Stmt],
        line: int,
        owner: Optional[str] = None,
    ):
        super().__init__(line)
        self.name = name
        self.params = params
        self.return_type = return_type
        self.body = body
        self.owner = owner


class FieldDecl:
    __slots__ = ("name", "type", "line")

    def __init__(self, name: str, type_: TypeRef, line: int):
        self.name = name
        self.type = type_
        self.line = line


class ClassDecl(Node):
    __slots__ = ("name", "superclass", "fields", "methods")

    def __init__(
        self,
        name: str,
        superclass: Optional[str],
        fields: list[FieldDecl],
        methods: list[FuncDecl],
        line: int,
    ):
        super().__init__(line)
        self.name = name
        self.superclass = superclass
        self.fields = fields
        self.methods = methods


class Program(Node):
    __slots__ = ("classes", "functions")

    def __init__(self, classes: list[ClassDecl], functions: list[FuncDecl]):
        super().__init__(1)
        self.classes = classes
        self.functions = functions
