"""CLI (`python -m repro`) tests, driven through main(argv)."""

import pathlib

import pytest

from repro.__main__ import main

PROGRAMS = pathlib.Path(__file__).resolve().parent.parent / "examples" / "programs"


class TestCli:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "GC assertions" in out
        assert "pseudojbb" in out
        assert "marksweep" in out

    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "Warning: an object that was asserted dead is reachable." in out
        assert "1 satisfied" in out

    def test_verify(self, capsys):
        assert main(["verify"]) == 0
        out = capsys.readouterr().out
        for collector in ("marksweep", "semispace", "generational"):
            assert collector in out
        assert "OK" in out
        assert "FAILED" not in out

    def test_minij(self, capsys):
        path = str(PROGRAMS / "linked_list.minij")
        assert main(["minij", path]) == 0
        out = capsys.readouterr().out
        assert "sum: 55" in out

    def test_minij_custom_entry(self, tmp_path, capsys):
        source = tmp_path / "t.minij"
        source.write_text("def go(): void { print(7); }")
        assert main(["minij", str(source), "--entry", "go"]) == 0
        assert "7" in capsys.readouterr().out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["nope"])

    def test_figures_fast(self, capsys):
        assert main(["figures", "--trials", "1"]) == 0
        out = capsys.readouterr().out
        assert "fig2" in out
        assert "fig5" in out
        assert "geomean" in out
