"""Ablation abl-own: two-phase ownership scan vs the rejected general
algorithm.

§2.5.2: "In its most general form, this problem incurs a significant
overhead in space and time ... The space and time overhead from storing
this information is prohibitive."  The paper's fix is the owners-first
two-phase scan that checks all pairs in a single pass.

This ablation runs the same ownership-heavy workload (a database whose
entries are all ownees) under both checkers and compares the deterministic
traversal work: the naive checker re-traces the owner's subgraph once *per
ownee* (quadratic), the two-phase scan traces each object once.
"""

from __future__ import annotations

from repro.heap.object_model import FieldKind
from repro.runtime.vm import VirtualMachine


def _ownership_workload(mode: str, n_entries: int) -> dict:
    vm = VirtualMachine(heap_bytes=16 << 20, ownership_mode=mode)
    container = vm.define_class("Cont", [("items", FieldKind.REF)])
    element = vm.define_class("Elem", [("id", FieldKind.INT), ("blob", FieldKind.REF)])
    with vm.scope():
        cont = vm.new(container)
        arr = vm.new_array(element, n_entries)
        cont["items"] = arr
        vm.statics.set_ref("cont", cont.address)
        for i in range(n_entries):
            e = vm.new(element, id=i)
            e["blob"] = vm.new_array(FieldKind.INT, 4)
            arr[i] = e
            vm.assertions.assert_ownedby(cont, e)
    vm.gc()
    stats = vm.stats
    return {
        "objects_traced": stats.objects_traced,
        "naive_visits": stats.naive_ownership_visits,
        "gc_seconds": stats.gc_seconds,
        "violations": len(vm.engine.log),
    }


def test_two_phase_vs_naive_work(once, figure_report):
    n = 150

    def run():
        return _ownership_workload("two-phase", n), _ownership_workload("naive", n)

    two_phase, naive = once(run)
    # Both agree there is nothing wrong.
    assert two_phase["violations"] == 0
    assert naive["violations"] == 0

    # Two-phase: every object visited once, no per-pair re-tracing.
    assert two_phase["naive_visits"] == 0
    # Naive: per-pair reachability re-traces the container subgraph, giving
    # ~n/2 visited objects per pair on average => O(n^2) visits.
    assert naive["naive_visits"] > n * n / 4

    ratio = naive["naive_visits"] / max(two_phase["objects_traced"], 1)
    figure_report.append(
        "Ablation abl-own (ownership checking work, "
        f"{n} owner/ownee pairs):\n"
        f"  two-phase scan: {two_phase['objects_traced']} objects traced, "
        f"0 per-pair visits\n"
        f"  naive checker:  {naive['naive_visits']} per-pair visits "
        f"(+ the normal trace)\n"
        f"  naive does {ratio:.0f}x the traversal work the paper's design needs"
    )
    assert ratio > 10


def test_work_scales_quadratically_for_naive(once):
    """Doubling the pair count ~4x-es naive work but only ~2x-es two-phase."""

    def run():
        small_naive = _ownership_workload("naive", 60)["naive_visits"]
        big_naive = _ownership_workload("naive", 120)["naive_visits"]
        small_two = _ownership_workload("two-phase", 60)["objects_traced"]
        big_two = _ownership_workload("two-phase", 120)["objects_traced"]
        return small_naive, big_naive, small_two, big_two

    small_naive, big_naive, small_two, big_two = once(run)
    assert big_naive / small_naive > 3.0   # ~quadratic
    assert big_two / small_two < 2.5       # ~linear


def test_both_modes_detect_the_same_leak(once):
    def run():
        results = {}
        for mode in ("two-phase", "naive"):
            vm = VirtualMachine(heap_bytes=8 << 20, ownership_mode=mode)
            container = vm.define_class("C", [("items", FieldKind.REF)])
            element = vm.define_class("E", [("id", FieldKind.INT)])
            with vm.scope():
                cont = vm.new(container)
                arr = vm.new_array(element, 10)
                cont["items"] = arr
                vm.statics.set_ref("c", cont.address)
                victim = vm.new(element, id=0)
                arr[0] = victim
                vm.statics.set_ref("cache", victim.address)
                vm.assertions.assert_ownedby(cont, victim)
            cont["items"][0] = None
            vm.gc()
            results[mode] = len(vm.engine.log)
        return results

    results = once(run)
    assert results["two-phase"] == 1
    assert results["naive"] == 1
