"""Shared helpers for the figure-regeneration benchmarks.

Environment knobs:

* ``REPRO_BENCH_TRIALS`` — measured trials per (benchmark, config) pair
  (default 3; the paper used 20 — set 20 for a full-methodology run).
* ``REPRO_BENCH_FULL=1`` — use paper-scale workload configurations for the
  assertion-volume table (slower).

Every test takes the ``benchmark`` fixture so the whole directory runs
under ``pytest benchmarks/ --benchmark-only``; measurement-heavy tests use
``once()`` (a single pedantic round) because the figure harness already
repeats trials internally.
"""

from __future__ import annotations

import os

import pytest


def trials() -> int:
    return int(os.environ.get("REPRO_BENCH_TRIALS", "3"))


def full_scale() -> bool:
    return os.environ.get("REPRO_BENCH_FULL", "0") == "1"


@pytest.fixture
def once(benchmark):
    """Run a callable exactly once under pytest-benchmark timing."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner


@pytest.fixture(scope="session")
def figure_report():
    """Collects rendered figures; prints them at the end of the session."""
    sections: list[str] = []
    yield sections
    if sections:
        print("\n\n" + "=" * 72)
        print("REPRODUCED FIGURES")
        print("=" * 72)
        for section in sections:
            print()
            print(section)
