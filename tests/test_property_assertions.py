"""Property-based assertion semantics.

The defining contracts of GC assertions, randomized:

* ``assert-dead(p)`` fires at the next GC **iff** ``p`` is then reachable
  (no false positives, no false negatives at GC granularity).
* ``assert-instances(T, I)`` fires **iff** the live count at GC exceeds I.
* ``assert-ownedby`` fires for exactly the ownees whose owner path was cut
  while another path keeps them alive.
* Assertions never perturb reachability ("we retain the semantics of the
  program") under the default LOG policy.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.reporting import AssertionKind
from repro.heap.object_model import FieldKind
from repro.runtime.vm import VirtualMachine

N = 16


def build_population(keep_flags):
    """N objects; keep_flags[i] decides whether object i stays rooted."""
    vm = VirtualMachine(heap_bytes=4 << 20)
    cls = vm.define_class("P", [("id", FieldKind.INT)])
    objects = []
    with vm.scope():
        for i, keep in enumerate(keep_flags):
            obj = vm.new(cls, id=i)
            if keep:
                vm.statics.set_ref(f"keep{i}", obj.address)
            objects.append(obj)
    return vm, cls, objects


@given(
    keep=st.lists(st.booleans(), min_size=N, max_size=N),
    asserted=st.sets(st.integers(0, N - 1)),
)
@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_assert_dead_fires_iff_reachable(keep, asserted):
    vm, cls, objects = build_population(keep)
    for i in asserted:
        vm.assertions.assert_dead(objects[i], site=f"obj{i}")
    vm.gc()
    expected = {i for i in asserted if keep[i]}
    fired = {
        v.address for v in vm.engine.log.of_kind(AssertionKind.DEAD)
    }
    assert fired == {objects[i].obj.address for i in expected}
    # Satisfied assertions are purged; violated ones remain registered.
    assert vm.assertions.pending_dead() == len(expected)


@given(
    live_count=st.integers(0, 10),
    limit=st.integers(0, 10),
)
@settings(max_examples=40, deadline=None)
def test_assert_instances_threshold_exact(live_count, limit):
    vm = VirtualMachine(heap_bytes=4 << 20)
    cls = vm.define_class("T", [("id", FieldKind.INT)])
    with vm.scope():
        for i in range(live_count):
            vm.statics.set_ref(f"o{i}", vm.new(cls).address)
    vm.assertions.assert_instances(cls, limit)
    vm.gc()
    fired = len(vm.engine.log.of_kind(AssertionKind.INSTANCES)) > 0
    assert fired == (live_count > limit)
    assert cls.instance_count == live_count


@given(
    removed=st.sets(st.integers(0, 9)),
    cached=st.sets(st.integers(0, 9)),
)
@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_ownedby_fires_exactly_for_cut_but_cached(removed, cached):
    """Ownees removed from the owner AND held by the cache violate; ownees
    removed and unreferenced die quietly; retained ownees pass."""
    vm = VirtualMachine(heap_bytes=4 << 20)
    container_cls = vm.define_class("Cont", [("items", FieldKind.REF)])
    elem_cls = vm.define_class("Elem", [("id", FieldKind.INT)])
    with vm.scope():
        cont = vm.new(container_cls)
        arr = vm.new_array(elem_cls, 10)
        cont["items"] = arr
        vm.statics.set_ref("cont", cont.address)
        cache = vm.new_array(elem_cls, 10)
        vm.statics.set_ref("cache", cache.address)
        elements = []
        for i in range(10):
            e = vm.new(elem_cls, id=i)
            arr[i] = e
            if i in cached:
                cache[i] = e
            vm.assertions.assert_ownedby(cont, e, site=f"e{i}")
            elements.append(e)
    for i in removed:
        cont["items"][i] = None
    vm.gc()
    expected = {elements[i].obj.address for i in (removed & cached)}
    fired = {v.address for v in vm.engine.log.of_kind(AssertionKind.OWNED_BY)}
    assert fired == expected
    # Ownees that died (removed, uncached) must be purged from the registry.
    assert vm.assertions.live_ownees() == 10 - len(removed - cached)


@given(
    keep=st.lists(st.booleans(), min_size=N, max_size=N),
    asserted=st.sets(st.integers(0, N - 1)),
)
@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_log_policy_never_perturbs_reachability(keep, asserted):
    """With LOG, survivor sets are identical with and without assertions."""
    outcomes = []
    for with_assertions in (False, True):
        vm, cls, objects = build_population(keep)
        if with_assertions:
            for i in asserted:
                vm.assertions.assert_dead(objects[i])
                vm.assertions.assert_unshared(objects[i])
        vm.gc()
        outcomes.append(frozenset(o["id"] for o in objects if o.is_live))
    assert outcomes[0] == outcomes[1]


@given(data=st.data())
@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_unshared_fires_iff_multiple_heap_parents(data):
    n_parents = data.draw(st.integers(0, 4))
    vm = VirtualMachine(heap_bytes=4 << 20)
    cls = vm.define_class("U", [("ref", FieldKind.REF)])
    with vm.scope():
        target = vm.new(cls)
        vm.statics.set_ref("anchor", target.address)  # one root, no heap edges
        for i in range(n_parents):
            parent = vm.new(cls)
            parent["ref"] = target
            vm.statics.set_ref(f"p{i}", parent.address)
        vm.assertions.assert_unshared(target)
    vm.gc()
    fired = len(vm.engine.log.of_kind(AssertionKind.UNSHARED))
    # The root marks the target first; each heap edge is a repeat encounter.
    assert (fired > 0) == (n_parents >= 1)
