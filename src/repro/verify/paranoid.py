"""Paranoid full-heap wellformedness walker.

The ``debug.c`` school of collector debugging: after (or before) every
collection, walk *every* structure the allocator owns and cross-check
them against each other.  Where :func:`repro.gc.verify.verify_heap`
checks the object graph (slots, roots, registry), this module checks the
allocator's own bookkeeping:

* **header flag hygiene** — flag-bit consistency (``OWNED`` implies
  ``OWNEE``; hash bits above ``FLAG_MASK`` are legitimate);
* **free-list/live disjointness** — no free cell aliases a live table
  object (an aliased cell hands live memory to the next allocation);
* **free-list fencing** — no quarantined address is available for reuse;
* **free-cell sanity** — free cells are word aligned;
* **orphaned allocator cells** — every committed free-list chunk cell and
  every bump record corresponds to a live table object or a fenced
  address (a phantom record charges bytes nobody owns);
* **zone-routing agreement** — in a zone-sharded space, every cell held
  by shard *i* actually routes to zone *i* under the space's zone map.

Everything here is read-only and costs nothing when not called: the
collectors only invoke it behind ``if self.paranoid:``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Tuple

from repro.heap import header as hdr
from repro.heap.layout import is_aligned

if TYPE_CHECKING:
    from repro.gc.base import Collector
    from repro.runtime.vm import VirtualMachine

#: Collector attributes that may hold an allocation space.
_SPACE_ATTRS = ("space", "nursery", "mature", "from_space", "to_space")


def iter_spaces(collector: "Collector") -> Iterator[Tuple[str, object]]:
    """Yield ``(name, space)`` for every concrete space the collector owns.

    Zone-sharded facades are expanded into their per-zone shards (the
    shards hold the actual free lists and chunk tables); the facade itself
    is reachable via :func:`iter_sharded_spaces` for routing checks.
    """
    for attr in _SPACE_ATTRS:
        space = getattr(collector, attr, None)
        if space is None:
            continue
        shards = getattr(space, "shards", None)
        if shards is not None:
            for zone, shard in enumerate(shards):
                yield f"{attr}/z{zone}", shard
        else:
            yield attr, space


def iter_sharded_spaces(collector: "Collector") -> Iterator[Tuple[str, object]]:
    """Yield ``(name, facade)`` for every zone-sharded space facade."""
    for attr in _SPACE_ATTRS:
        space = getattr(collector, attr, None)
        if space is not None and getattr(space, "shards", None) is not None:
            yield attr, space


def paranoid_problems(vm: "VirtualMachine") -> list[str]:
    """Run the full paranoid walk; returns problem strings (empty = clean)."""
    problems: list[str] = []
    heap = vm.heap
    collector = vm.collector
    quarantine = collector.quarantine

    # -- header flag hygiene ---------------------------------------------------------
    # The bits above FLAG_MASK legitimately hold the identity hash (see
    # repro.heap.header), and MARK/OWNED/FREED lifetime is checked by the
    # core walk in verify_heap.  What remains checkable here is flag
    # *consistency*: the ownership phase sets OWNED exclusively on objects
    # that already carry OWNEE, so an OWNED bit without OWNEE is a
    # corrupted header (e.g. an injected bit flip).
    for obj in heap:
        status = obj.status
        if (status & hdr.OWNED_BIT) and not (status & hdr.OWNEE_BIT):
            problems.append(
                f"paranoid: {obj!r} carries an OWNED bit without the OWNEE bit"
            )

    # -- per-space allocator structures ----------------------------------------------
    for name, space in iter_spaces(collector):
        free_list = getattr(space, "free_list", None)
        if free_list is not None:
            for cell_bytes, cells in free_list._cells.items():
                for address in cells:
                    if not is_aligned(address):
                        problems.append(
                            f"paranoid {name}: unaligned free cell {address:#x}"
                        )
                    if heap.contains(address):
                        problems.append(
                            f"paranoid {name}: free cell {address:#x} "
                            f"({cell_bytes}B) aliases a live object"
                        )
                    if address in quarantine:
                        problems.append(
                            f"paranoid {name}: fenced address {address:#x} "
                            "is available for reuse on the free list"
                        )
        chunks = getattr(space, "_chunks", None)
        if chunks is not None:
            for cells in chunks.values():
                for address in cells:
                    if not heap.contains(address) and address not in quarantine:
                        problems.append(
                            f"paranoid {name}: committed cell {address:#x} "
                            "has no table entry and is not fenced"
                        )
        allocated = getattr(space, "_allocated", None)
        if allocated is not None:
            for address, nbytes in allocated.items():
                if not heap.contains(address) and address not in quarantine:
                    problems.append(
                        f"paranoid {name}: orphan bump cell {address:#x} "
                        f"({nbytes}B) has no table entry and is not fenced"
                    )

    # -- zone-routing agreement -------------------------------------------------------
    for name, facade in iter_sharded_spaces(collector):
        zone_of = facade.zone_of
        for zone, shard in enumerate(facade.shards):
            chunks = getattr(shard, "_chunks", None) or {}
            for cells in chunks.values():
                for address in cells:
                    routed = zone_of(address)
                    if routed != zone:
                        problems.append(
                            f"paranoid {name}: cell {address:#x} held by "
                            f"zone {zone} but routes to zone {routed}"
                        )
            free_list = getattr(shard, "free_list", None)
            if free_list is not None:
                for cells in free_list._cells.values():
                    for address in cells:
                        routed = zone_of(address)
                        if routed != zone:
                            problems.append(
                                f"paranoid {name}: free cell {address:#x} on "
                                f"zone {zone} free list routes to zone {routed}"
                            )

    return problems
