"""GC transparency: program results must not depend on GC configuration.

The collector (any policy, any heap size, any assertion configuration under
the LOG reaction) must be semantically invisible to the mutator.  These
tests run identical workloads across configurations and require bit-equal
program results.
"""

import pytest

from repro.gc.marksweep import MarkSweepCollector
from repro.runtime.vm import VirtualMachine
from repro.workloads.db import DbConfig, run_db
from repro.workloads.jbb import JbbConfig, run_pseudojbb
from repro.workloads.lusearch import LusearchConfig, run_lusearch

JBB = JbbConfig(
    warehouses=1,
    districts_per_warehouse=2,
    customers_per_district=8,
    iterations=1,
    transactions_per_iteration=200,
)
DB = DbConfig(initial_entries=80, operations=400)
LUSEARCH = LusearchConfig(
    threads=6, queries_per_thread=10, ndocs=40, terms_per_doc=6, gc_midway=False
)


def _strip(result):
    data = dict(vars(result))
    data.pop("violations", None)
    return data


class TestHeapSizeTransparency:
    @pytest.mark.parametrize("heap_bytes", [48 << 10, 256 << 10, 4 << 20])
    def test_jbb_result_independent_of_heap_size(self, heap_bytes):
        reference = run_pseudojbb(VirtualMachine(heap_bytes=4 << 20), JBB)
        vm = VirtualMachine(heap_bytes=heap_bytes)
        result = run_pseudojbb(vm, JBB)
        assert _strip(result) == _strip(reference)

    @pytest.mark.parametrize("heap_bytes", [48 << 10, 1 << 20])
    def test_db_result_independent_of_heap_size(self, heap_bytes):
        reference = run_db(VirtualMachine(heap_bytes=4 << 20), DB)
        result = run_db(VirtualMachine(heap_bytes=heap_bytes), DB)
        assert _strip(result) == _strip(reference)


class TestCollectorTransparency:
    @pytest.mark.parametrize("collector", ["marksweep", "semispace", "generational"])
    def test_jbb_result_independent_of_collector(self, collector):
        reference = run_pseudojbb(VirtualMachine(heap_bytes=1 << 20), JBB)
        vm = VirtualMachine(heap_bytes=1 << 20, collector=collector)
        result = run_pseudojbb(vm, JBB)
        assert _strip(result) == _strip(reference)

    @pytest.mark.parametrize("collector", ["semispace", "generational"])
    def test_lusearch_result_independent_of_collector(self, collector):
        reference = run_lusearch(VirtualMachine(heap_bytes=2 << 20), LUSEARCH)
        vm = VirtualMachine(heap_bytes=2 << 20, collector=collector)
        result = run_lusearch(vm, LUSEARCH)
        assert _strip(result) == _strip(reference)

    def test_jbb_result_independent_of_space_policy(self):
        reference = run_pseudojbb(VirtualMachine(heap_bytes=256 << 10), JBB)
        collector = MarkSweepCollector(256 << 10, space_policy="blocks")
        result = run_pseudojbb(VirtualMachine(collector=collector), JBB)
        assert _strip(result) == _strip(reference)


class TestAssertionTransparency:
    def test_jbb_result_independent_of_assertions(self):
        config_plain = JBB
        config_asserted = JbbConfig(
            **{
                **vars(JBB),
                "assert_dead_orders": True,
                "assert_ownedby_orders": True,
                "assert_instances_company": True,
            }
        )
        plain = run_pseudojbb(VirtualMachine(heap_bytes=96 << 10), config_plain)
        asserted = run_pseudojbb(VirtualMachine(heap_bytes=96 << 10), config_asserted)
        assert _strip(plain) == _strip(asserted)

    def test_base_vs_infrastructure_identical_results(self):
        base = run_pseudojbb(
            VirtualMachine(heap_bytes=96 << 10, assertions=False), JBB
        )
        infra = run_pseudojbb(VirtualMachine(heap_bytes=96 << 10), JBB)
        assert _strip(base) == _strip(infra)
