"""End-to-end integration story: the full debugging workflow on one VM.

Replays the lifecycle the paper envisions for a deployed system:

1. ship a service with assertions in place (LOG policy);
2. the collector reports a leak with its path during normal operation;
3. a responder flips the assertion kind to FORCE to keep the service alive
   (the paper's "might allow a program to run longer without running out
   of memory");
4. the underlying bug is fixed; assertions go quiet; memory is stable.
"""

import pytest

from repro.core.reactions import Reaction
from repro.core.reporting import AssertionKind
from repro.errors import OutOfMemoryError
from repro.gc.verify import verify_heap
from repro.heap.object_model import FieldKind
from repro.runtime.vm import VirtualMachine
from repro.workloads.containers import Vector


class Service:
    """A toy request-processing service with a toggleable leak."""

    def __init__(self, vm, leak: bool):
        self.vm = vm
        self.leak = leak
        vm.define_class("Request", [("id", FieldKind.INT), ("payload", FieldKind.REF)])
        self.inflight = Vector.new(vm)
        vm.statics.set_ref("svc.inflight", self.inflight.handle.address)
        self.audit_log = Vector.new(vm)
        vm.statics.set_ref("svc.auditLog", self.audit_log.handle.address)
        self.processed = 0

    def handle_request(self, request_id: int) -> None:
        vm = self.vm
        with vm.scope("request"):
            request = vm.new("Request", id=request_id)
            request["payload"] = vm.new_array(FieldKind.INT, 32)
            self.inflight.append(request)
        # ... processing ...
        finished = self.inflight.remove_at(0)
        if self.leak:
            self.audit_log.append(finished)  # BUG: audit log never trimmed
        vm.assertions.assert_dead(finished, site="Service.finish")
        self.processed += 1


def test_deploy_detect_mitigate_fix_lifecycle():
    # --- 1. deploy with assertions on (LOG) at a production-ish heap.
    vm = VirtualMachine(heap_bytes=96 << 10)
    service = Service(vm, leak=True)

    # --- 2. traffic arrives; the collector reports the leak in-flight.
    for request_id in range(40):
        service.handle_request(request_id)
    vm.gc(reason="scheduled")
    dead = vm.engine.log.of_kind(AssertionKind.DEAD)
    assert dead, "the leak must be detected during normal operation"
    assert "auditLog" in dead[0].path.root_description

    # --- 3. mitigation: FORCE reclaims asserted-dead objects so the
    # service survives instead of creeping toward OOM.
    vm.engine.policy.set_reaction(AssertionKind.DEAD, Reaction.FORCE)
    for request_id in range(40, 400):
        service.handle_request(request_id)
    # Despite the leak still being present, forced reclamation keeps the
    # live set bounded: far fewer than 360 leaked requests survive.
    vm.gc(reason="post-mitigation")
    request_cls = vm.classes.get("Request")
    live_requests = sum(1 for o in vm.heap if o.cls is request_cls)
    assert live_requests < 50
    assert service.processed == 400
    assert verify_heap(vm) == []

    # --- 4. the fix ships: fresh deployment without the bug.
    vm_fixed = VirtualMachine(heap_bytes=96 << 10)
    fixed = Service(vm_fixed, leak=False)
    for request_id in range(400):
        fixed.handle_request(request_id)
    vm_fixed.gc(reason="steady state")
    assert len(vm_fixed.engine.log) == 0
    assert vm_fixed.heap.stats.objects_live < 30
    assert verify_heap(vm_fixed) == []


def test_unmitigated_leak_exhausts_heap():
    """Control: without FORCE, the same traffic eventually OOMs."""
    vm = VirtualMachine(heap_bytes=96 << 10)
    service = Service(vm, leak=True)
    with pytest.raises(OutOfMemoryError):
        for request_id in range(2000):
            service.handle_request(request_id)
    # Even at death, the reports collected so far identify the culprit.
    dead = vm.engine.log.of_kind(AssertionKind.DEAD)
    assert dead
    assert "auditLog" in dead[0].path.root_description


def test_lifecycle_on_generational_collector():
    """The same story holds when minor GCs interleave (checking deferred
    to full-heap collections, §2.2)."""
    vm = VirtualMachine(heap_bytes=192 << 10, collector="generational")
    service = Service(vm, leak=True)
    for request_id in range(60):
        service.handle_request(request_id)
    assert vm.stats.minor_collections >= 0  # minors may or may not have run
    vm.gc(reason="full check")
    assert vm.engine.log.of_kind(AssertionKind.DEAD)
    assert verify_heap(vm) == []
