"""Property-based testing of the space policies against a reference model.

Random alloc/free sequences are run against FreeListSpace and BlockSpace
simultaneously with a simple dict model; the invariants:

* allocated addresses are word aligned, non-overlapping, and unique among
  live allocations;
* ``free`` returns at least the requested size and makes the address
  reusable;
* accounting never undercounts live data and returns to zero when
  everything is freed (free lists) / releases blocks when emptied (blocks).
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.heap.blocks import BLOCK_BYTES, BlockSpace
from repro.heap.space import BumpSpace, FreeListSpace

CAPACITY = 64 * BLOCK_BYTES

#: op: (kind, size_or_index) — "alloc" uses the size, "free" picks a live
#: allocation by index modulo the live count.
ops_strategy = st.lists(
    st.tuples(
        st.sampled_from(["alloc", "free"]),
        st.integers(1, 3000),
    ),
    max_size=100,
)

space_factories = {
    "freelist": lambda: FreeListSpace("p", CAPACITY),
    "blocks": lambda: BlockSpace("p", CAPACITY),
}


@pytest.mark.parametrize("policy", list(space_factories))
class TestSpaceProperties:
    @given(ops=ops_strategy)
    @settings(
        max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    def test_model_conformance(self, policy, ops):
        space = space_factories[policy]()
        live: dict[int, int] = {}  # address -> requested size
        order: list[int] = []
        for kind, arg in ops:
            if kind == "alloc":
                address = space.allocate(arg)
                if address is None:
                    continue  # full is a legal answer
                assert address % 8 == 0
                assert address not in live, "address handed out twice"
                # No overlap with any live allocation.
                for other, other_size in live.items():
                    hi = other + space.cell_size(other)
                    assert not (other <= address < hi), "overlapping cells"
                assert space.cell_size(address) >= arg
                assert space.contains(address)
                live[address] = arg
                order.append(address)
            elif live:
                victim = order[arg % len(order)]
                order.remove(victim)
                del live[victim]
                returned = space.free(victim)
                assert returned > 0
                assert not space.contains(victim)
        # Surviving allocations are still valid.
        for address in live:
            assert space.contains(address)
        assert space.bytes_in_use <= space.capacity_bytes

    @given(sizes=st.lists(st.integers(1, 3000), min_size=1, max_size=40))
    @settings(
        max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    def test_free_everything_enables_full_reuse(self, policy, sizes):
        space = space_factories[policy]()
        addresses = []
        for size in sizes:
            address = space.allocate(size)
            if address is not None:
                addresses.append(address)
        for address in addresses:
            space.free(address)
        # After freeing everything, the same sequence fits again.
        again = [space.allocate(size) for size in sizes]
        assert all(a is not None for a in again[: len(addresses)])


class TestBumpSpaceProperties:
    @given(sizes=st.lists(st.integers(1, 500), max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_monotone_and_disjoint(self, sizes):
        space = BumpSpace("b", 1 << 20)
        last_end = None
        for size in sizes:
            address = space.allocate(size)
            assert address is not None
            if last_end is not None:
                assert address >= last_end
            last_end = address + size
