"""Snapshot capture: piggybacked on tracing, or standalone between GCs.

Piggybacked capture follows the tracer-specialization protocol of
``INLINE_HEADER_CHECKS``: when a :class:`SnapshotPolicy` decides a
collection should be captured, the collector hands the tracer a
:class:`SnapshotSink` and the drain switches to a fused variant
(:meth:`repro.gc.tracer.Tracer._drain_snapshot`) that appends one compact
row per live object as a by-product of the marking it is already doing —
O(1) extra memory per object, no second heap walk.  Rows are recorded *at
mark time* so the snapshot is consistent even under the copying
collectors, which relocate objects (and restamp ``alloc_seq``) later in
the same pause.  Serialization to the JSONL format is deliberately *not*
in-pause: the collector calls :meth:`SnapshotPolicy.finish_capture` after
its ``gc_seconds`` timer closes, so capture adds only the row-append cost
to GC time (bounded by the ``abl-snapshot`` bench) and the write cost to
mutator time.

With no policy installed nothing changes anywhere: the tracer's drain
dispatch tests one attribute against ``None`` and the collectors never
consult the policy — the zero-overhead-when-off discipline the telemetry
subsystem established.

:func:`capture_snapshot` is the standalone path — a read-only visited-set
walk from the VM's roots that never touches mark bits, usable between
collections (the CLI and the ``on_violation`` trigger use it).
"""

from __future__ import annotations

import os
import time
from typing import TYPE_CHECKING, Optional

from repro.heap import header as hdr
from repro.heap.layout import NULL
from repro.snapshot.dominators import build_dominator_tree
from repro.snapshot.format import SnapshotWriter, load_snapshot
from repro.snapshot.retained import retained_sizes

if TYPE_CHECKING:
    from repro.gc.base import Collector
    from repro.runtime.vm import VirtualMachine

#: Per-collection GC bits are an artifact of the capture moment, not a
#: property of the object; they are masked out of serialized status words.
_TRANSIENT_BITS = hdr.MARK_BIT | hdr.OWNED_BIT


class SnapshotSink:
    """In-pause buffer for one piggybacked capture.

    Two row encodings, chosen by how much the collector is allowed to
    disturb between mark time and flush time:

    * ``moving=True`` (semispace, generational) — the tracer appends
      ``(address, obj, alloc_seq, children)`` tuples: address/
      ``alloc_seq``/children frozen at mark time (the collector relocates
      and restamps later in the same pause), the object reference kept
      for the stable attributes (type, size, sticky header bits,
      allocation site) read at flush time.  ``children`` is ``None`` for
      leaf objects and always a fresh list otherwise — never an alias of
      ``obj.slots``, which the mutator resumes scribbling on after the
      pause.
    * ``moving=False`` (marksweep) — nothing relocates, nothing is
      restamped, and :meth:`flush` runs before the mutator does, so the
      mark-time view is still fully intact in the heap itself.  The
      tracer appends the bare address — one ``int`` per live object, the
      cheapest record a drain can make — and flush re-reads everything
      through ``heap``.
    """

    __slots__ = (
        "path",
        "collector_name",
        "gc_number",
        "trigger",
        "heap_bytes",
        "heap",
        "moving",
        "roots",
        "rows",
        "started",
    )

    def __init__(
        self,
        path: str,
        collector_name: str = "unknown",
        gc_number: int = 0,
        trigger: str = "manual",
        heap_bytes: int = 0,
        heap=None,
        moving: bool = True,
    ):
        self.path = path
        self.collector_name = collector_name
        self.gc_number = gc_number
        self.trigger = trigger
        self.heap_bytes = heap_bytes
        self.heap = heap
        #: False switches the drain to bare-address rows (see class doc).
        self.moving = moving or heap is None
        self.roots: list[tuple[str, int]] = []
        self.rows: list = []
        self.started = time.perf_counter()

    def flush(self) -> dict:
        """Serialize the buffered rows; returns the writer's summary.

        Any serialization failure aborts the writer (unlinking its temp
        files) before propagating, so a fault mid-flush can never publish
        a truncated snapshot at the final path.
        """
        writer = SnapshotWriter(
            self.path,
            collector=self.collector_name,
            gc_number=self.gc_number,
            trigger=self.trigger,
            heap_bytes=self.heap_bytes,
        )
        try:
            for desc, addr in self.roots:
                writer.write_root(desc, addr)
            if self.moving:
                for addr, obj, alloc_seq, children in self.rows:
                    edges = (
                        [c for c in children if c != NULL]
                        if children is not None
                        else []
                    )
                    writer.write_object(
                        addr,
                        obj.cls.name,
                        obj.size_bytes,
                        obj.status & ~_TRANSIENT_BITS,
                        alloc_seq,
                        obj.alloc_site,
                        edges,
                    )
            else:
                table = self.heap.address_table()
                for addr in self.rows:
                    obj = table[addr]
                    edges = [c for c in obj.reference_slots() if c != NULL]
                    writer.write_object(
                        addr,
                        obj.cls.name,
                        obj.size_bytes,
                        obj.status & ~_TRANSIENT_BITS,
                        obj.alloc_seq,
                        obj.alloc_site,
                        edges,
                    )
            return writer.finish()
        except BaseException:
            writer.abort()
            raise


def capture_snapshot(
    vm: "VirtualMachine", path: str, trigger: str = "manual"
) -> dict:
    """Capture a snapshot *now*, without a collection.

    A plain visited-set walk over the strong-reference graph from the VM's
    roots — mark bits are never read or written, so this is safe at any
    point between collections (including with lazy sweep debt outstanding:
    pending garbage is unreachable and the walk never sees it).  Returns
    the snapshot summary (object/root counts, bytes, per-type rollup).
    """
    started = time.perf_counter()
    spans = vm.span_tracer
    if spans is not None:
        spans.begin("snapshot_capture", cat="snapshot", args={"trigger": trigger})
    try:
        summary = _capture_walk(vm, path, trigger)
    finally:
        if spans is not None:
            spans.end()
    _record_snapshot_event(vm, path, trigger, summary, started)
    return summary


def _capture_walk(vm: "VirtualMachine", path: str, trigger: str) -> dict:
    """The walk itself (split out so the span wrapper stays trivial)."""
    collector = vm.collector
    heap = vm.heap
    writer = SnapshotWriter(
        path,
        collector=collector.name,
        gc_number=vm.stats.collections,
        trigger=trigger,
        heap_bytes=collector.heap_bytes,
    )
    try:
        visited: set[int] = set()
        stack: list[int] = []
        for desc, addr in vm.root_entries():
            if addr == NULL:
                continue
            writer.write_root(desc, addr)
            if addr not in visited:
                visited.add(addr)
                stack.append(addr)
        get = heap.get
        while stack:
            obj = get(stack.pop())
            edges = [c for c in obj.reference_slots() if c != NULL]
            writer.write_object(
                obj.address,
                obj.cls.name,
                obj.size_bytes,
                obj.status & ~_TRANSIENT_BITS,
                obj.alloc_seq,
                obj.alloc_site,
                edges,
            )
            for child in edges:
                if child not in visited:
                    visited.add(child)
                    stack.append(child)
        return writer.finish()
    except BaseException:
        writer.abort()
        raise


def _record_snapshot_event(
    vm: "VirtualMachine", path: str, trigger: str, summary: dict, started: float
) -> None:
    telemetry = vm.telemetry
    if telemetry is None or not telemetry.enabled:
        return
    telemetry.record_snapshot(
        collector=vm.collector.name,
        seq=vm.stats.collections,
        trigger=trigger,
        path=path,
        objects=summary["objects"],
        roots=summary["roots"],
        total_bytes=summary["total_bytes"],
        file_bytes=os.path.getsize(path),
        duration_s=time.perf_counter() - started,
    )


class SnapshotPolicy:
    """Decides when the VM captures heap snapshots, and where they go.

    Three triggers, combinable:

    * ``every_n_gcs=N`` — piggyback a capture on every Nth full collection.
    * ``on_violation=True`` — after a collection that detected new
      assertion violations, capture a standalone snapshot and annotate
      each new violation with the offending object's retained size and
      dominator chain (the log's rendered lines are refreshed in place).
    * :meth:`request_capture` — piggyback on the *next* full collection
      ("manual").

    Install with ``vm.install_snapshot_policy(policy)`` (or
    ``policy.attach(vm)``); uninstalled VMs never pay a cycle.
    """

    def __init__(
        self,
        directory: str,
        every_n_gcs: Optional[int] = None,
        on_violation: bool = False,
        prefix: str = "heap",
    ):
        if every_n_gcs is not None and every_n_gcs < 1:
            raise ValueError(f"every_n_gcs must be >= 1, got {every_n_gcs}")
        self.directory = directory
        self.every_n_gcs = every_n_gcs
        self.on_violation = on_violation
        self.prefix = prefix
        # Created now so snapshot_path never pays a syscall inside a pause.
        os.makedirs(directory, exist_ok=True)
        #: Paths of every snapshot this policy wrote, in order.
        self.captured: list[str] = []
        self.vm: Optional["VirtualMachine"] = None
        self._capture_next = False
        self._violations_seen = 0

    def attach(self, vm: "VirtualMachine") -> "SnapshotPolicy":
        vm.install_snapshot_policy(self)
        return self

    def request_capture(self) -> None:
        """Arm a one-shot capture for the next full collection."""
        self._capture_next = True

    def snapshot_path(self, gc_number: int, trigger: str) -> str:
        return os.path.join(
            self.directory, f"{self.prefix}-gc{gc_number:05d}-{trigger}.jsonl"
        )

    # -- collector protocol (called from gc/base.py) ---------------------------------

    def begin_capture(self, collector: "Collector", reason: str) -> Optional[SnapshotSink]:
        """Called as the collector builds its tracer; a non-``None`` return
        switches this collection's drain to the snapshot variant."""
        gc_number = collector.stats.collections
        if self._capture_next:
            trigger = "manual"
        elif self.every_n_gcs is not None and gc_number % self.every_n_gcs == 0:
            trigger = "interval"
        else:
            return None
        self._capture_next = False
        return SnapshotSink(
            self.snapshot_path(gc_number, trigger),
            collector_name=collector.name,
            gc_number=gc_number,
            trigger=trigger,
            heap_bytes=collector.heap_bytes,
            heap=collector.heap,
            moving=collector.moving,
        )

    def finish_capture(self, collector: "Collector", sink: SnapshotSink) -> dict:
        """Serialize a filled sink; called after the pause timer closes."""
        summary = sink.flush()
        self.captured.append(sink.path)
        telemetry = collector.telemetry
        if telemetry is not None and telemetry.enabled:
            telemetry.record_snapshot(
                collector=collector.name,
                seq=sink.gc_number,
                trigger=sink.trigger,
                path=sink.path,
                objects=summary["objects"],
                roots=summary["roots"],
                total_bytes=summary["total_bytes"],
                file_bytes=os.path.getsize(sink.path),
                duration_s=time.perf_counter() - sink.started,
            )
        return summary

    # -- violation trigger (a vm.gc_observers entry) ---------------------------------

    def _after_gc(self, vm: "VirtualMachine", freed: set[int]) -> None:
        if not self.on_violation or vm.engine is None:
            return
        log = vm.engine.log
        total = len(log.violations)
        if total < self._violations_seen:  # log.clear() happened
            self._violations_seen = total
            return
        if total == self._violations_seen:
            return
        first_new = self._violations_seen
        self._violations_seen = total
        path = self.snapshot_path(vm.stats.collections, "violation")
        capture_snapshot(vm, path, trigger="violation")
        self.captured.append(path)
        self.annotate_violations(vm, path, first_new)

    def annotate_violations(
        self, vm: "VirtualMachine", path: str, first_index: int = 0
    ) -> int:
        """Annotate violations ``[first_index:]`` with retained size and
        dominator chain from the snapshot at ``path``; re-renders the log's
        lines in place.  Returns the number of violations annotated."""
        log = vm.engine.log
        snapshot = load_snapshot(path)
        tree = build_dominator_tree(snapshot)
        retained = retained_sizes(snapshot, tree)
        annotated = 0
        for idx in range(first_index, len(log.violations)):
            violation = log.violations[idx]
            violation.details["snapshot"] = path
            addr = violation.address
            if addr is not None and addr in tree:
                violation.details["retained_bytes"] = retained[addr]
                violation.details["dominator_chain"] = [
                    f"{snapshot.objects[a].type_name}@{a:#x}" for a in tree.chain(addr)
                ]
            log.lines[idx] = violation.render()
            annotated += 1
        return annotated
