"""Admission control over the service's aggregate heap budget.

The unit of admission is *committed heap bytes*: each tenant session
declares the heap its VM will own (budget + headroom), and the
controller admits only while the sum of committed bytes stays under the
configured service budget.  Overload therefore degrades into explicit
rejections with Retry-After hints — never into a crashed server or an
OOM inside an unrelated tenant's collection, which would violate the
isolation the whole service exists to provide.

The controller is a plain mutex-guarded ledger, callable from both
asyncio callbacks and workload threads.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Optional

#: Hint sent with a budget rejection: overload here is session-shaped
#: (hundreds of ms to a few seconds), so a sub-second retry is honest.
DEFAULT_RETRY_AFTER_S = 0.25


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one admission attempt."""

    admitted: bool
    #: ``"admitted"``, ``"budget"`` (heap budget exhausted) or
    #: ``"sessions"`` (concurrent-session cap reached).
    reason: str
    #: Seconds the client should wait before retrying (0 when admitted).
    retry_after_s: float = 0.0
    #: Time spent acquiring and mutating the ledger for this decision —
    #: lock wait included, so contention on the admission mutex shows up
    #: as a wide ``admission_commit`` span in the distributed trace.
    commit_seconds: float = 0.0


class AdmissionController:
    """Mutex-guarded committed-heap ledger with a session-count cap."""

    def __init__(
        self,
        budget_bytes: int,
        max_sessions: Optional[int] = None,
        retry_after_s: float = DEFAULT_RETRY_AFTER_S,
    ):
        self.budget_bytes = budget_bytes
        self.max_sessions = max_sessions
        self.retry_after_s = retry_after_s
        self.committed_bytes = 0
        self.active_sessions = 0
        self.peak_sessions = 0
        self.peak_committed_bytes = 0
        self.admitted_total = 0
        self.rejected_total = 0
        self.rejected_by_reason: dict[str, int] = {}
        self.released_total = 0
        self._lock = threading.Lock()

    def try_admit(self, heap_bytes: int) -> AdmissionDecision:
        """Commit ``heap_bytes`` if the budget allows; else reject."""
        attempt_start = time.perf_counter()
        with self._lock:
            if (
                self.max_sessions is not None
                and self.active_sessions >= self.max_sessions
            ):
                return self._reject("sessions", attempt_start)
            if self.committed_bytes + heap_bytes > self.budget_bytes:
                return self._reject("budget", attempt_start)
            self.committed_bytes += heap_bytes
            self.active_sessions += 1
            self.admitted_total += 1
            self.peak_sessions = max(self.peak_sessions, self.active_sessions)
            self.peak_committed_bytes = max(
                self.peak_committed_bytes, self.committed_bytes
            )
            return AdmissionDecision(
                admitted=True,
                reason="admitted",
                commit_seconds=time.perf_counter() - attempt_start,
            )

    def _reject(self, reason: str, attempt_start: float) -> AdmissionDecision:
        # Caller holds the lock.
        self.rejected_total += 1
        self.rejected_by_reason[reason] = self.rejected_by_reason.get(reason, 0) + 1
        return AdmissionDecision(
            admitted=False,
            reason=reason,
            retry_after_s=self.retry_after_s,
            commit_seconds=time.perf_counter() - attempt_start,
        )

    def release(self, heap_bytes: int) -> None:
        """Return a session's committed bytes to the budget (eviction)."""
        with self._lock:
            self.committed_bytes -= heap_bytes
            self.active_sessions -= 1
            self.released_total += 1
            if self.committed_bytes < 0 or self.active_sessions < 0:
                raise AssertionError(
                    "admission ledger went negative: release without matching admit"
                )

    def headroom_bytes(self) -> int:
        with self._lock:
            return self.budget_bytes - self.committed_bytes

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "budget_bytes": self.budget_bytes,
                "committed_bytes": self.committed_bytes,
                "active_sessions": self.active_sessions,
                "peak_sessions": self.peak_sessions,
                "peak_committed_bytes": self.peak_committed_bytes,
                "admitted_total": self.admitted_total,
                "rejected_total": self.rejected_total,
                "rejected_by_reason": dict(self.rejected_by_reason),
                "released_total": self.released_total,
            }
