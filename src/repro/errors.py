"""Exception hierarchy for the GC-assertions runtime.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch the whole family with one handler.  The hierarchy mirrors
the layers of the system: heap-level faults, runtime (VM) faults, language
(MiniJ) faults, and assertion-policy faults such as
:class:`AssertionViolationHalt`, which is raised by the ``HALT`` reaction
policy when the collector detects a violated GC assertion.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class HeapError(ReproError):
    """Base class for heap-level faults (allocation, addressing, layout)."""


class OutOfMemoryError(HeapError):
    """Raised when an allocation cannot be satisfied even after a full GC."""


class HeapCorruption(HeapError):
    """Raised when heap integrity checking finds broken invariants.

    Carries the structured list of problems and (when the hardened sentinel
    produced it) the set of addresses that were fenced into quarantine.
    """

    def __init__(self, message: str, problems: list | None = None, fenced: set | None = None):
        self.problems: list[str] = list(problems or [])
        self.fenced: set[int] = set(fenced or ())
        super().__init__(message)


class QuarantineOverflowError(HeapCorruption):
    """Raised when the corruption quarantine hits its bounded capacity.

    The quarantine deliberately leaks fenced cells; an unbounded fence set
    under sustained corruption faults would itself become a leak.  Hitting
    the bound means the heap is degrading faster than the sentinel can
    contain — the process should be recycled, not patched further.
    """


class HeapExhausted(OutOfMemoryError):
    """Structured out-of-memory error with census + top-retained triage.

    Subclasses :class:`OutOfMemoryError` so existing ``except OutOfMemoryError``
    handlers keep working; hardened collectors attach a per-type census and the
    top retained-size entries so the failure is actionable without a core dump.
    """

    def __init__(
        self,
        message: str,
        *,
        requested_bytes: int = 0,
        type_name: str = "",
        heap_bytes: int = 0,
        census: dict | None = None,
        top_retained: list | None = None,
    ):
        self.requested_bytes = requested_bytes
        self.type_name = type_name
        self.heap_bytes = heap_bytes
        self.census: dict[str, tuple[int, int]] = dict(census or {})
        self.top_retained: list[tuple[str, int]] = list(top_retained or [])
        super().__init__(message)

    def triage(self) -> str:
        """Render the census/top-retained payload as indented report lines."""
        lines = []
        if self.census:
            lines.append("census (top types by bytes):")
            ranked = sorted(self.census.items(), key=lambda kv: -kv[1][1])[:8]
            for name, (count, nbytes) in ranked:
                lines.append(f"  {name:<24} {count:>8} objects {nbytes:>12} bytes")
        if self.top_retained:
            lines.append("top retained:")
            for label, nbytes in self.top_retained[:8]:
                lines.append(f"  {label:<40} retains {nbytes:>12} bytes")
        return "\n".join(lines)


class InvalidAddressError(HeapError):
    """Raised when an address does not name a live, allocated object."""


class UseAfterFreeError(HeapError):
    """Raised when a handle or field dereferences a reclaimed object.

    In a real VM this would be silent memory corruption; the simulator
    poisons freed objects so the bug surfaces immediately.
    """


class LayoutError(HeapError):
    """Raised for malformed class/field layouts (duplicate fields, bad kinds)."""


class RuntimeFault(ReproError):
    """Base class for VM-level faults raised by mutator operations."""


class NullReferenceError(RuntimeFault):
    """Raised when a null reference is dereferenced (field read/write/call)."""


class TypeFault(RuntimeFault):
    """Raised when a field/array access does not match the declared kind."""


class RegionError(RuntimeFault):
    """Raised on misuse of start-region / assert-alldead bracketing."""


class EngineDegraded(ReproError):
    """Records an assertion-engine degradation (never raised across a pause).

    The hardened engine swallows engine/reaction exceptions for the rest of
    the current collection and records one of these; it re-arms on the next
    pause.  Exposed so tooling can inspect ``engine.degraded_events``.
    """

    def __init__(self, reason: str, *, phase: str = "", gc_number: int = -1):
        self.reason = reason
        self.phase = phase
        self.gc_number = gc_number
        super().__init__(f"assertion engine degraded during {phase or 'gc'}: {reason}")


class ConfigurationError(ReproError, ValueError):
    """Raised for invalid configuration values (modes, fractions, budgets).

    Also a :class:`ValueError` so callers validating arguments the standard
    way keep working.
    """


class AssertionUsageError(ReproError):
    """Raised when a GC assertion is registered incorrectly.

    Example: asserting ownership for an object already owned by a different
    owner, or passing a negative instance limit.
    """


class AssertionViolationHalt(ReproError):
    """Raised by the ``HALT`` reaction policy when a GC assertion fails.

    Carries the :class:`~repro.core.reporting.Violation` that triggered it.
    """

    def __init__(self, violation: object):
        self.violation = violation
        super().__init__(str(violation))


class ServiceError(ReproError):
    """Base class for multi-tenant assertion-service faults."""


class WireProtocolError(ServiceError):
    """Raised on malformed ``repro-wire/1`` traffic.

    Covers framing faults (truncated stream, zero-length or oversized
    frames, non-JSON payloads) and semantic faults (missing required
    keys, unknown frame types).  Unknown *keys* inside a known frame are
    never an error — the wire protocol follows the GcEvent v1→v2
    discipline: readers ignore what they do not understand.
    """


class AdmissionRejected(ServiceError):
    """Raised (or framed) when admission control declines a session.

    Carries ``retry_after_s`` — the server's hint for when capacity is
    likely to exist again (Retry-After semantics).
    """

    def __init__(self, message: str, *, reason: str = "budget", retry_after_s: float = 0.0):
        self.reason = reason
        self.retry_after_s = retry_after_s
        super().__init__(message)


class SessionKilled(ServiceError):
    """Raised inside a tenant session's workload when the session is killed.

    The ``session-kill`` fault kind (and an operator eviction) raise this
    from the victim VM's own collection path; the session manager catches
    it, moves the session to ``evicted``, and releases its heap budget.
    Other tenants never observe it — that isolation is what the service
    chaos cell proves.
    """


class MiniJError(ReproError):
    """Base class for MiniJ language errors."""


class MiniJSyntaxError(MiniJError):
    """Raised by the lexer/parser on malformed source text."""

    def __init__(self, message: str, line: int, column: int):
        self.line = line
        self.column = column
        super().__init__(f"{message} (line {line}, column {column})")


class MiniJCompileError(MiniJError):
    """Raised by the bytecode compiler on semantic errors."""


class MiniJRuntimeError(MiniJError):
    """Raised by the bytecode interpreter on dynamic errors."""
