"""Figure 2: run-time overhead of the GC-assertion infrastructure.

Paper: "Overall execution time increases by 2.75%, and mutator time
increases 1.12%" (geometric means over DaCapo + SPECjvm98 + pseudojbb).

Shape claims checked here:

* the infrastructure's *total-time* overhead is small (well under the
  GC-time overhead of Figure 3);
* the overhead is concentrated in the collector — mutator-side work is
  unchanged, which we verify exactly via deterministic work counters
  (identical allocation volume, extra work only in header checks and
  path tagging).
"""

from __future__ import annotations

from benchmarks.conftest import trials
from repro.bench import Config, infrastructure_figures, run_trial
from repro.workloads.suite import build_suite

#: A representative cross-section (full suite runs via REPRO_BENCH_TRIALS).
BENCHMARKS = [
    "antlr",
    "bloat",
    "fop",
    "jess",
    "jython",
    "xalan",
    "mtrt",
    "jack",
    "db",
    "lusearch",
    "pseudojbb",
]

_cache: dict = {}


def figures():
    if "figs" not in _cache:
        _cache["figs"] = infrastructure_figures(trials=trials(), benchmarks=BENCHMARKS)
    return _cache["figs"]


def test_fig2_runtime_overhead(once, figure_report):
    fig2 = once(lambda: figures()["fig2"])
    figure_report.append(fig2.render())
    # Shape: small aggregate total-time overhead.  Wall-clock noise in a
    # Python simulator is larger than the paper's 2.75%, so the bound is
    # generous but still asserts "small, not multiplicative".
    assert fig2.geomean_overhead_pct < 30.0
    # Every benchmark completed both configurations.
    assert len(fig2.rows) == len(BENCHMARKS)
    for row in fig2.rows:
        assert row.base_mean > 0 and row.other_mean > 0


def test_fig2_infrastructure_work_is_gc_side_only(once):
    """Counter-level version of the figure: the Infrastructure config does
    identical mutator work (same allocations, same collections trigger
    points) and adds only header checks + path tagging inside the GC."""
    suite = build_suite()
    entry = suite["jess"]

    def measure():
        base = run_trial(entry, Config.BASE)
        infra = run_trial(entry, Config.INFRASTRUCTURE)
        return base, infra

    base, infra = once(measure)
    # Same heap behavior…
    assert base.counters["collections"] == infra.counters["collections"]
    assert base.counters["objects_traced"] == infra.counters["objects_traced"]
    assert base.counters["objects_swept"] == infra.counters["objects_swept"]
    # …plus infrastructure-only work.
    assert base.counters["header_bit_checks"] == 0
    assert infra.counters["header_bit_checks"] > 0
    assert base.counters["path_entries_tagged"] == 0
    assert infra.counters["path_entries_tagged"] == infra.counters["objects_traced"]
