"""Figure 1: full-path error reporting for the orderTable leak.

Regenerates the paper's example report — a destroyed ``spec.jbb.Order``
still reachable through ``Company -> ... -> longBTree -> longBTreeNode ->
... -> Order`` — and benchmarks the cost of path reconstruction.
"""

from __future__ import annotations

from repro.core.reporting import AssertionKind
from repro.runtime.vm import VirtualMachine
from repro.workloads.jbb import JbbConfig, run_pseudojbb

LEAKY = JbbConfig(
    warehouses=1,
    districts_per_warehouse=2,
    customers_per_district=8,
    iterations=1,
    transactions_per_iteration=250,
    leak_order_table=True,
    leak_last_order=True,
    assert_dead_orders=True,
    gc_per_iteration=True,
)


def _run_leaky():
    vm = VirtualMachine(heap_bytes=8 << 20)
    run_pseudojbb(vm, LEAKY)
    return vm


def test_fig1_order_leak_path(once, figure_report):
    vm = once(_run_leaky)
    dead = vm.engine.log.of_kind(AssertionKind.DEAD)
    assert dead, "the orderTable leak must produce assert-dead violations"
    # Find a violation whose path runs through the B-tree, like Figure 1.
    fig1 = None
    for violation in dead:
        names = violation.path.type_names()
        if "spec.jbb.infra.Collections.longBTreeNode" in names:
            fig1 = violation
            break
    assert fig1 is not None, "at least one leak path must run through the orderTable"

    names = fig1.path.type_names()
    # The paper's path shape: spine of the Company graph, then B-tree nodes,
    # then the leaked Order.
    assert names[-1] == "spec.jbb.Order"
    assert "spec.jbb.Company" in names
    assert "spec.jbb.District" in names
    assert "spec.jbb.infra.Collections.longBTree" in names
    # Figure 1 shows Object[] hops between BTree nodes; ours are typed arrays.
    tree_idx = names.index("spec.jbb.infra.Collections.longBTree")
    assert any("longBTreeNode" in n for n in names[tree_idx:])

    rendered = fig1.render()
    assert rendered.startswith(
        "Warning: an object that was asserted dead is reachable."
    )
    assert "Type: spec.jbb.Order" in rendered
    figure_report.append("Figure 1 (reproduced report):\n" + rendered)


def test_fig1_paths_are_instance_precise(once):
    """'Our path consists of object instances, not just types.'"""
    vm = once(_run_leaky)
    dead = vm.engine.log.of_kind(AssertionKind.DEAD)
    violation = dead[0]
    addresses = [entry.address for entry in violation.path.entries]
    assert len(addresses) == len(violation.path)
    # Each step is a concrete, distinct live object.
    assert len(set(addresses)) == len(addresses)
    for address in addresses:
        assert vm.heap.contains(address)
