"""The ``repro-wire/1`` protocol: length-prefixed JSON frames.

Every frame on the wire is a 4-byte big-endian length followed by that
many bytes of UTF-8 JSON encoding one object.  Length-prefixing makes
framing trivial to implement in any client language and makes the two
failure modes *explicit* rather than silent: a truncated stream leaves
bytes in the decoder (rejected at EOF), and an oversized length prefix
is rejected before a single payload byte is buffered — a malicious or
confused client cannot make the server allocate unboundedly.

Forward compatibility follows the same discipline as the telemetry
schema's ``gc-event`` v1 → v2 evolution: *unknown keys in a frame are
preserved, never rejected*, so a newer client can attach fields an older
server ignores.  Only structural violations (bad JSON, non-object
payload, oversize, truncation) are protocol errors.

Two key families ride on that discipline rather than on a schema bump:

* **Trace context** — clients stamp ``trace_id`` (32-hex) and
  ``parent_span_id`` (16-hex) onto ``open``/``submit`` frames (see
  :mod:`repro.tracing.distributed`); servers echo ``trace_id`` on the
  frames they stream back.  Old peers ignore both.
* **Sequence numbers** — every outbound *session* frame carries a
  monotonic per-session ``seq``, assigned before shedding, so a frame
  dropped under backpressure leaves a visible gap in the numbering.
  :class:`SequenceTracker` is the client-side ledger that counts those
  gaps: shed telemetry becomes an observed quantity, not a silent hole.
"""

from __future__ import annotations

import json
import struct

from repro.errors import WireProtocolError

#: Wire schema identifier, exchanged in the hello/welcome handshake.
WIRE_SCHEMA = "repro-wire/1"

#: Hard ceiling on a single frame's payload, prefix excluded.  Generous
#: for any legitimate frame (programs, stats documents) while bounding
#: what one client can force the peer to buffer.
MAX_FRAME_BYTES = 1 << 20

_LEN = struct.Struct(">I")


def encode_frame(payload: dict, max_frame_bytes: int = MAX_FRAME_BYTES) -> bytes:
    """Serialize one frame: 4-byte big-endian length + UTF-8 JSON body."""
    if not isinstance(payload, dict):
        raise WireProtocolError(
            f"frame payload must be a JSON object, not {type(payload).__name__}"
        )
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(body) > max_frame_bytes:
        raise WireProtocolError(
            f"encoded frame is {len(body)} bytes, over the {max_frame_bytes}-byte limit"
        )
    return _LEN.pack(len(body)) + body


class FrameDecoder:
    """Incremental decoder: feed arbitrary byte chunks, get whole frames.

    Stream-safe by construction — ``feed`` buffers partial prefixes and
    partial bodies across calls, so TCP segmentation never corrupts
    framing.  Three structural faults raise :class:`WireProtocolError`:

    * a length prefix over ``max_frame_bytes`` (oversized frame),
    * a zero-length frame (no legal frame is empty),
    * a body that is not a JSON object.

    Call :meth:`finish` at EOF: leftover buffered bytes mean the peer
    truncated a frame mid-stream, which is also a protocol error.
    """

    def __init__(self, max_frame_bytes: int = MAX_FRAME_BYTES):
        self.max_frame_bytes = max_frame_bytes
        self.frames_decoded = 0
        self.bytes_consumed = 0
        self._buffer = bytearray()

    def feed(self, data: bytes) -> list[dict]:
        """Consume a chunk; return every complete frame it finishes."""
        self._buffer.extend(data)
        self.bytes_consumed += len(data)
        frames: list[dict] = []
        while len(self._buffer) >= _LEN.size:
            (length,) = _LEN.unpack_from(self._buffer)
            if length == 0:
                raise WireProtocolError("zero-length frame")
            if length > self.max_frame_bytes:
                raise WireProtocolError(
                    f"frame length {length} exceeds the "
                    f"{self.max_frame_bytes}-byte limit"
                )
            if len(self._buffer) < _LEN.size + length:
                break
            body = bytes(self._buffer[_LEN.size:_LEN.size + length])
            del self._buffer[:_LEN.size + length]
            try:
                payload = json.loads(body.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise WireProtocolError(f"undecodable frame body: {exc}") from exc
            if not isinstance(payload, dict):
                raise WireProtocolError(
                    f"frame body must be a JSON object, got {type(payload).__name__}"
                )
            self.frames_decoded += 1
            frames.append(payload)
        return frames

    @property
    def pending_bytes(self) -> int:
        return len(self._buffer)

    def finish(self) -> None:
        """Assert stream closure landed on a frame boundary."""
        if self._buffer:
            raise WireProtocolError(
                f"stream truncated mid-frame with {len(self._buffer)} bytes buffered"
            )


class SequenceTracker:
    """Per-session gap detection over the ``seq`` key on inbound frames.

    Sessions number every outbound frame *before* shedding, so a slow
    consumer sees ``..., 7, 9, ...`` where frame 8 was dropped; the gap
    count equals the number of shed (or connection-drop discarded)
    frames.  Frames without a ``session`` or an integer ``seq`` — hello
    replies, frames from pre-seq servers — are ignored, keeping the
    tracker forward- and backward-compatible.
    """

    def __init__(self) -> None:
        self.last_seq: dict = {}
        self.gaps: dict = {}
        self.frames_seen = 0
        self.total_gaps = 0

    def observe(self, frame: dict) -> int:
        """Feed one inbound frame; returns the gap it revealed (0 = none)."""
        session = frame.get("session")
        seq = frame.get("seq")
        if session is None or not isinstance(seq, int):
            return 0
        self.frames_seen += 1
        last = self.last_seq.get(session)
        self.last_seq[session] = seq
        # First frame at seq N means frames 0..N-1 were shed before
        # anything reached us; later frames reveal gap = seq - last - 1.
        gap = seq if last is None else seq - last - 1
        if gap > 0:
            self.gaps[session] = self.gaps.get(session, 0) + gap
            self.total_gaps += gap
        return max(0, gap)
