"""Figure 5: GC-time overhead with the paper's assertions added.

Paper: db GC time +49.7% vs Base (+30.1% vs Infrastructure) — "a low cost
for checking the ownership properties of over 15,000 objects"; pseudojbb
+15.3% vs Base (+4.40% vs Infrastructure).

Shape claims:

* assertion checking concentrates in GC time (contrast with Figure 4);
* db (ownership-dominated: every live entry is an ownee, so the ownership
  phase re-orders most of the trace) pays substantially more GC-time
  overhead than pseudojbb (few live ownees per GC, §3.1.2's explanation:
  Orders are short-lived and churn out of the orderTable);
* the WithAssertions-vs-Infrastructure gap is the pure checking cost.
"""

from __future__ import annotations

from benchmarks.test_fig4_runtime_withassertions import figures


def test_fig5_gctime_withassertions(once, figure_report):
    figs = once(figures)
    fig5 = figs["fig5"]
    figure_report.append(fig5.render())
    figure_report.append(figs["fig5-infra"].render())
    # Shape: checking work shows up in GC time.
    assert fig5.row("db").overhead_pct > 0
    # Shape: ownership-heavy db pays more than churn-heavy pseudojbb,
    # the paper's central Figure-5 contrast.
    assert fig5.row("db").overhead_pct > fig5.row("pseudojbb").overhead_pct


def test_fig5_phase_decomposition(once, figure_report):
    """Where the Figure-5 overhead lives, by collection phase.

    The ownership phase is the extra pre-mark traversal §2.5.2 adds; for
    ownership-heavy db it should be a visible fraction of GC time (it
    shoulders most of the tracing), while for pseudojbb (few live ownees)
    it stays small.
    """
    from repro.bench.methodology import Config, build_vm
    from repro.workloads.suite import build_suite

    def run():
        rows = {}
        suite = build_suite()
        for name in ("db", "pseudojbb"):
            entry = suite[name]
            vm = build_vm(entry, Config.WITH_ASSERTIONS)
            entry.run_with_assertions(vm)
            stats = vm.stats
            rows[name] = {
                "gc_s": stats.gc_seconds,
                "ownership_s": stats.ownership_phase_seconds,
                "mark_s": stats.mark_seconds,
                "sweep_s": stats.sweep_seconds,
            }
        return rows

    rows = once(run)
    lines = ["Figure 5 phase decomposition (WithAssertions GC time):"]
    for name, row in rows.items():
        gc_s = max(row["gc_s"], 1e-9)
        lines.append(
            f"  {name:10} ownership {row['ownership_s'] / gc_s:6.1%}  "
            f"mark {row['mark_s'] / gc_s:6.1%}  "
            f"sweep {row['sweep_s'] / gc_s:6.1%}"
        )
    figure_report.append("\n".join(lines))

    db = rows["db"]
    jbb = rows["pseudojbb"]
    # db's ownership phase does real tracing work; pseudojbb's is minor.
    assert db["ownership_s"] > 0
    assert db["ownership_s"] / max(db["gc_s"], 1e-9) > jbb["ownership_s"] / max(
        jbb["gc_s"], 1e-9
    )


def test_fig5_checking_work_counters(once):
    """The deterministic decomposition of the Figure-5 overhead."""
    figs = once(figures)
    fig5 = figs["fig5"]
    db = fig5.row("db").counters_other
    jbb = fig5.row("pseudojbb").counters_other
    # Ownership checking does real per-GC work in both benchmarks...
    assert db["ownee_lookups"] > 0
    assert db["ownee_search_probes"] >= db["ownee_lookups"]
    # ...but db checks far more ownees per collection than pseudojbb
    # (paper: ~15,274/GC vs ~420/GC), because db's entries live long.
    db_per_gc = db["ownees_checked"] / max(db["collections"], 1)
    jbb_per_gc = jbb["ownees_checked"] / max(jbb["collections"], 1)
    assert db_per_gc > jbb_per_gc

    # None of the healthy runs report violations.
    assert db["violations_detected"] == 0
    assert jbb["violations_detected"] == 0
