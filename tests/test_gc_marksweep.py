"""MarkSweep collector behavior: reachability, reclamation, recycling."""

import pytest

from repro.errors import OutOfMemoryError, UseAfterFreeError
from repro.heap.object_model import FieldKind
from repro.runtime.vm import VirtualMachine
from tests.conftest import build_chain, make_node_class


class TestReachability:
    def test_static_rooted_objects_survive(self, vm, node_class):
        nodes = build_chain(vm, node_class, 5)
        vm.gc()
        for node in nodes:
            assert node.is_live

    def test_unrooted_objects_are_collected(self, vm, node_class):
        with vm.scope():
            vm.new(node_class)
        vm.gc()
        assert vm.heap.stats.objects_live == 0

    def test_frame_local_roots_survive(self, vm, node_class):
        frame = vm.current_thread.push_frame("f")
        with vm.scope():
            node = vm.new(node_class)
            frame.set_ref("n", node.address)
        vm.gc()
        assert node.is_live
        vm.current_thread.pop_frame()
        vm.gc()
        assert not node.is_live

    def test_scope_roots_survive_until_exit(self, vm, node_class):
        with vm.scope():
            node = vm.new(node_class)
            vm.gc()
            assert node.is_live
        vm.gc()
        assert not node.is_live

    def test_transitive_reachability(self, vm, node_class):
        nodes = build_chain(vm, node_class, 10)
        vm.gc()
        assert all(n.is_live for n in nodes)
        # Cut the chain in the middle: the tail dies.
        nodes[4]["next"] = None
        vm.gc()
        assert all(n.is_live for n in nodes[:5])
        assert all(not n.is_live for n in nodes[5:])

    def test_cycles_are_collected(self, vm, node_class):
        with vm.scope():
            a = vm.new(node_class)
            b = vm.new(node_class)
            a["next"] = b
            b["next"] = a
        vm.gc()
        assert not a.is_live
        assert not b.is_live

    def test_cycle_rooted_survives(self, vm, node_class):
        with vm.scope():
            a = vm.new(node_class)
            b = vm.new(node_class)
            a["next"] = b
            b["next"] = a
            vm.statics.set_ref("cycle", a.address)
        vm.gc()
        assert a.is_live and b.is_live

    def test_multiple_gcs_idempotent_on_live_graph(self, vm, node_class):
        build_chain(vm, node_class, 8)
        vm.gc()
        live_after_first = vm.heap.stats.objects_live
        vm.gc()
        vm.gc()
        assert vm.heap.stats.objects_live == live_after_first


class TestAllocationTriggers:
    def test_gc_triggered_by_pressure(self, node_class):
        vm = VirtualMachine(heap_bytes=16 << 10)
        cls = make_node_class(vm)
        for _ in range(2000):
            with vm.scope():
                vm.new(cls)
        assert vm.stats.collections > 0

    def test_oom_when_live_exceeds_heap(self):
        vm = VirtualMachine(heap_bytes=8 << 10)
        cls = make_node_class(vm)
        with pytest.raises(OutOfMemoryError):
            build_chain(vm, cls, 10_000)

    def test_address_recycling_after_gc(self, node_class, vm):
        with vm.scope():
            a = vm.new(node_class)
        addr = a.obj.address
        vm.gc()
        with vm.scope():
            b = vm.new(node_class)
            # Same size class: the freed cell is recycled LIFO.
            assert b.obj.address == addr

    def test_use_after_free_detected(self, vm, node_class):
        with vm.scope():
            a = vm.new(node_class)
        vm.gc()
        with pytest.raises(UseAfterFreeError):
            a["value"]


class TestSweepHygiene:
    def test_mark_bits_cleared_after_collection(self, vm, node_class):
        nodes = build_chain(vm, node_class, 4)
        vm.gc()
        for node in nodes:
            assert not node.obj.is_marked

    def test_space_accounting_matches_object_table(self, vm, node_class):
        build_chain(vm, node_class, 16)
        vm.gc()
        assert vm.collector.bytes_in_use() >= vm.heap.live_bytes()

    def test_stats_counters_move(self, vm, node_class):
        build_chain(vm, node_class, 16)
        vm.gc()
        stats = vm.stats
        assert stats.collections == 1
        assert stats.full_collections == 1
        assert stats.objects_traced >= 16
        assert stats.objects_swept >= 16
        assert stats.gc_seconds > 0

    def test_gc_log_records_reason(self, vm):
        vm.gc(reason="unit test")
        assert any("unit test" in line for line in vm.collector.gc_log)


class TestNoDanglingReferences:
    def test_all_fields_point_to_live_objects_after_gc(self, vm, node_class):
        nodes = build_chain(vm, node_class, 20)
        nodes[9]["next"] = None
        vm.gc()
        heap = vm.heap
        for obj in heap:
            for ref in obj.reference_slots():
                if ref != 0:
                    assert heap.contains(ref), "dangling reference after GC"
