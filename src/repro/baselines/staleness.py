"""Staleness-based leak detection (SWAT / Bell style).

"Some tools use the notion of staleness to identify potential leaks:
objects that have not been accessed in a long time are probably memory
leaks [14, 7]."  (§2.1)

:class:`StalenessDetector` installs a read barrier (the VM's
``access_hook``, driven by handle field reads) plus a gc-observer.  Each
live object's last-access time is tracked in GC epochs; objects idle for
``stale_after`` epochs become *candidates*.  The paper's two criticisms are
measurable here:

* **latency** — a leak is only suggested after it has been idle for the
  staleness window, whereas an assert-dead fires at the first GC;
* **false positives** — legitimately long-lived but rarely-touched data
  (caches, configuration) gets flagged too; "any violation [of a GC
  assertion] represents a mismatch between the programmer's expectations
  and the actual behavior", i.e. zero false positives by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.heap.object_model import HeapObject
    from repro.runtime.vm import VirtualMachine


@dataclass
class StaleCandidate:
    type_name: str
    address: int
    idle_epochs: int

    def render(self) -> str:
        return (
            f"{self.type_name}@{self.address:#x}: "
            f"not accessed for {self.idle_epochs} GC epochs"
        )


class StalenessDetector:
    """Track per-object last-access epochs through a read barrier."""

    def __init__(self, vm: "VirtualMachine", stale_after: int = 3):
        if stale_after < 1:
            raise ValueError("stale_after must be >= 1")
        if vm.access_hook is not None:
            raise RuntimeError("another access hook is already installed")
        self.vm = vm
        self.stale_after = stale_after
        self.epoch = 0
        #: address -> GC epoch of the most recent access (or first sighting).
        self._last_access: dict[int, int] = {}
        self.reads_observed = 0
        vm.access_hook = self._on_access
        vm.gc_observers.append(self._observe)

    def detach(self) -> None:
        self.vm.access_hook = None
        self.vm.gc_observers.remove(self._observe)

    # -- barriers --------------------------------------------------------------------

    def _on_access(self, obj: "HeapObject") -> None:
        self.reads_observed += 1
        self._last_access[obj.address] = self.epoch

    def _observe(self, vm: "VirtualMachine", freed: set[int]) -> None:
        self.epoch += 1
        for address in freed:
            self._last_access.pop(address, None)
        # First sighting of objects never read through a handle.
        for obj in vm.heap:
            self._last_access.setdefault(obj.address, self.epoch)

    # -- reporting ---------------------------------------------------------------------

    def candidates(self) -> list[StaleCandidate]:
        """Live objects idle for at least ``stale_after`` epochs."""
        heap = self.vm.heap
        out: list[StaleCandidate] = []
        for address, last in self._last_access.items():
            idle = self.epoch - last
            if idle >= self.stale_after:
                obj = heap.maybe(address)
                if obj is not None:
                    out.append(StaleCandidate(obj.cls.name, address, idle))
        out.sort(key=lambda c: c.idle_epochs, reverse=True)
        return out

    def candidate_types(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for candidate in self.candidates():
            counts[candidate.type_name] = counts.get(candidate.type_name, 0) + 1
        return counts
