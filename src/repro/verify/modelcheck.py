"""Small-heap model checking of collector invariants.

The executable analogue of the Alloy ``marksweepgc`` checks: enumerate
*every* heap shape up to a bounded scope — N objects, E edges, R roots,
reduced modulo graph isomorphism — run every (collector × sweep-mode ×
gc-workers × assertion-config) cell on each shape, and assert the three
soundness/completeness properties against a brute-force reachability
oracle computed in plain Python:

* **Soundness1** — no live (root-reachable) object is freed;
* **Soundness2** — the post-GC heap contains *exactly* the root-reachable
  subgraph (same nodes, same labelled edges, roots resolved to the right
  nodes);
* **Completeness** — every unreachable cell is reclaimed: its address
  leaves the heap table, and the freed-object counter advances by exactly
  the garbage count.

On top of the collector properties, the paper-level invariants: an
``assert_dead`` verdict must equal the oracle's reachability verdict in
every cell, and the full assert-dead/unshared/ownedby verdict set must be
*identical across all cells* on the same shape — the collector being
eager, lazy, parallel, or copying must never change what an assertion
observes.

Scope defaults (N=4, E=3, R=2) mirror ``check Soundness1 for 3``-style
Alloy scopes: small enough to exhaust in CI, large enough for cycles,
diamonds, self-loops, shared substructure, and dead subgraphs hanging
off live ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import permutations
from typing import Callable, Iterator, Optional, Sequence

#: Heap budget per model VM.  Shapes hold <= N tiny nodes; 256 KiB keeps
#: every collector (including the generational nursery minimum) roomy
#: enough that no allocation-triggered GC interleaves with the scripted one.
MODEL_HEAP_BYTES = 256 << 10

NODE_CLASS = "MCNode"
NODE_FIELDS = (("left", "ref"), ("right", "ref"), ("tag", "int"))
SLOT_NAMES = ("left", "right")


# ---------------------------------------------------------------------------
# Shapes
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class HeapShape:
    """One canonical small-heap configuration.

    ``slots[i]`` is the ``(left, right)`` target pair of node *i* (``None``
    = null); ``roots`` are the node indices held by static roots.
    """

    n: int
    slots: tuple  # tuple[tuple[Optional[int], Optional[int]], ...]
    roots: tuple  # tuple[int, ...]

    def edge_count(self) -> int:
        return sum((l is not None) + (r is not None) for l, r in self.slots)

    def edges(self) -> list:
        """Labelled edges ``(src, slot_name, dst)``."""
        out = []
        for i, (l, r) in enumerate(self.slots):
            if l is not None:
                out.append((i, "left", l))
            if r is not None:
                out.append((i, "right", r))
        return out

    def min_edge(self):
        """Lexicographically smallest ``(src, dst)`` edge, or None."""
        edges = [(i, dst) for i, _, dst in self.edges()]
        return min(edges) if edges else None

    def reachable(self) -> set:
        """Brute-force reachability oracle: BFS from the root set."""
        seen = set()
        work = list(dict.fromkeys(self.roots))
        while work:
            i = work.pop()
            if i in seen:
                continue
            seen.add(i)
            for target in self.slots[i]:
                if target is not None and target not in seen:
                    work.append(target)
        return seen

    def describe(self) -> str:
        cells = ",".join(
            f"{i}({'.' if l is None else l}/{'.' if r is None else r})"
            for i, (l, r) in enumerate(self.slots)
        )
        return f"n={self.n} roots={list(self.roots)} {cells}"


def _slot_assignments(n: int, budget: int) -> Iterator[tuple]:
    """All per-node (left, right) target assignments with <= budget edges."""
    targets = (None, *range(n))

    def rec(i: int, budget: int):
        if i == n:
            yield ()
            return
        for l in targets:
            cost_l = 0 if l is None else 1
            if cost_l > budget:
                break  # None sorts first; every later option costs 1
            for r in targets:
                cost = cost_l + (0 if r is None else 1)
                if cost > budget:
                    break
                for rest in rec(i + 1, budget - cost):
                    yield ((l, r), *rest)

    yield from rec(0, budget)


def _root_sets(n: int, max_roots: int) -> list:
    """All root sets of size 0..max_roots (0 = everything is garbage)."""
    sets = [()]
    frontier = [()]
    for _ in range(min(max_roots, n)):
        nxt = []
        for prefix in frontier:
            start = prefix[-1] + 1 if prefix else 0
            for i in range(start, n):
                nxt.append((*prefix, i))
        sets.extend(nxt)
        frontier = nxt
    return sets


def canonical_form(n: int, slots: tuple, roots: tuple) -> tuple:
    """Canonical representative of the shape's isomorphism class.

    Nodes are first partitioned by a relabelling-invariant key
    ``(is_root, has_left, has_right, in_degree)``; only permutations that
    respect the partition can be isomorphisms, so the canonical form is
    the minimum serialization over within-block permutations — exact, and
    cheap because root/degree constraints shatter the blocks.
    """
    rootset = set(roots)
    indeg = [0] * n
    for l, r in slots:
        if l is not None:
            indeg[l] += 1
        if r is not None:
            indeg[r] += 1

    def invariant(i: int) -> tuple:
        l, r = slots[i]
        return (i in rootset, l is not None, r is not None, indeg[i])

    order = sorted(range(n), key=lambda i: (invariant(i), i))
    blocks: list[list[int]] = []
    for i in order:
        if blocks and invariant(blocks[-1][0]) == invariant(i):
            blocks[-1].append(i)
        else:
            blocks.append([i])

    def serialize(perm_map: dict) -> tuple:
        new_slots = [None] * n
        for old, new in perm_map.items():
            l, r = slots[old]
            new_slots[new] = (
                None if l is None else perm_map[l],
                None if r is None else perm_map[r],
            )
        new_roots = tuple(sorted(perm_map[i] for i in roots))
        return (tuple(new_slots), new_roots)

    best = None
    for perm_blocks in _block_permutations(blocks):
        perm_map = {}
        position = 0
        for block in perm_blocks:
            for old in block:
                perm_map[old] = position
                position += 1
        form = serialize(perm_map)
        if best is None or form < best:
            best = form
    return best


def _block_permutations(blocks: Sequence[Sequence[int]]) -> Iterator[list]:
    """Cartesian product of within-block permutations."""

    def rec(idx: int):
        if idx == len(blocks):
            yield []
            return
        for perm in permutations(blocks[idx]):
            for rest in rec(idx + 1):
                yield [perm, *rest]

    yield from rec(0)


def enumerate_shapes(
    max_objects: int = 4, max_edges: int = 3, max_roots: int = 2
) -> list:
    """All canonical shapes within scope, smallest heaps first."""
    shapes = []
    for n in range(1, max_objects + 1):
        seen = set()
        root_sets = None
        for slots in _slot_assignments(n, max_edges):
            if root_sets is None:
                root_sets = _root_sets(n, max_roots)
            for roots in root_sets:
                key = canonical_form(n, slots, roots)
                if key in seen:
                    continue
                seen.add(key)
                shapes.append(HeapShape(n, slots, roots))
    return shapes


# ---------------------------------------------------------------------------
# Cells
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Cell:
    """One (collector, sweep-mode, workers, assertion-config) configuration."""

    collector: str
    sweep_mode: str
    gc_workers: int
    assertions: bool

    @property
    def label(self) -> str:
        battery = "asserted" if self.assertions else "base"
        return f"{self.collector}/{self.sweep_mode}/w{self.gc_workers}/{battery}"


def default_cells() -> list:
    """The full matrix: 9 collector configs x 2 assertion configs.

    Semispace has no sweep modes and no parallel mark phase, so it
    contributes one collector config; mark-sweep and generational cross
    {eager, lazy} x workers {0, 2}.
    """
    cells = []
    for assertions in (False, True):
        for collector in ("marksweep", "generational"):
            for sweep_mode in ("eager", "lazy"):
                for workers in (0, 2):
                    cells.append(Cell(collector, sweep_mode, workers, assertions))
        cells.append(Cell("semispace", "eager", 0, assertions))
    return cells


def _default_vm_factory(cell: Cell):
    from repro.runtime.vm import VirtualMachine

    kwargs = dict(
        heap_bytes=MODEL_HEAP_BYTES,
        collector=cell.collector,
        assertions=cell.assertions,
        telemetry=False,
    )
    if cell.collector in ("marksweep", "generational"):
        kwargs["sweep_mode"] = cell.sweep_mode
        if cell.gc_workers:
            kwargs["gc_workers"] = cell.gc_workers
    return VirtualMachine(**kwargs)


# ---------------------------------------------------------------------------
# Harness
# ---------------------------------------------------------------------------


@dataclass
class ModelCheckReport:
    """Everything one exhaustive run established (or refuted)."""

    max_objects: int
    max_edges: int
    max_roots: int
    shape_count: int = 0
    shapes_by_n: dict = field(default_factory=dict)
    cell_labels: list = field(default_factory=list)
    runs: int = 0
    violations: list = field(default_factory=list)
    verdict_mismatches: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations and self.verdict_mismatches == 0

    def render(self) -> str:
        lines = [
            f"model check: scope N<={self.max_objects} E<={self.max_edges} "
            f"R<={self.max_roots}",
            f"  shapes: {self.shape_count} canonical "
            f"({', '.join(f'n={n}: {c}' for n, c in sorted(self.shapes_by_n.items()))})",
            f"  cells:  {len(self.cell_labels)} "
            f"({self.runs} shape-cell runs)",
        ]
        if self.ok:
            lines.append(
                "  PASS: Soundness1, Soundness2, Completeness hold in every "
                "cell; assertion verdicts identical across cells"
            )
        else:
            lines.append(
                f"  FAIL: {len(self.violations)} violation(s), "
                f"{self.verdict_mismatches} cross-cell verdict mismatch(es)"
            )
            for violation in self.violations[:20]:
                lines.append(f"    {violation}")
            if len(self.violations) > 20:
                lines.append(f"    ... {len(self.violations) - 20} more")
        return "\n".join(lines)


#: Stop collecting per-run violations past this bound — a broken collector
#: fails on thousands of shapes; the first few localize the bug.
MAX_RECORDED_VIOLATIONS = 50


def _run_shape(vm, node_cls, shape: HeapShape, assertions: bool):
    """Build ``shape``, run one scripted GC, check S1/S2/Completeness.

    Returns ``(problems, verdicts)`` where ``verdicts`` is the sorted
    assertion outcome set (empty for base cells).  The VM is left holding
    the live subgraph; :func:`_teardown_shape` empties it for reuse.
    """
    from repro.heap.layout import NULL

    heap = vm.heap
    collector = vm.collector
    stats = vm.stats
    problems: list[str] = []

    left_slot = node_cls.field("left").slot
    right_slot = node_cls.field("right").slot
    tag_slot = node_cls.field("tag").slot

    base_freed = stats.objects_freed
    if vm.engine is not None:
        vm.engine.log.clear()

    with vm.scope("model-shape"):
        handles = [vm.new(node_cls, tag=i) for i in range(shape.n)]
        for i, (l, r) in enumerate(shape.slots):
            if l is not None:
                handles[i]["left"] = handles[l]
            if r is not None:
                handles[i]["right"] = handles[r]
        for k, i in enumerate(shape.roots):
            vm.statics.set_ref(f"r{k}", handles[i].address)
        addresses = [h.address for h in handles]
        if assertions:
            api = vm.assertions
            for i, h in enumerate(handles):
                api.assert_dead(h, site=f"n{i}")
                api.assert_unshared(h, site=f"n{i}")
            owned = shape.min_edge()
            if (
                owned is not None
                and owned[0] != owned[1]
                and owned[0] in shape.reachable()
            ):
                # Self-edges are legal heap shapes but self-ownership is an
                # AssertionUsageError by design.  Garbage owners are also
                # skipped: the §2.5.2 ownership phase deliberately marks a
                # dying owner's ownees (they float for exactly one extra
                # collection), which would make the strict S2/Completeness
                # oracle wrong by design rather than by defect.
                api.assert_ownedby(handles[owned[0]], handles[owned[1]], site="own")

    vm.gc("model-check")

    reachable = shape.reachable()

    # Lazy cells: before repaying sweep debt, the pending-garbage view must
    # already agree with the oracle (dead-but-unswept objects are invisible
    # to every consumer that honours the predicate).
    if collector.sweep_debt() > 0:
        pending = collector.pending_garbage_predicate()
        visible = {
            obj.slots[tag_slot]
            for obj in heap
            if pending is None or not pending(obj)
        }
        if visible != reachable:
            problems.append(
                f"lazy view: visible tags {sorted(visible)} != "
                f"reachable {sorted(reachable)}"
            )
    collector.sweep_all()

    # Soundness2 (and 1): walk the post-GC heap from the roots and compare
    # the labelled graph with the oracle subgraph.  Walking by tag keeps
    # the comparison exact across moving collectors.
    walked_nodes: dict[int, object] = {}
    walked_edges = set()
    work = []
    for k, i in enumerate(shape.roots):
        address = vm.statics.get_ref(f"r{k}")
        if address == NULL or not heap.contains(address):
            problems.append(f"Soundness1: root r{k} (node {i}) dangles post-GC")
            continue
        obj = heap.maybe(address)
        if obj.slots[tag_slot] != i:
            problems.append(
                f"Soundness2: root r{k} resolves to tag {obj.slots[tag_slot]}, "
                f"expected {i}"
            )
        work.append(obj)
    while work:
        obj = work.pop()
        tag = obj.slots[tag_slot]
        if tag in walked_nodes:
            continue
        walked_nodes[tag] = obj
        for slot, name in ((left_slot, "left"), (right_slot, "right")):
            ref = obj.slots[slot]
            if ref == NULL:
                continue
            if not heap.contains(ref):
                problems.append(
                    f"Soundness1: node {tag}.{name} dangles at {ref:#x} post-GC"
                )
                continue
            target = heap.maybe(ref)
            walked_edges.add((tag, name, target.slots[tag_slot]))
            work.append(target)

    missing = reachable - set(walked_nodes)
    extra = set(walked_nodes) - reachable
    if missing:
        problems.append(
            f"Soundness1: live node(s) {sorted(missing)} freed or unreachable post-GC"
        )
    if extra:
        problems.append(f"Soundness2: unreachable node(s) {sorted(extra)} survived")
    oracle_edges = {
        (i, name, dst) for i, name, dst in shape.edges() if i in reachable
    }
    if walked_edges != oracle_edges:
        problems.append(
            f"Soundness2: edges {sorted(walked_edges)} != oracle "
            f"{sorted(oracle_edges)}"
        )

    # Soundness2, table side: exactly the reachable nodes remain live.
    live_tags = {obj.slots[tag_slot] for obj in heap}
    if live_tags != reachable:
        problems.append(
            f"Soundness2: table tags {sorted(live_tags)} != reachable "
            f"{sorted(reachable)}"
        )

    # Completeness: every unreachable cell was actually reclaimed.
    for i in range(shape.n):
        if i not in reachable and heap.contains(addresses[i]):
            problems.append(
                f"Completeness: garbage node {i} still in table at "
                f"{addresses[i]:#x}"
            )
    freed = stats.objects_freed - base_freed
    garbage = shape.n - len(reachable)
    if freed != garbage:
        problems.append(
            f"Completeness: freed counter advanced {freed}, expected {garbage}"
        )

    verdicts = ()
    if assertions:
        log = vm.engine.log
        verdicts = tuple(sorted((v.kind.name, v.site) for v in log.violations))
        # assert_dead oracle: a DEAD verdict fires exactly on the nodes the
        # oracle proves reachable.
        dead_sites = {site for kind, site in verdicts if kind == "DEAD"}
        expected = {f"n{i}" for i in reachable}
        if dead_sites != expected:
            problems.append(
                f"assert-dead: verdicts {sorted(dead_sites)} != oracle "
                f"{sorted(expected)}"
            )
    return problems, verdicts


def _teardown_shape(vm, shape: HeapShape) -> bool:
    """Drop the shape's roots and reclaim everything; True if heap emptied.

    Two collections, not one: when the shape carried an ownership
    assertion, the ownee floats for exactly one extra collection after its
    owner dies (the §2.5.2 memory-pressure effect) — the second GC is the
    one that proves nothing *stays* floating.
    """
    from repro.heap.layout import NULL

    for k in range(len(shape.roots)):
        vm.statics.set_ref(f"r{k}", NULL)
    vm.gc("model-check teardown")
    vm.collector.sweep_all()
    if len(vm.heap):
        vm.gc("model-check teardown (floating ownees)")
        vm.collector.sweep_all()
    if vm.engine is not None:
        vm.engine.log.clear()
    return len(vm.heap) == 0


def run_model_check(
    max_objects: int = 4,
    max_edges: int = 3,
    max_roots: int = 2,
    *,
    cells: Optional[Sequence[Cell]] = None,
    vm_factory: Optional[Callable[[Cell], object]] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> ModelCheckReport:
    """Exhaust the scope: every canonical shape through every cell.

    ``vm_factory`` lets tests substitute a deliberately broken collector;
    it receives the :class:`Cell` and must return an attached
    ``VirtualMachine``.  One VM is reused across all shapes of a cell
    (heap emptiness is re-proven after every shape), so the sweep also
    exercises allocator reuse — addresses recycled across thousands of
    heap configurations.
    """
    from repro.heap.object_model import FieldKind

    cells = list(cells) if cells is not None else default_cells()
    factory = vm_factory or _default_vm_factory
    report = ModelCheckReport(max_objects, max_edges, max_roots)
    report.cell_labels = [cell.label for cell in cells]

    shapes = enumerate_shapes(max_objects, max_edges, max_roots)
    report.shape_count = len(shapes)
    for shape in shapes:
        report.shapes_by_n[shape.n] = report.shapes_by_n.get(shape.n, 0) + 1

    fields = [
        (name, FieldKind.REF if kind == "ref" else FieldKind.INT)
        for name, kind in NODE_FIELDS
    ]

    # verdicts[shape_index] -> (first_cell_label, verdict_tuple)
    reference_verdicts: dict[int, tuple] = {}

    for cell in cells:
        if progress is not None:
            progress(f"cell {cell.label}: {len(shapes)} shapes")
        vm = factory(cell)
        node_cls = vm.define_class(NODE_CLASS, fields)
        for index, shape in enumerate(shapes):
            problems, verdicts = _run_shape(vm, node_cls, shape, cell.assertions)
            report.runs += 1
            for problem in problems:
                if len(report.violations) < MAX_RECORDED_VIOLATIONS:
                    report.violations.append(
                        f"[{cell.label}] {shape.describe()}: {problem}"
                    )
            if cell.assertions:
                reference = reference_verdicts.get(index)
                if reference is None:
                    reference_verdicts[index] = (cell.label, verdicts)
                elif verdicts != reference[1]:
                    report.verdict_mismatches += 1
                    if len(report.violations) < MAX_RECORDED_VIOLATIONS:
                        report.violations.append(
                            f"[{cell.label}] {shape.describe()}: verdicts "
                            f"{list(verdicts)} != {reference[0]} "
                            f"{list(reference[1])}"
                        )
            if not _teardown_shape(vm, shape):
                if len(report.violations) < MAX_RECORDED_VIOLATIONS:
                    report.violations.append(
                        f"[{cell.label}] {shape.describe()}: heap not empty "
                        f"after teardown ({len(vm.heap)} objects)"
                    )
                vm = factory(cell)  # quarantine the wreckage, keep sweeping
                node_cls = vm.define_class(NODE_CLASS, fields)
    return report
