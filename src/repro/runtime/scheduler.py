"""A deterministic cooperative scheduler for multi-threaded workloads.

Java threads in the paper's benchmarks (lusearch runs 32 searcher threads)
are simulated as cooperative tasks: each task is a Python generator that
yields at its safepoints, and the scheduler interleaves them round-robin on
top of the VM's :class:`~repro.runtime.threads.MutatorThread` contexts.  No
OS concurrency is involved, so every run is deterministic — which matters
because benchmark comparisons rely on identical workload behavior across
collector configurations.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Generator, Iterable, Optional

from repro.runtime.threads import MutatorThread
from repro.runtime.vm import VirtualMachine

#: A task body: receives (vm, thread) and yields at safepoints.
TaskBody = Callable[[VirtualMachine, MutatorThread], Generator[None, None, None]]


class Task:
    """One schedulable task bound to a mutator thread."""

    __slots__ = ("name", "thread", "generator", "finished", "steps")

    def __init__(self, name: str, thread: MutatorThread, generator: Generator):
        self.name = name
        self.thread = thread
        self.generator = generator
        self.finished = False
        self.steps = 0


class Scheduler:
    """Round-robin cooperative scheduler over VM mutator threads."""

    def __init__(self, vm: VirtualMachine):
        self.vm = vm
        self._tasks: deque[Task] = deque()
        self.completed: list[Task] = []

    def spawn(self, body: TaskBody, name: Optional[str] = None) -> Task:
        """Create a task on a fresh mutator thread."""
        thread = self.vm.new_thread(name)
        generator = body(self.vm, thread)
        task = Task(name or thread.name, thread, generator)
        self._tasks.append(task)
        return task

    def spawn_all(self, bodies: Iterable[TaskBody], prefix: str = "worker") -> list[Task]:
        return [self.spawn(body, f"{prefix}-{i}") for i, body in enumerate(bodies)]

    @property
    def pending(self) -> int:
        return len(self._tasks)

    def step(self) -> bool:
        """Advance one task by one safepoint; False when all are done."""
        if not self._tasks:
            return False
        task = self._tasks.popleft()
        with self.vm.on_thread(task.thread):
            try:
                next(task.generator)
                task.steps += 1
                self._tasks.append(task)
            except StopIteration:
                task.finished = True
                self.completed.append(task)
        return bool(self._tasks)

    def run(self, max_steps: Optional[int] = None) -> int:
        """Run until all tasks finish (or ``max_steps`` safepoints)."""
        steps = 0
        while self._tasks:
            if max_steps is not None and steps >= max_steps:
                break
            self.step()
            steps += 1
        return steps
