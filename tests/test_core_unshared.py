"""assert-unshared (§2.5.1): the spare-bit single-parent check."""

import pytest

from repro.core.reporting import AssertionKind
from repro.heap import header as hdr
from tests.conftest import build_chain


class TestUnshared:
    def test_single_parent_passes(self, vm, node_class):
        nodes = build_chain(vm, node_class, 3)
        vm.assertions.assert_unshared(nodes[1], site="u")
        vm.gc()
        assert len(vm.engine.log) == 0

    def test_two_heap_parents_trigger(self, vm, node_class):
        with vm.scope():
            a = vm.new(node_class)
            b = vm.new(node_class)
            target = vm.new(node_class)
            a["next"] = target
            b["next"] = target
            vm.statics.set_ref("a", a.address)
            vm.statics.set_ref("b", b.address)
        vm.assertions.assert_unshared(target, site="u")
        vm.gc()
        violations = vm.engine.log.of_kind(AssertionKind.UNSHARED)
        assert len(violations) == 1
        assert violations[0].address == target.obj.address

    def test_tree_becomes_dag_detected(self, vm):
        """The paper's example: verify a tree has not become a DAG."""
        tree_cls = vm.define_class("Tree", [("left", "ref"), ("right", "ref")])
        with vm.scope():
            root = vm.new(tree_cls)
            left = vm.new(tree_cls)
            right = vm.new(tree_cls)
            shared = vm.new(tree_cls)
            root["left"] = left
            root["right"] = right
            left["left"] = shared
            vm.statics.set_ref("tree", root.address)
            for node in (root, left, right, shared):
                vm.assertions.assert_unshared(node, site="tree-check")
        vm.gc()
        assert len(vm.engine.log) == 0
        # Introduce sharing: the tree is now a DAG.
        right["left"] = shared
        vm.gc()
        violations = vm.engine.log.of_kind(AssertionKind.UNSHARED)
        assert len(violations) == 1
        assert violations[0].address == shared.obj.address

    def test_unshared_bit_in_header(self, vm, node_class):
        nodes = build_chain(vm, node_class, 1)
        vm.assertions.assert_unshared(nodes[0])
        assert nodes[0].obj.test(hdr.UNSHARED_BIT)

    def test_second_path_reported(self, vm, node_class):
        """§2.7: 'We can print the second path.'"""
        with vm.scope():
            a = vm.new(node_class)
            b = vm.new(node_class)
            target = vm.new(node_class)
            a["next"] = target
            b["next"] = target
            vm.statics.set_ref("a", a.address)
            vm.statics.set_ref("b", b.address)
            vm.assertions.assert_unshared(target)
        vm.gc()
        violation = vm.engine.log.of_kind(AssertionKind.UNSHARED)[0]
        assert violation.path is not None
        assert violation.path.type_names()[-1] == "Node"

    def test_unasserted_shared_objects_ignored(self, vm, node_class):
        with vm.scope():
            a = vm.new(node_class)
            b = vm.new(node_class)
            target = vm.new(node_class)
            a["next"] = target
            b["next"] = target
            vm.statics.set_ref("a", a.address)
            vm.statics.set_ref("b", b.address)
        vm.gc()
        assert len(vm.engine.log) == 0

    def test_metadata_purged_when_object_dies(self, vm, node_class):
        with vm.scope():
            target = vm.new(node_class)
            vm.assertions.assert_unshared(target)
        vm.gc()
        assert len(vm.engine.registry.unshared_sites) == 0

    def test_dead_and_unshared_coexist(self, vm, node_class):
        """Both spare bits can be set on the same header."""
        with vm.scope():
            a = vm.new(node_class)
            b = vm.new(node_class)
            target = vm.new(node_class)
            a["next"] = target
            b["next"] = target
            vm.statics.set_ref("a", a.address)
            vm.statics.set_ref("b", b.address)
            vm.assertions.assert_unshared(target)
            vm.assertions.assert_dead(target)
        vm.gc()
        kinds = {v.kind for v in vm.engine.log}
        assert AssertionKind.DEAD in kinds
        assert AssertionKind.UNSHARED in kinds
