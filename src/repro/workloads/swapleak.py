"""SwapLeak: the Sun Developer Network memory-leak program (§3.2.3).

A user's program defines ``SObject`` with a *non-static inner class*
``Rep``; ``swap()`` exchanges the ``rep`` fields of two SObjects.  The user
expects freshly allocated SObjects to die after the swap — but non-static
inner classes "must maintain a hidden reference to the enclosing class
instance in which they were instantiated", so each swapped-in Rep keeps its
original SObject alive.  The paper's assert-dead report makes the hidden
edge visible::

    Type: LSObject;
    Path to object:  LSArray; -> [LSObject; -> LSObject; -> LSObject$Rep; -> LSObject;

We model both variants: the leaky inner class (``Rep`` with a hidden
``outer`` reference, class name ``SObject$Rep``) and the repaired static
inner class (no ``outer`` field).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.heap.object_model import FieldKind
from repro.runtime.handles import Handle
from repro.runtime.vm import VirtualMachine

SARRAY = "SArray"
SOBJECT = "SObject"
REP_INNER = "SObject$Rep"          # non-static inner class: hidden outer ref
REP_STATIC = "SObject$StaticRep"   # repaired: static inner class


def define_swapleak_classes(vm: VirtualMachine) -> None:
    if vm.classes.maybe(SOBJECT) is not None:
        return
    vm.define_class(SARRAY, [("items", FieldKind.REF), ("size", FieldKind.INT)])
    vm.define_class(SOBJECT, [("rep", FieldKind.REF), ("id", FieldKind.INT)])
    vm.define_class(REP_INNER, [("data", FieldKind.INT), ("outer", FieldKind.REF)])
    vm.define_class(REP_STATIC, [("data", FieldKind.INT)])


def new_sobject(
    vm: VirtualMachine, object_id: int, static_rep: bool, site: str = "SObject.<init>"
) -> Handle:
    """Allocate an SObject, instantiating its Rep inner-class instance.

    With ``static_rep=False`` the Rep records the hidden reference to its
    enclosing instance — exactly what javac emits for a non-static inner
    class.  Allocations are tagged with ``site`` so violation reports and
    snapshots can say *where* the leaked instances came from.
    """
    with vm.scope("SObject.new"), vm.alloc_site(site):
        obj = vm.new(SOBJECT, id=object_id)
        if static_rep:
            rep = vm.new(REP_STATIC, data=object_id)
        else:
            rep = vm.new(REP_INNER, data=object_id)
            rep["outer"] = obj  # the hidden `this$0` reference
        obj["rep"] = rep
    return obj


def swap(a: Handle, b: Handle) -> None:
    """``SObject.swap()``: exchange the two Rep fields."""
    a_rep = a["rep"]
    a["rep"] = b["rep"]
    b["rep"] = a_rep


@dataclass
class SwapLeakConfig:
    array_size: int = 32
    swaps: int = 64
    #: True = the repaired program (static inner class, no hidden reference).
    static_rep: bool = False
    assert_dead_swapped: bool = True
    gc_at_end: bool = True
    #: Collect every N swaps (0 = never mid-run).  Snapshot policies with
    #: ``every_n_gcs`` hang their captures off these collections, which is
    #: how the leak-triage walkthrough brackets the leak's growth.
    gc_every_swaps: int = 0


@dataclass
class SwapLeakResult:
    swaps: int = 0
    violations: int = 0
    asserted: int = 0


def run_swapleak(vm: VirtualMachine, config: SwapLeakConfig | None = None) -> SwapLeakResult:
    """Run the SwapLeak program; returns counters (violations included)."""
    config = config or SwapLeakConfig()
    define_swapleak_classes(vm)
    result = SwapLeakResult()

    frame = vm.current_thread.push_frame("SwapLeak.main")
    try:
        with vm.scope("SwapLeak.setup"):
            holder = vm.new(SARRAY, size=config.array_size)
            array = vm.new_array(vm.classes.get(SOBJECT), config.array_size)
            holder["items"] = array
            frame.set_ref("array", holder.address)
        for i in range(config.array_size):
            array[i] = new_sobject(vm, i, config.static_rep)

        for swap_index in range(config.swaps):
            slot = swap_index % config.array_size
            # "allocating new SObjects and swapping their Rep fields with
            # those of the SObjects already in the array."
            fresh = new_sobject(
                vm, 1000 + swap_index, config.static_rep, site="SwapLeak.swap loop"
            )
            swap(fresh, array[slot])
            result.swaps += 1
            # The user expects `fresh` to be reclaimable now.
            if config.assert_dead_swapped and vm.assertions is not None:
                vm.assertions.assert_dead(fresh, site="after swap()")
                result.asserted += 1
            if config.gc_every_swaps and (swap_index + 1) % config.gc_every_swaps == 0:
                vm.gc(reason=f"SwapLeak periodic (swap {swap_index + 1})")

        if config.gc_at_end:
            vm.gc(reason="SwapLeak check")
        if vm.engine is not None:
            result.violations = len(vm.engine.log)
        return result
    finally:
        vm.current_thread.pop_frame()
