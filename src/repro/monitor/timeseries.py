"""Bounded time series and the hub that feeds them from the event stream.

A long-running process must answer "is the heap healthy *right now*" with
bounded memory.  :class:`TimeSeries` is a fixed-capacity ring of
``(timestamp, value)`` points with windowed queries and downsampling;
:class:`MonitorHub` is a telemetry *sink* — it subscribes to a VM's
:class:`~repro.telemetry.Telemetry` and turns the push-model event stream
(GC events, degradations, snapshots, its own alerts coming back around)
into the pull-model state the SLO engine, the health report, and the
``/metrics`` server read.

Timestamps are ``perf_counter`` seconds (the system's timer clock) so
interval arithmetic is exact; the paired ``wall_time`` on each event is
what correlates a point with the outside world.
"""

from __future__ import annotations

import time
from collections import deque
from typing import TYPE_CHECKING, Iterable, Optional

from repro.errors import ConfigurationError
from repro.monitor.mmu import mmu, mmu_curve, utilization_timeline
from repro.telemetry.events import DegradedEvent, GcEvent

if TYPE_CHECKING:
    from repro.monitor.slo import SloSet
    from repro.runtime.vm import VirtualMachine

#: Points retained per series; at one GC event per second this is about
#: 34 minutes of raw history (windowed queries downsample beyond that).
DEFAULT_SERIES_CAPACITY = 2048

#: Pause intervals retained for MMU/utilization queries.
DEFAULT_INTERVAL_CAPACITY = 4096

#: The per-GC-event gauges every hub maintains, in emit order.
GC_SERIES = (
    "pause_s",
    "utilization",
    "heap_live_bytes",
    "occupancy",
    "sweep_debt_chunks",
    "quarantine_depth",
    "assertion_checks",
    "violations",
    "ownership_s",
)

_AGGREGATORS = {
    "mean": lambda values: sum(values) / len(values),
    "max": max,
    "min": min,
    "last": lambda values: values[-1],
    "sum": sum,
    "count": len,
}


class TimeSeries:
    """Fixed-capacity ring of ``(t, value)`` points, append-only in time.

    Appending beyond ``capacity`` drops the oldest point (counted, so
    consumers can report shed history).  Queries never mutate.
    """

    __slots__ = ("name", "capacity", "_points", "appended", "dropped")

    def __init__(self, name: str, capacity: int = DEFAULT_SERIES_CAPACITY):
        if capacity < 1:
            raise ConfigurationError(
                f"series capacity must be >= 1, got {capacity}"
            )
        self.name = name
        self.capacity = capacity
        self._points: deque[tuple[float, float]] = deque(maxlen=capacity)
        self.appended = 0
        self.dropped = 0

    def append(self, t: float, value: float) -> None:
        if len(self._points) == self.capacity:
            self.dropped += 1
        self._points.append((t, value))
        self.appended += 1

    def points(self) -> list[tuple[float, float]]:
        return list(self._points)

    def window(
        self, since: float, until: Optional[float] = None
    ) -> list[tuple[float, float]]:
        """Points with ``since <= t`` (and ``t <= until`` when given)."""
        return [
            (t, v)
            for t, v in self._points
            if t >= since and (until is None or t <= until)
        ]

    def values(self, since: Optional[float] = None) -> list[float]:
        if since is None:
            return [v for _t, v in self._points]
        return [v for t, v in self._points if t >= since]

    def latest(self) -> Optional[tuple[float, float]]:
        return self._points[-1] if self._points else None

    def latest_value(self, default: float = 0.0) -> float:
        return self._points[-1][1] if self._points else default

    def downsample(
        self,
        bucket_s: float,
        agg: str = "mean",
        since: Optional[float] = None,
        until: Optional[float] = None,
    ) -> list[tuple[float, float]]:
        """Windowed downsampling: one ``(bucket_start, aggregate)`` row per
        occupied ``bucket_s``-wide bucket.  ``agg`` is one of
        ``mean|max|min|last|sum|count``; empty buckets are omitted (a gap
        in the series stays a visible gap, it is not zero-filled).
        """
        if bucket_s <= 0:
            raise ConfigurationError(f"bucket_s must be > 0, got {bucket_s}")
        try:
            aggregate = _AGGREGATORS[agg]
        except KeyError:
            raise ConfigurationError(
                f"unknown aggregator {agg!r}; pick from {sorted(_AGGREGATORS)}"
            ) from None
        points = self.window(since, until) if since is not None else self.points()
        if until is not None and since is None:
            points = [(t, v) for t, v in points if t <= until]
        if not points:
            return []
        origin = since if since is not None else points[0][0]
        buckets: dict[int, list[float]] = {}
        for t, v in points:
            buckets.setdefault(int((t - origin) // bucket_s), []).append(v)
        return [
            (origin + index * bucket_s, float(aggregate(values)))
            for index, values in sorted(buckets.items())
        ]

    def __len__(self) -> int:
        return len(self._points)

    def __repr__(self) -> str:
        return f"<TimeSeries {self.name} {len(self._points)}/{self.capacity}>"


class MonitorHub:
    """The continuous-monitoring hub: a telemetry sink that maintains
    bounded time series, pause intervals for MMU math, and (optionally)
    an attached :class:`~repro.monitor.slo.SloSet` evaluated on every
    collection.

    Zero-overhead contract: a VM without a hub attached has *nothing* on
    any hot path — the hub rides the existing sink fan-out, so arming it
    costs one extra sink iteration per collection and nothing per
    allocation or per traced object.
    """

    def __init__(
        self,
        slos: Optional["SloSet"] = None,
        series_capacity: int = DEFAULT_SERIES_CAPACITY,
        interval_capacity: int = DEFAULT_INTERVAL_CAPACITY,
    ):
        self.series: dict[str, TimeSeries] = {
            name: TimeSeries(name, series_capacity) for name in GC_SERIES
        }
        #: Stop-the-world intervals ``(start, end)`` on the monotonic
        #: clock, in collection order — the MMU/utilization input.
        self.pause_intervals: deque[tuple[float, float]] = deque(
            maxlen=interval_capacity
        )
        self.slos = slos
        self.vm: Optional["VirtualMachine"] = None
        #: Alerts seen on the sink path (our own, come back around the
        #: fan-out — which also proves every other sink saw them).
        self.alerts: list = []
        self.degradations_by_kind: dict[str, int] = {}
        self.gc_events_seen = 0
        self.events_seen = 0
        self.start_mono: Optional[float] = None
        self.start_wall: Optional[float] = None
        self.closed = False

    # -- wiring -----------------------------------------------------------------------

    def attach(self, vm: "VirtualMachine") -> "MonitorHub":
        """Subscribe to ``vm``'s telemetry hub; requires telemetry on."""
        if vm.telemetry is None or not vm.telemetry.enabled:
            raise ConfigurationError(
                "continuous monitoring rides the telemetry event stream; "
                "build the VM with telemetry enabled"
            )
        self.vm = vm
        vm.monitor = self
        self.start_mono = time.perf_counter()
        self.start_wall = time.time()
        vm.telemetry.add_sink(self)
        return self

    # -- TelemetrySink protocol ----------------------------------------------------------

    def emit(self, event) -> None:
        self.events_seen += 1
        if isinstance(event, GcEvent):
            self._observe_gc(event)
        elif isinstance(event, DegradedEvent):
            self.degradations_by_kind[event.kind] = (
                self.degradations_by_kind.get(event.kind, 0) + 1
            )
        elif getattr(event, "event", None) == "alert":
            self.alerts.append(event)

    def close(self) -> None:
        self.closed = True

    # -- ingest -----------------------------------------------------------------------

    def _observe_gc(self, event: GcEvent) -> None:
        self.gc_events_seen += 1
        t = event.mono_time or time.perf_counter()
        if self.start_mono is None or t - event.pause_s < self.start_mono:
            # First event beat attach(), or the pause began before it:
            # anchor the observation window so utilization stays in [0,1].
            self.start_mono = t - event.pause_s
            self.start_wall = (event.wall_time or time.time()) - event.pause_s
        self.pause_intervals.append((t - event.pause_s, t))
        series = self.series
        series["pause_s"].append(t, event.pause_s)
        series["heap_live_bytes"].append(t, float(event.bytes_after))
        series["occupancy"].append(t, event.occupancy_after)
        series["sweep_debt_chunks"].append(t, float(event.sweep_debt_chunks))
        series["quarantine_depth"].append(t, float(event.quarantine_depth))
        series["assertion_checks"].append(t, float(event.assertion_checks))
        series["violations"].append(t, float(event.violations))
        series["ownership_s"].append(t, event.ownership_s)
        slos = self.slos
        if slos is not None:
            alerts = slos.observe(self, event)
            if alerts and self.vm is not None and self.vm.telemetry is not None:
                for alert in alerts:
                    # Back through the sink fan-out (JSONL rows, breakers,
                    # and this hub's own alert log all see it).
                    self.vm.telemetry.broadcast(alert)
        # The trailing-window utilization is recorded *after* SLO
        # evaluation so mmu_floor objectives judge the same number.
        series["utilization"].append(t, self.utilization_now())

    # -- MMU / utilization queries ------------------------------------------------------

    def observed_span(self) -> tuple[float, float]:
        """``(t0, t1)`` of the observation window on the monotonic clock."""
        t0 = self.start_mono if self.start_mono is not None else 0.0
        t1 = self.pause_intervals[-1][1] if self.pause_intervals else t0
        return t0, max(t0, t1)

    def mmu(self, window_s: float) -> float:
        t0, t1 = self.observed_span()
        return mmu(list(self.pause_intervals), window_s, t0, t1)

    def mmu_points(self, windows: Iterable[float]) -> list[tuple[float, float]]:
        t0, t1 = self.observed_span()
        return mmu_curve(list(self.pause_intervals), windows, t0, t1)

    def utilization_now(self, window_s: float = 1.0) -> float:
        """Mutator utilization over the trailing ``window_s`` seconds."""
        t0, t1 = self.observed_span()
        if t1 <= t0:
            return 1.0
        start = max(t0, t1 - window_s)
        span = t1 - start
        if span <= 0:
            return 1.0
        busy = 0.0
        for s, e in self.pause_intervals:
            lo, hi = max(s, start), min(e, t1)
            if hi > lo:
                busy += hi - lo
        return max(0.0, (span - busy) / span)

    def utilization_buckets(self, bucket_s: float) -> list[tuple[float, float]]:
        t0, t1 = self.observed_span()
        return utilization_timeline(list(self.pause_intervals), t0, t1, bucket_s)

    def uptime_s(self) -> float:
        if self.start_mono is None:
            return 0.0
        return max(0.0, time.perf_counter() - self.start_mono)

    def __repr__(self) -> str:
        return (
            f"<MonitorHub {self.gc_events_seen} GC events, "
            f"{len(self.pause_intervals)} intervals, "
            f"slos={'on' if self.slos is not None else 'off'}>"
        )
