#!/usr/bin/env python
"""Regenerate every figure/table of the paper's evaluation in one run.

Prints the ASCII analog of Figures 2–5 plus the §3.1.2 assertion-volume
table, side by side with the paper's reported numbers.  Run:

    python examples/regenerate_figures.py [--trials N] [--full]

``--trials`` controls measured trials per configuration (default 3; the
paper used 20).  ``--full`` runs the complete benchmark suite instead of
the fast cross-section.
"""

import argparse

from repro.bench import (
    PAPER_REFERENCE,
    infrastructure_figures,
    withassertions_figures,
)

FAST_SUITE = ["antlr", "bloat", "jess", "xalan", "mtrt", "db", "lusearch", "pseudojbb"]


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trials", type=int, default=3)
    parser.add_argument("--full", action="store_true",
                        help="run the whole suite (slower)")
    args = parser.parse_args()
    benchmarks = None if args.full else FAST_SUITE

    print(f"Running Base vs Infrastructure over "
          f"{'the full suite' if args.full else FAST_SUITE} "
          f"({args.trials} trials each)...")
    infra = infrastructure_figures(trials=args.trials, benchmarks=benchmarks)
    print()
    print(infra["fig2"].render())
    print()
    print(infra["fig3"].render())

    print()
    print("Running Base vs Infrastructure vs WithAssertions on db + pseudojbb...")
    asserted = withassertions_figures(trials=args.trials)
    print()
    print(asserted["fig4"].render())
    print()
    print(asserted["fig5"].render())
    print()
    print(asserted["fig5-infra"].render())

    print()
    print("Paper aggregates for comparison:")
    for fig, ref in PAPER_REFERENCE.items():
        print(f"  {fig}: {ref}")


if __name__ == "__main__":
    main()
