"""Heap spaces: address allocation policies over the simulated address space.

Two policies are provided, matching the collectors built on top of them:

* :class:`FreeListSpace` — segregated-fit free-list allocation for the
  MarkSweep collector (the paper's configuration).
* :class:`BumpSpace` — monotone bump-pointer allocation for the copying
  (SemiSpace) collector and for generational nurseries.

A space deals purely in *addresses and byte counts*; objects themselves live
in the :class:`~repro.heap.heap.ObjectHeap` table.  Every space enforces a
byte capacity so that allocation pressure triggers collections at realistic
points (the paper runs each benchmark at 2× its minimum heap size).
"""

from __future__ import annotations

from repro.errors import HeapError
from repro.heap.freelist import FreeList, size_class_for
from repro.heap.layout import HEAP_BASE_ADDRESS, align_up

#: Chunk granularity for the free-list space: allocated-cell metadata is
#: kept per 64 KB chunk of address space so the sweep can walk (and the
#: lazy sweeper can defer) one chunk at a time instead of snapshotting the
#: whole object table.
CHUNK_SHIFT = 16
CHUNK_BYTES = 1 << CHUNK_SHIFT


class Space:
    """Common accounting shared by all space policies."""

    def __init__(self, name: str, capacity_bytes: int, base_address: int = HEAP_BASE_ADDRESS):
        if capacity_bytes <= 0:
            raise HeapError(f"space {name!r} needs a positive capacity")
        self.name = name
        self.capacity_bytes = capacity_bytes
        self.bytes_in_use = 0
        self._base = base_address
        self._cursor = base_address
        #: Fault-injection hook: while positive, capacity checks refuse the
        #: next N requests as if the space were full (see repro.faults).
        self._fault_refusals = 0

    @property
    def bytes_free(self) -> int:
        return self.capacity_bytes - self.bytes_in_use

    def deny_next(self, count: int = 1) -> None:
        """Arm ``count`` simulated allocation failures (fault injection)."""
        self._fault_refusals += count

    def can_fit(self, nbytes: int) -> bool:
        if self._fault_refusals:
            self._fault_refusals -= 1
            return False
        return self.bytes_in_use + nbytes <= self.capacity_bytes

    def _bump(self, nbytes: int) -> int:
        address = self._cursor
        self._cursor += align_up(nbytes)
        return address

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} {self.name}: "
            f"{self.bytes_in_use}/{self.capacity_bytes} bytes>"
        )


class FreeListSpace(Space):
    """Segregated-fit space: cells recycle through per-size-class free lists."""

    def __init__(self, name: str, capacity_bytes: int, base_address: int = HEAP_BASE_ADDRESS):
        super().__init__(name, capacity_bytes, base_address)
        self.free_list = FreeList()
        #: chunk id (address >> CHUNK_SHIFT) -> {address: cell size} for
        #: every allocated cell.  This models the side metadata a real
        #: block-structured space derives from block headers, organized so
        #: the sweep can visit one chunk's cells without touching the rest.
        self._chunks: dict[int, dict[int, int]] = {}

    def _record(self, address: int, cell: int) -> None:
        chunk_id = address >> CHUNK_SHIFT
        chunk = self._chunks.get(chunk_id)
        if chunk is None:
            self._chunks[chunk_id] = {address: cell}
        else:
            chunk[address] = cell
        self.bytes_in_use += cell

    def allocate(self, nbytes: int) -> int | None:
        """Allocate a cell for ``nbytes``; None when the space is full."""
        cell = size_class_for(nbytes)
        if not self.can_fit(cell):
            return None
        address = self.free_list.pop(cell)
        if address is None:
            address = self._bump(cell)
        self._record(address, cell)
        return address

    def free(self, address: int) -> int:
        """Release the cell at ``address``; returns the cell size in bytes."""
        chunk = self._chunks.get(address >> CHUNK_SHIFT)
        cell = chunk.pop(address, None) if chunk is not None else None
        if cell is None:
            raise HeapError(f"free of unallocated address {address:#x}")
        self.bytes_in_use -= cell
        self.free_list.push(address, cell)
        return cell

    def cell_size(self, address: int) -> int:
        return self._chunks[address >> CHUNK_SHIFT][address]

    def contains(self, address: int) -> bool:
        chunk = self._chunks.get(address >> CHUNK_SHIFT)
        return chunk is not None and address in chunk

    # -- allocation fast path (collector run cache) -----------------------------

    def reserve_run(self, cell: int, limit: int) -> list[int]:
        """Hand out up to ``limit`` uncommitted cells of one size class.

        Reserved cells are *not* charged against capacity and carry no
        metadata until :meth:`commit` — they are free-list inventory (or
        fresh bump addresses) parked in the collector's allocation cache.
        The returned list is ordered for ``list.pop()`` so the cache yields
        cells in the same order ``allocate`` would have (free-list LIFO
        first, then ascending bump addresses).
        """
        run = self.free_list.pop_run(cell, limit)
        if not run:
            if not self.can_fit(cell):
                return []
            run = [self._bump(cell) for _ in range(limit)]
        run.reverse()
        return run

    def commit(self, address: int, cell: int) -> bool:
        """Charge and record a reserved cell; False when capacity is gone."""
        if self._fault_refusals:
            self._fault_refusals -= 1
            return False
        if self.bytes_in_use + cell > self.capacity_bytes:
            return False
        self._record(address, cell)
        return True

    def uncommit(self, address: int, cell: int) -> None:
        """Undo one :meth:`commit`'s byte charge without recycling the cell.

        Quarantine repair path: when a commit lands on an address the space
        already tracked (corrupted free-list metadata handed the same cell
        out twice), the ``_record`` overwrite left ``bytes_in_use`` charged
        twice for one cell.  The hardened allocator fences the address and
        calls this to drop the double charge; the cell itself stays recorded
        and is deliberately never reused.
        """
        self.bytes_in_use -= cell

    def release_run(self, cell: int, addresses: list[int]) -> None:
        """Return unused reserved cells to the free list (cache flush)."""
        self.free_list.push_many(addresses, cell)

    # -- chunked sweep interface -------------------------------------------------

    def chunk_ids(self) -> list[int]:
        """Ids of every chunk that currently holds allocated cells."""
        return list(self._chunks)

    def chunk_cells(self, chunk_id: int) -> list[tuple[int, int]]:
        """Snapshot of one chunk's allocated ``(address, cell size)`` pairs."""
        chunk = self._chunks.get(chunk_id)
        return list(chunk.items()) if chunk else []

    def free_chunk_cells(self, chunk_id: int, by_class: dict[int, list[int]]) -> int:
        """Batch-free swept cells of one chunk; returns bytes released.

        One bucket splice per size class replaces the per-object
        ``free()`` path the eager sweep used to take.
        """
        chunk = self._chunks[chunk_id]
        released = 0
        for cell, addresses in by_class.items():
            for address in addresses:
                del chunk[address]
            self.free_list.push_many(addresses, cell)
            released += cell * len(addresses)
        if not chunk:
            del self._chunks[chunk_id]
        self.bytes_in_use -= released
        return released


class BumpSpace(Space):
    """Monotone bump allocation; reclamation only by wholesale reset.

    Used as each semispace of the copying collector and as the nursery of
    the generational collector.  ``reset`` empties the space (after
    evacuation) and rewinds the bump cursor.
    """

    def __init__(self, name: str, capacity_bytes: int, base_address: int = HEAP_BASE_ADDRESS):
        super().__init__(name, capacity_bytes, base_address)
        self._allocated: dict[int, int] = {}

    def allocate(self, nbytes: int) -> int | None:
        nbytes = align_up(nbytes)
        if not self.can_fit(nbytes):
            return None
        address = self._bump(nbytes)
        self._allocated[address] = nbytes
        self.bytes_in_use += nbytes
        return address

    def contains(self, address: int) -> bool:
        return address in self._allocated

    def addresses(self) -> list[int]:
        return list(self._allocated)

    def release(self, address: int) -> int:
        """Drop one allocation (used when evacuating survivors one by one)."""
        nbytes = self._allocated.pop(address)
        self.bytes_in_use -= nbytes
        return nbytes

    def reset(self) -> None:
        """Empty the space entirely and rewind the bump cursor."""
        self._allocated.clear()
        self.bytes_in_use = 0
        self._cursor = self._base
