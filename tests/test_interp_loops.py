"""MiniJ for / break / continue semantics."""

import pytest

from repro.errors import MiniJCompileError
from repro.interp.interpreter import run_source
from repro.runtime.vm import VirtualMachine


def output_of(source):
    return run_source(source, VirtualMachine(heap_bytes=4 << 20)).output


class TestForLoops:
    def test_basic_counting(self):
        out = output_of(
            """
            def main(): void {
              var sum: int = 0;
              for (var i: int = 0; i < 5; i = i + 1) { sum = sum + i; }
              print(sum);
            }
            """
        )
        assert out == ["10"]

    def test_init_can_be_assignment(self):
        out = output_of(
            """
            def main(): void {
              var i: int = 99;
              var n: int = 0;
              for (i = 0; i < 3; i = i + 1) { n = n + 1; }
              print(n); print(i);
            }
            """
        )
        assert out == ["3", "3"]

    def test_all_clauses_optional(self):
        out = output_of(
            """
            def main(): void {
              var i: int = 0;
              for (;;) {
                i = i + 1;
                if (i == 4) { break; }
              }
              print(i);
            }
            """
        )
        assert out == ["4"]

    def test_zero_iterations(self):
        out = output_of(
            """
            def main(): void {
              var n: int = 0;
              for (var i: int = 9; i < 5; i = i + 1) { n = n + 1; }
              print(n);
            }
            """
        )
        assert out == ["0"]

    def test_nested_for(self):
        out = output_of(
            """
            def main(): void {
              var total: int = 0;
              for (var i: int = 0; i < 3; i = i + 1) {
                for (var j: int = 0; j < 4; j = j + 1) { total = total + 1; }
              }
              print(total);
            }
            """
        )
        assert out == ["12"]

    def test_for_over_heap_array(self):
        out = output_of(
            """
            def main(): void {
              var a: int[] = new int[6];
              for (var i: int = 0; i < len(a); i = i + 1) { a[i] = i * i; }
              var sum: int = 0;
              for (var j: int = 0; j < len(a); j = j + 1) { sum = sum + a[j]; }
              print(sum);
            }
            """
        )
        assert out == ["55"]


class TestBreakContinue:
    def test_break_in_while(self):
        out = output_of(
            """
            def main(): void {
              var i: int = 0;
              while (true) {
                i = i + 1;
                if (i >= 7) { break; }
              }
              print(i);
            }
            """
        )
        assert out == ["7"]

    def test_continue_in_while(self):
        out = output_of(
            """
            def main(): void {
              var i: int = 0;
              var odds: int = 0;
              while (i < 10) {
                i = i + 1;
                if (i % 2 == 0) { continue; }
                odds = odds + 1;
              }
              print(odds);
            }
            """
        )
        assert out == ["5"]

    def test_continue_in_for_runs_update(self):
        """continue must jump to the update clause, not the condition."""
        out = output_of(
            """
            def main(): void {
              var evens: int = 0;
              for (var i: int = 0; i < 10; i = i + 1) {
                if (i % 2 == 1) { continue; }
                evens = evens + 1;
              }
              print(evens);
            }
            """
        )
        assert out == ["5"]

    def test_break_exits_only_inner_loop(self):
        out = output_of(
            """
            def main(): void {
              var count: int = 0;
              for (var i: int = 0; i < 3; i = i + 1) {
                for (var j: int = 0; j < 10; j = j + 1) {
                  if (j == 2) { break; }
                  count = count + 1;
                }
              }
              print(count);
            }
            """
        )
        assert out == ["6"]

    def test_continue_targets_inner_loop(self):
        out = output_of(
            """
            def main(): void {
              var count: int = 0;
              for (var i: int = 0; i < 2; i = i + 1) {
                for (var j: int = 0; j < 4; j = j + 1) {
                  if (j == 0) { continue; }
                  count = count + 1;
                }
              }
              print(count);
            }
            """
        )
        assert out == ["6"]

    def test_break_outside_loop_rejected(self):
        with pytest.raises(MiniJCompileError):
            output_of("def main(): void { break; }")

    def test_continue_outside_loop_rejected(self):
        with pytest.raises(MiniJCompileError):
            output_of("def main(): void { continue; }")

    def test_break_in_if_outside_loop_rejected(self):
        with pytest.raises(MiniJCompileError):
            output_of("def main(): void { if (true) { break; } }")


class TestLoopsWithGc:
    def test_allocation_in_for_loop_under_pressure(self):
        vm = VirtualMachine(heap_bytes=24 << 10)
        interp = run_source(
            """
            class C { var v: int; }
            def main(): void {
              var keep: C = null;
              for (var i: int = 0; i < 2000; i = i + 1) {
                var c: C = new C();
                c.v = i;
                if (i % 100 == 0) { keep = c; }
              }
              print(keep.v);
            }
            """,
            vm,
        )
        assert interp.output == ["1900"]
        assert vm.stats.collections > 0
