"""Class registry: the VM's analog of Jikes RVM's loaded-class table.

The registry assigns dense class ids, interns array classes on demand, and
is the natural home for the per-class words that §2.4.1 of the paper adds to
``RVMClass`` (instance limit and instance count for ``assert-instances``) —
those words live on :class:`~repro.heap.object_model.ClassDescriptor`; the
registry additionally keeps the list of *tracked* types so the collector can
iterate "our list of tracked types, checking whether the instance limit has
been violated" at the end of each GC.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.errors import LayoutError
from repro.heap.object_model import ClassDescriptor, FieldKind

#: Name of the implicit root of the class hierarchy.
OBJECT_CLASS_NAME = "Object"


class ClassRegistry:
    """All classes loaded into one VM instance."""

    def __init__(self) -> None:
        self._by_name: dict[str, ClassDescriptor] = {}
        self._by_id: list[ClassDescriptor] = []
        #: Types with an ``assert-instances`` limit ("the array of tracked
        #: types", §2.4.1) — one word per tracked type, as the paper costs it.
        self.tracked_types: list[ClassDescriptor] = []
        self.object_class = self.define(OBJECT_CLASS_NAME)

    # -- definition -------------------------------------------------------------

    def define(
        self,
        name: str,
        fields: Sequence[tuple[str, FieldKind]] = (),
        superclass: Optional[ClassDescriptor | str] = None,
    ) -> ClassDescriptor:
        """Define a new class; field specs are ``(name, FieldKind)`` pairs."""
        if name in self._by_name:
            raise LayoutError(f"class {name!r} is already defined")
        if isinstance(superclass, str):
            superclass = self.get(superclass)
        if superclass is None and name != OBJECT_CLASS_NAME:
            superclass = self._by_name.get(OBJECT_CLASS_NAME)
        cls = ClassDescriptor(
            class_id=len(self._by_id),
            name=name,
            field_specs=fields,
            superclass=superclass,
        )
        self._by_name[name] = cls
        self._by_id.append(cls)
        return cls

    def array_of(self, element: ClassDescriptor | FieldKind) -> ClassDescriptor:
        """Intern the array class for the given element class or scalar kind.

        Reference arrays are named ``"T[]"`` after their element class;
        scalar arrays are named ``"int[]"`` etc.  All reference arrays trace
        their elements; the element class is used only for naming and
        diagnostics (the simulator's arrays are covariant, like Java's).
        """
        if isinstance(element, ClassDescriptor):
            name = f"{element.name}[]"
            kind = FieldKind.REF
        else:
            name = f"{element.value}[]"
            kind = element
        existing = self._by_name.get(name)
        if existing is not None:
            return existing
        cls = ClassDescriptor(
            class_id=len(self._by_id),
            name=name,
            is_array=True,
            element_kind=kind,
        )
        self._by_name[name] = cls
        self._by_id.append(cls)
        return cls

    # -- lookup -------------------------------------------------------------------

    def get(self, name: str) -> ClassDescriptor:
        try:
            return self._by_name[name]
        except KeyError:
            raise LayoutError(f"class {name!r} is not defined") from None

    def maybe(self, name: str) -> Optional[ClassDescriptor]:
        return self._by_name.get(name)

    def by_id(self, class_id: int) -> ClassDescriptor:
        return self._by_id[class_id]

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __iter__(self) -> Iterable[ClassDescriptor]:
        return iter(self._by_id)

    def __len__(self) -> int:
        return len(self._by_id)

    # -- assert-instances support -------------------------------------------------

    def track_instances(self, cls: ClassDescriptor, limit: int) -> None:
        """Set the instance limit for a class and add it to the tracked list."""
        if limit < 0:
            raise LayoutError(f"instance limit must be >= 0, got {limit}")
        cls.instance_limit = limit
        if cls not in self.tracked_types:
            self.tracked_types.append(cls)

    def untrack_instances(self, cls: ClassDescriptor) -> None:
        cls.instance_limit = None
        if cls in self.tracked_types:
            self.tracked_types.remove(cls)

    def reset_instance_counts(self) -> None:
        """Zero the per-GC live-instance counters (start of each collection)."""
        for cls in self.tracked_types:
            cls.instance_count = 0
