"""Comparison cmp-qvm: batched GC assertions vs QVM-style heap probes.

§4.1: QVM "triggers a garbage collection for each heap probe that must be
checked, incurring a hefty overhead that is mitigated by sampling ...  Our
system, on the other hand, batches assertions together and checks them all
in a single heap traversal during a regularly scheduled collection."

The benchmark instruments the same pseudojbb run three ways — deferred
assert-dead (the paper's system), an immediate probe per destroyed Order
(QVM semantics), and 1-in-10 sampled probes (QVM's mitigation) — and
compares collections triggered, objects traced, and wall time.
"""

from __future__ import annotations

import time

from repro.core.probes import HeapProbes
from repro.runtime.vm import VirtualMachine
from repro.workloads.jbb import JbbConfig, PseudoJbb
from repro.workloads.jbb.entities import STATUS_DESTROYED
from repro.workloads.suite import HEAP_BUDGETS

CONFIG = dict(
    warehouses=1,
    districts_per_warehouse=2,
    customers_per_district=8,
    iterations=1,
    transactions_per_iteration=250,
)


def _run_with_assertions():
    vm = VirtualMachine(heap_bytes=HEAP_BUDGETS["pseudojbb"])
    start = time.perf_counter()
    PseudoJbb(vm, JbbConfig(**CONFIG, assert_dead_orders=True)).run()
    vm.gc(reason="final batched check")
    elapsed = time.perf_counter() - start
    return {
        "mode": "gc-assertions",
        "collections": vm.stats.collections,
        "objects_traced": vm.stats.objects_traced,
        "seconds": elapsed,
        "checks": vm.assertions.call_counts()["assert-dead"],
    }


def _run_with_probes(sampling: int):
    """The same transaction mix, but each destroyed Order is checked by an
    immediate QVM-style probe at the exact program point."""
    vm = VirtualMachine(heap_bytes=HEAP_BUDGETS["pseudojbb"])
    probes = HeapProbes(vm, sampling=sampling)
    jbb = PseudoJbb(vm, JbbConfig(**CONFIG))

    from repro.workloads.jbb.entities import (
        build_company,
        destroy_order,
        order_table_of,
        process_order,
    )

    start = time.perf_counter()
    frame = vm.current_thread.push_frame("qvm.driver")
    try:
        with vm.scope("company"):
            company = build_company(
                vm,
                CONFIG["warehouses"],
                CONFIG["districts_per_warehouse"],
                CONFIG["customers_per_district"],
            )
            frame.set_ref("company", company.address)
        for _tx in range(CONFIG["transactions_per_iteration"]):
            kind = jbb.rng.choice(["new_order"] * 10 + ["payment"] * 10 + ["delivery"] * 3)
            if kind == "new_order":
                jbb.do_new_order(company)
            elif kind == "payment":
                jbb.do_payment(company)
            else:
                district = jbb._pick_district(company)
                table = order_table_of(district)
                for order_id in table.first_keys(jbb.config.delivery_batch):
                    order = table.get(order_id)
                    if order is None or order["status"] == STATUS_DESTROYED:
                        table.remove(order_id)
                        continue
                    process_order(order)
                    table.remove(order_id)
                    destroy_order(order, clear_last_order=True)
                    # The QVM-style check, at the exact program point:
                    probes.probe_dead(order)
                jbb.result.deliveries += 1
    finally:
        vm.current_thread.pop_frame()
    elapsed = time.perf_counter() - start
    return {
        "mode": f"qvm-probes(1/{sampling})",
        "collections": vm.stats.collections,
        "objects_traced": vm.stats.objects_traced,
        "seconds": elapsed,
        "checks": probes.stats.executed,
        "requested": probes.stats.requested,
    }


def test_batched_assertions_vs_immediate_probes(once, figure_report):
    def run():
        return (
            _run_with_assertions(),
            _run_with_probes(sampling=1),
            _run_with_probes(sampling=10),
        )

    batched, probed, sampled = once(run)

    lines = ["Comparison cmp-qvm (batched assertions vs immediate probes):"]
    for row in (batched, probed, sampled):
        lines.append(
            f"  {row['mode']:20} collections={row['collections']:<5} "
            f"objects traced={row['objects_traced']:<8} "
            f"time={row['seconds'] * 1e3:7.1f} ms  checks={row['checks']}"
        )
    figure_report.append("\n".join(lines))

    # §4.1's claim: probe-per-check triggers a collection per check, an
    # order of magnitude (or more) more collections than batching...
    assert probed["collections"] > 10 * batched["collections"]
    # ...and correspondingly more tracing work.
    assert probed["objects_traced"] > 3 * batched["objects_traced"]
    # Sampling mitigates (fewer GCs than full probing) but checks less.
    assert sampled["collections"] < probed["collections"]
    assert sampled["checks"] < sampled["requested"]
    # Batching checked *every* registration in far fewer collections.
    assert batched["checks"] > 0
