"""Small-unit coverage: stats, scopes, errors, heap stats."""

import pytest

from repro.errors import (
    AssertionViolationHalt,
    MiniJSyntaxError,
    OutOfMemoryError,
    ReproError,
)
from repro.gc.stats import GcStats, PhaseTimer
from repro.heap.heap import HeapStats
from repro.runtime.handles import HandleScope
from tests.conftest import build_chain, make_node_class


class TestGcStats:
    def test_all_counters_start_zero(self):
        stats = GcStats()
        for field in GcStats.__slots__:
            assert getattr(stats, field) == 0

    def test_field_partition_is_total(self):
        assert set(GcStats.TIMER_FIELDS) | set(GcStats.COUNTER_FIELDS) == set(
            GcStats.__slots__
        )
        assert not set(GcStats.TIMER_FIELDS) & set(GcStats.COUNTER_FIELDS)

    def test_snapshot_separates_timers_from_counters(self):
        stats = GcStats()
        stats.collections = 3
        stats.gc_seconds = 0.25
        snap = stats.snapshot()
        assert set(snap) == {"counters", "timers"}
        assert set(snap["counters"]) == set(GcStats.COUNTER_FIELDS)
        assert set(snap["timers"]) == set(GcStats.TIMER_FIELDS)
        assert snap["counters"]["collections"] == 3
        assert snap["timers"]["gc_seconds"] == pytest.approx(0.25)
        assert all(isinstance(v, int) for v in snap["counters"].values())
        assert all(isinstance(v, float) for v in snap["timers"].values())

    def test_diff_gives_per_window_delta(self):
        before = GcStats()
        before.objects_traced = 10
        before.gc_seconds = 1.0
        after = before.copy()
        after.objects_traced = 25
        after.gc_seconds = 1.5
        delta = after.diff(before)
        assert delta.objects_traced == 15
        assert delta.gc_seconds == pytest.approx(0.5)
        assert before.objects_traced == 10  # inputs untouched

    def test_copy_is_independent(self):
        stats = GcStats()
        stats.collections = 2
        clone = stats.copy()
        clone.collections = 9
        assert stats.collections == 2

    def test_merged_with_sums(self):
        a, b = GcStats(), GcStats()
        a.collections = 2
        b.collections = 3
        a.gc_seconds = 0.5
        b.gc_seconds = 0.25
        merged = a.merged_with(b)
        assert merged.collections == 5
        assert merged.gc_seconds == pytest.approx(0.75)
        assert a.collections == 2  # inputs untouched

    def test_phase_timer_accumulates(self):
        stats = GcStats()
        with PhaseTimer(stats, "mark_seconds"):
            pass
        first = stats.mark_seconds
        with PhaseTimer(stats, "mark_seconds"):
            pass
        assert stats.mark_seconds >= first >= 0

    def test_phase_timer_records_on_exception(self):
        stats = GcStats()
        with pytest.raises(ValueError):
            with PhaseTimer(stats, "sweep_seconds"):
                raise ValueError("boom")
        assert stats.sweep_seconds >= 0


class TestHeapStats:
    def test_live_derived_from_alloc_and_free(self):
        stats = HeapStats()
        stats.objects_allocated = 10
        stats.objects_freed = 4
        assert stats.objects_live == 6

    def test_snapshot_shape(self):
        snap = HeapStats().snapshot()
        assert {"objects_allocated", "objects_live", "bytes_freed"} <= set(snap)


class TestHandleScope:
    def test_register_and_roots(self):
        scope = HandleScope("s")
        scope.register(0x1000)
        scope.register(0x2000)
        assert len(scope) == 2
        entries = list(scope.root_entries())
        assert all("'s'" in desc for desc, _a in entries)
        assert {a for _d, a in entries} == {0x1000, 0x2000}

    def test_null_entries_not_roots(self):
        scope = HandleScope()
        scope.register(0)
        assert list(scope.root_entries()) == []

    def test_forwarding(self):
        scope = HandleScope()
        scope.register(0x1000)
        scope.apply_forwarding({0x1000: 0x9000})
        assert scope.addresses == [0x9000]

    def test_null_out_removes(self):
        scope = HandleScope()
        scope.register(0x1000)
        scope.register(0x2000)
        scope.null_out({0x1000})
        assert scope.addresses == [0x2000]

    def test_nested_scopes_unwind_in_order(self, vm, node_class):
        with vm.scope("outer"):
            outer_obj = vm.new(node_class)
            with vm.scope("inner"):
                inner_obj = vm.new(node_class)
                vm.gc()
                assert outer_obj.is_live and inner_obj.is_live
            vm.gc()
            assert outer_obj.is_live
            assert not inner_obj.is_live
        vm.gc()
        assert not outer_obj.is_live


class TestErrors:
    def test_hierarchy(self):
        assert issubclass(OutOfMemoryError, ReproError)
        assert issubclass(MiniJSyntaxError, ReproError)
        assert issubclass(AssertionViolationHalt, ReproError)

    def test_syntax_error_carries_position(self):
        err = MiniJSyntaxError("bad", 3, 7)
        assert err.line == 3
        assert err.column == 7
        assert "line 3" in str(err)

    def test_halt_carries_violation(self):
        sentinel = object()
        err = AssertionViolationHalt(sentinel)
        assert err.violation is sentinel

    def test_oom_message_is_informative(self, node_class):
        from repro.runtime.vm import VirtualMachine

        vm = VirtualMachine(heap_bytes=8 << 10)
        cls = make_node_class(vm)
        with pytest.raises(OutOfMemoryError) as exc:
            build_chain(vm, cls, 10_000)
        text = str(exc.value)
        assert "marksweep" in text
        assert "Node" in text
