"""Cork-style growth and staleness baselines."""

import pytest

from repro.baselines import StalenessDetector, TypeGrowthProfiler
from repro.heap.object_model import FieldKind
from repro.runtime.vm import VirtualMachine
from repro.workloads.containers import Vector
from tests.conftest import build_chain, make_node_class


class TestTypeGrowthProfiler:
    def test_flags_monotonically_growing_type(self, vm):
        leak_cls = vm.define_class("Leaky", [("payload", FieldKind.INT)])
        profiler = TypeGrowthProfiler(vm)
        retained = Vector.new(vm)
        vm.statics.set_ref("retained", retained.handle.address)
        for round_ in range(5):
            with vm.scope():
                for _ in range(10):
                    retained.append(vm.new(leak_cls))
            vm.gc()
        reports = profiler.report()
        assert any(r.type_name == "Leaky" for r in reports)
        leaky = next(r for r in reports if r.type_name == "Leaky")
        assert leaky.last_bytes > leaky.first_bytes
        assert "Leaky" in leaky.render()

    def test_stable_type_not_flagged(self, vm, node_class):
        profiler = TypeGrowthProfiler(vm)
        build_chain(vm, node_class, 10)
        for _ in range(5):
            vm.gc()
        assert profiler.report() == []

    def test_churning_type_not_flagged(self, vm, node_class):
        """High allocation but stable live volume: no report."""
        profiler = TypeGrowthProfiler(vm)
        build_chain(vm, node_class, 10)
        for _ in range(5):
            with vm.scope():
                for _ in range(50):
                    vm.new(node_class)
            vm.gc()
        assert profiler.report() == []

    def test_reports_types_not_instances(self, vm):
        """The paper's precision contrast: Cork output has no paths."""
        leak_cls = vm.define_class("Leaky", [("p", FieldKind.INT)])
        profiler = TypeGrowthProfiler(vm)
        retained = Vector.new(vm)
        vm.statics.set_ref("r", retained.handle.address)
        for _ in range(4):
            with vm.scope():
                for _ in range(8):
                    retained.append(vm.new(leak_cls))
            vm.gc()
        report = profiler.report()[0]
        assert not hasattr(report, "path")
        assert not hasattr(report, "address")

    def test_detach_stops_observing(self, vm, node_class):
        profiler = TypeGrowthProfiler(vm)
        vm.gc()
        profiler.detach()
        vm.gc()
        assert profiler.collections_observed == 1


class TestStalenessDetector:
    def test_idle_objects_become_candidates(self, vm, node_class):
        nodes = build_chain(vm, node_class, 3)
        detector = StalenessDetector(vm, stale_after=2)
        for _ in range(3):
            vm.gc()
        candidates = detector.candidates()
        assert len(candidates) == 3
        assert candidates[0].idle_epochs >= 2

    def test_accessed_objects_stay_fresh(self, vm, node_class):
        nodes = build_chain(vm, node_class, 2)
        detector = StalenessDetector(vm, stale_after=2)
        for _ in range(4):
            nodes[0]["value"]  # the read barrier refreshes node 0
            vm.gc()
        stale_addresses = {c.address for c in detector.candidates()}
        assert nodes[0].obj.address not in stale_addresses
        assert nodes[1].obj.address in stale_addresses

    def test_false_positive_on_live_idle_data(self, vm, node_class):
        """The heuristic's weakness the paper calls out: rarely-touched but
        perfectly live data is flagged."""
        nodes = build_chain(vm, node_class, 1)  # a "config" object
        detector = StalenessDetector(vm, stale_after=2)
        for _ in range(3):
            vm.gc()
        assert detector.candidates()  # flagged despite being alive and needed

    def test_freed_objects_drop_out(self, vm, node_class):
        with vm.scope():
            vm.new(node_class)
        detector = StalenessDetector(vm, stale_after=1)
        vm.gc()
        vm.gc()
        assert detector.candidates() == []

    def test_candidate_types_summary(self, vm, node_class):
        build_chain(vm, node_class, 4)
        detector = StalenessDetector(vm, stale_after=1)
        vm.gc()
        vm.gc()
        assert detector.candidate_types() == {"Node": 4}

    def test_single_hook_enforced(self, vm):
        StalenessDetector(vm)
        with pytest.raises(RuntimeError):
            StalenessDetector(vm)

    def test_detach_restores_hook(self, vm):
        detector = StalenessDetector(vm)
        detector.detach()
        assert vm.access_hook is None
        StalenessDetector(vm)  # re-installable

    def test_read_counter(self, vm, node_class):
        nodes = build_chain(vm, node_class, 1)
        detector = StalenessDetector(vm)
        nodes[0]["value"]
        nodes[0]["value"]
        assert detector.reads_observed == 2
