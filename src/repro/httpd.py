"""Shared stdlib HTTP serving: the one ThreadingHTTPServer wrapper.

Both serving layers — the monitor's ``/metrics`` ``/health`` ``/slo``
exporter and the assertion service's ``/metrics`` ``/health`` sidecar —
need the same five lines of plumbing: a ``ThreadingHTTPServer`` on a
daemon thread, an ephemeral-port option for tests, GET routing with a
JSON 404, and silenced per-request logging.  :class:`EndpointServer`
is that plumbing, extracted so neither layer duplicates it.

A route is ``path -> handler`` where the handler takes no arguments and
returns ``(status_code, content_type, body)``; ``body`` may be ``bytes``,
``str`` (encoded UTF-8), or a ``dict`` (serialized as indented JSON).
Handlers run on the serving thread — they must only *read* shared state,
the same scrape-vs-append race contract the monitor server has always
had.  A handler that raises serves a 500 JSON body rather than killing
the connection thread.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Optional, Union

#: The content type Prometheus scrapers expect from a /metrics endpoint.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

JSON_CONTENT_TYPE = "application/json; charset=utf-8"

RouteResult = tuple[int, str, Union[bytes, str, dict]]
RouteHandler = Callable[[], RouteResult]


class _EndpointHandler(BaseHTTPRequestHandler):
    """GET-routes over a route table; everything else is 404 JSON."""

    server_version = "repro-http/1"  # overridden per EndpointServer
    routes: dict[str, RouteHandler]  # set via the bound subclass
    index_name: str

    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        handler = self.routes.get(path)
        if handler is None:
            if path == "/":
                self._respond(200, JSON_CONTENT_TYPE, {
                    "service": self.index_name,
                    "endpoints": sorted(self.routes),
                })
            else:
                self._respond(
                    404, JSON_CONTENT_TYPE, {"error": f"no such endpoint {path!r}"}
                )
            return
        try:
            code, content_type, body = handler()
        except Exception as exc:  # a broken probe must not kill the thread
            self._respond(
                500, JSON_CONTENT_TYPE,
                {"error": f"{type(exc).__name__}: {exc}"},
            )
            return
        self._respond(code, content_type, body)

    def _respond(self, code: int, content_type: str, body) -> None:
        if isinstance(body, dict):
            body = json.dumps(body, indent=2)
        if isinstance(body, str):
            body = body.encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args) -> None:
        """Silence per-request stderr chatter (the CLI owns the terminal)."""


class EndpointServer:
    """Daemon-threaded HTTP server over a static GET route table.

    ``port=0`` binds an ephemeral port (tests, CI); the bound port is
    ``server.port`` after :meth:`start`.  The serving thread is a daemon,
    so a crashing workload never hangs on the exporter.
    """

    def __init__(
        self,
        routes: dict[str, RouteHandler],
        port: int = 0,
        host: str = "127.0.0.1",
        name: str = "repro",
        server_version: str = "repro-http/1",
    ):
        self.routes = dict(routes)
        self.host = host
        self.name = name
        self.server_version = server_version
        self._requested_port = port
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> int:
        if self._httpd is None:
            return self._requested_port
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "EndpointServer":
        if self._httpd is not None:
            return self
        handler = type("BoundEndpointHandler", (_EndpointHandler,), {
            "routes": self.routes,
            "index_name": self.name,
            "server_version": self.server_version,
        })
        self._httpd = ThreadingHTTPServer((self.host, self._requested_port), handler)
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name=f"{self.name}-http",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "EndpointServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
