"""The live serving layer: ``/metrics``, ``/health`` and ``/slo`` over HTTP.

A :class:`MonitorServer` wraps a stdlib ``ThreadingHTTPServer`` on a
daemon thread — no framework, no new dependency — and serves the pull
side of the monitor:

* ``/metrics`` — Prometheus text exposition: the PR-1 telemetry exporter
  verbatim, with the monitor's own families (MMU curve, utilization,
  health score, alert/budget state) appended in the same format.
* ``/health`` — the machine-readable health report as JSON; HTTP 200
  while within SLO, 503 while any alert fires or a budget is exhausted.
* ``/slo`` — the full SLO status document as JSON (always 200; the
  *content* says what is burning).

Handlers only read hub state that is appended from the GC's emit path,
so a scrape races at worst against one in-flight append — both the
deques and the handler snapshots tolerate that.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING, Optional

from repro.monitor.health import health_report, health_score
from repro.monitor.mmu import DEFAULT_MMU_WINDOWS
from repro.telemetry.sinks import _escape_label, _fmt, render_prometheus

if TYPE_CHECKING:
    from repro.monitor.timeseries import MonitorHub

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def render_monitor_metrics(hub: "MonitorHub", namespace: str = "repro") -> str:
    """The monitor's own metric families, exposition-format text.

    Appended after the telemetry exporter's output on ``/metrics``;
    family names are disjoint from the telemetry exporter's, so the
    combined document has no duplicate TYPE declarations.
    """
    lines: list[str] = []

    def metric(name: str, mtype: str, help_text: str) -> str:
        full = f"{namespace}_{name}"
        escaped = help_text.replace("\\", "\\\\").replace("\n", "\\n")
        lines.append(f"# HELP {full} {escaped}")
        lines.append(f"# TYPE {full} {mtype}")
        return full

    def sample(full: str, value, labels: Optional[dict] = None) -> None:
        if labels:
            rendered = ",".join(
                f'{k}="{_escape_label(str(v))}"' for k, v in labels.items()
            )
            lines.append(f"{full}{{{rendered}}} {_fmt(value)}")
        else:
            lines.append(f"{full} {_fmt(value)}")

    full = metric("mutator_utilization_ratio", "gauge",
                  "Mutator utilization over the trailing 1s window.")
    sample(full, hub.utilization_now())

    full = metric("mmu_ratio", "gauge",
                  "Minimum mutator utilization per window width.")
    for window_s, value in hub.mmu_points(DEFAULT_MMU_WINDOWS):
        sample(full, value, {"window": f"{window_s:g}s"})

    full = metric("monitor_gc_events_total", "counter",
                  "GC events the monitor hub has ingested.")
    sample(full, hub.gc_events_seen)

    full = metric("monitor_degradations_total", "counter",
                  "Recovery-path activations observed, by kind.")
    for kind, count in sorted(hub.degradations_by_kind.items()):
        sample(full, count, {"kind": kind})

    full = metric("monitor_alerts_total", "counter",
                  "Burn-rate alert transitions observed, by state.")
    firing = sum(1 for a in hub.alerts if a.state == "firing")
    resolved = sum(1 for a in hub.alerts if a.state == "resolved")
    sample(full, firing, {"state": "firing"})
    sample(full, resolved, {"state": "resolved"})

    if hub.slos is not None:
        full = metric("slo_budget_remaining_ratio", "gauge",
                      "Error budget remaining per objective (1 = untouched).")
        for rule in hub.slos.rules:
            sample(full, rule.budget_remaining(),
                   {"objective": rule.objective.name})
        full = metric("slo_firing", "gauge",
                      "1 while the objective's burn-rate alert is firing.")
        for rule in hub.slos.rules:
            sample(full, 1 if rule.firing else 0,
                   {"objective": rule.objective.name})

    full = metric("heap_health_score", "gauge",
                  "Composite heap health (0-100; 100 is perfectly healthy).")
    sample(full, health_score(hub))

    return "\n".join(lines) + "\n"


class _MonitorHandler(BaseHTTPRequestHandler):
    """Routes the three endpoints; everything else is 404 JSON."""

    server_version = "repro-monitor/1"
    hub: "MonitorHub"  # set by MonitorServer via the handler subclass

    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        if path == "/metrics":
            self._serve_metrics()
        elif path == "/health":
            self._serve_health()
        elif path == "/slo":
            self._serve_slo()
        elif path == "/":
            self._send_json(200, {
                "service": "repro-monitor",
                "endpoints": ["/metrics", "/health", "/slo"],
            })
        else:
            self._send_json(404, {"error": f"no such endpoint {path!r}"})

    def _serve_metrics(self) -> None:
        hub = self.hub
        body = ""
        vm = hub.vm
        if vm is not None and vm.telemetry is not None and vm.telemetry.enabled:
            body += render_prometheus(vm.telemetry)
        body += render_monitor_metrics(hub)
        payload = body.encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", PROMETHEUS_CONTENT_TYPE)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _serve_health(self) -> None:
        report = health_report(self.hub)
        self._send_json(report["http_code"], report)

    def _serve_slo(self) -> None:
        hub = self.hub
        if hub.slos is None:
            self._send_json(200, {"schema": "repro-slo/1", "healthy": True,
                                  "firing": [], "exhausted": [],
                                  "objectives": []})
        else:
            self._send_json(200, hub.slos.status())

    def _send_json(self, code: int, payload: dict) -> None:
        body = json.dumps(payload, indent=2).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args) -> None:
        """Silence per-request stderr chatter (the CLI owns the terminal)."""


class MonitorServer:
    """Daemon-threaded HTTP server over a monitor hub.

    ``port=0`` binds an ephemeral port (tests, CI); the bound port is
    ``server.port`` after :meth:`start`.  The serving thread is a daemon,
    so a crashing workload never hangs on the exporter.
    """

    def __init__(self, hub: "MonitorHub", port: int = 0, host: str = "127.0.0.1"):
        self.hub = hub
        self.host = host
        self._requested_port = port
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> int:
        if self._httpd is None:
            return self._requested_port
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "MonitorServer":
        if self._httpd is not None:
            return self
        handler = type("BoundMonitorHandler", (_MonitorHandler,), {"hub": self.hub})
        self._httpd = ThreadingHTTPServer(
            (self.host, self._requested_port), handler
        )
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-monitor-http",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "MonitorServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
