"""Heap analysis: reachability queries outside of collections.

Violation reports give a path at GC time; when debugging interactively you
often want the same questions answered *now*, without registering an
assertion: who keeps this object alive?  how much memory would freeing it
release?  what does this subsystem retain?

All functions operate on a quiesced VM (no collection in progress) and do
not mutate header bits — they use Python-side visited sets, so they are
safe to call between any two mutator operations.

* :func:`path_to` — shortest root-to-object reference chain (BFS), the
  interactive analog of the Figure-1 report.
* :func:`reachable_from` — the transitive closure below an object.
* :func:`retained_size` — bytes that would become unreachable if one object
  vanished (computed by re-running reachability with the object excluded);
  this is the classic dominator-based "retained size" of heap profilers.
* :func:`incoming_references` — every (holder, slot) that references an
  object, including roots.
* :func:`heap_census` — live objects/bytes per class.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Optional, Union

from repro.heap.layout import NULL
from repro.heap.object_model import HeapObject

if TYPE_CHECKING:
    from repro.runtime.vm import VirtualMachine

Target = Union[HeapObject, int]


def _address_of(vm: "VirtualMachine", target: Target) -> int:
    if isinstance(target, HeapObject):
        return target.address
    if isinstance(target, int):
        return target
    obj = getattr(target, "obj", None)
    if obj is not None:
        return obj.address
    raise TypeError(f"cannot analyze {target!r}")


def path_to(vm: "VirtualMachine", target: Target) -> Optional[tuple[str, list[HeapObject]]]:
    """Shortest reference chain from a root to ``target``.

    Returns ``(root_description, [objects root-first ... target])``, or None
    when the object is unreachable (i.e. garbage awaiting collection).
    """
    heap = vm.heap
    wanted = _address_of(vm, target)
    parents: dict[int, tuple[Optional[int], str]] = {}
    queue: deque[int] = deque()
    for description, address in vm.root_entries():
        if address not in parents:
            parents[address] = (None, description)
            queue.append(address)
    while queue:
        address = queue.popleft()
        if address == wanted:
            chain: list[HeapObject] = []
            cursor: Optional[int] = address
            root_desc = ""
            while cursor is not None:
                chain.append(heap.get(cursor))
                cursor, desc = parents[cursor]
                if cursor is None:
                    root_desc = desc
            chain.reverse()
            return root_desc, chain
        for ref in heap.get(address).reference_slots():
            if ref != NULL and ref not in parents:
                parents[ref] = (address, "")
                queue.append(ref)
    return None


def reachable_from(vm: "VirtualMachine", target: Target) -> set[int]:
    """Addresses of every object reachable from ``target`` (inclusive)."""
    heap = vm.heap
    start = _address_of(vm, target)
    seen: set[int] = set()
    stack = [start]
    while stack:
        address = stack.pop()
        if address in seen:
            continue
        seen.add(address)
        for ref in heap.get(address).reference_slots():
            if ref != NULL and ref not in seen:
                stack.append(ref)
    return seen


def _reachable_excluding(vm: "VirtualMachine", excluded: int) -> set[int]:
    heap = vm.heap
    seen: set[int] = set()
    stack = [a for _d, a in vm.root_entries() if a != excluded]
    while stack:
        address = stack.pop()
        if address in seen or address == excluded:
            continue
        seen.add(address)
        for ref in heap.get(address).reference_slots():
            if ref != NULL and ref != excluded and ref not in seen:
                stack.append(ref)
    return seen


def retained_size(vm: "VirtualMachine", target: Target) -> int:
    """Bytes that would be reclaimed if ``target`` disappeared.

    The target's own size plus everything reachable *only* through it —
    the "retained size" heap profilers report, and the quantity the
    paper's memory-drag discussion is about (the dragged Company "keeps a
    great deal of data live").
    """
    heap = vm.heap
    excluded = _address_of(vm, target)
    with_target = {a for _d, a in vm.root_entries()}
    all_reachable: set[int] = set()
    stack = list(with_target)
    while stack:
        address = stack.pop()
        if address in all_reachable:
            continue
        all_reachable.add(address)
        for ref in heap.get(address).reference_slots():
            if ref != NULL and ref not in all_reachable:
                stack.append(ref)
    if excluded not in all_reachable:
        # Unreachable already: its retained set is its own closure.
        return sum(heap.get(a).size_bytes for a in reachable_from(vm, excluded))
    without = _reachable_excluding(vm, excluded)
    retained = all_reachable - without
    return sum(heap.get(a).size_bytes for a in retained)


def incoming_references(
    vm: "VirtualMachine", target: Target
) -> list[tuple[str, Optional[HeapObject]]]:
    """Everything referencing ``target``: ``(description, holder)`` pairs.

    Heap holders carry the holding object; root holders have ``None`` with
    the root description.  This is the "who is keeping it alive" question
    answered directly.
    """
    heap = vm.heap
    wanted = _address_of(vm, target)
    holders: list[tuple[str, Optional[HeapObject]]] = []
    for description, address in vm.root_entries():
        if address == wanted:
            holders.append((description, None))
    for obj in heap:
        for index, ref in zip(obj.reference_slot_indices(), obj.reference_slots()):
            if ref == wanted:
                if obj.cls.is_array:
                    slot_name = f"[{index}]"
                else:
                    slot_name = obj.cls.all_fields[index].name
                holders.append((f"{obj.cls.name}.{slot_name}", obj))
    return holders


def heap_census(vm: "VirtualMachine") -> dict[str, dict]:
    """Live objects and bytes per class, descending by bytes."""
    census: dict[str, dict] = {}
    for obj in vm.heap:
        entry = census.setdefault(obj.cls.name, {"objects": 0, "bytes": 0})
        entry["objects"] += 1
        entry["bytes"] += obj.size_bytes
    return dict(
        sorted(census.items(), key=lambda item: item[1]["bytes"], reverse=True)
    )
