"""longBTree unit tests (the SPEC JBB orderTable)."""

import pytest

from repro.errors import RuntimeFault
from repro.runtime.vm import VirtualMachine
from repro.workloads.jbb.btree import NODE_CLASS, TREE_CLASS, LongBTree
from tests.conftest import make_node_class


@pytest.fixture
def bvm():
    return VirtualMachine(heap_bytes=16 << 20)


@pytest.fixture
def val_cls(bvm):
    return make_node_class(bvm)


@pytest.fixture
def tree(bvm):
    tree = LongBTree.new(bvm, degree=2)  # smallest legal degree: max splits
    bvm.statics.set_ref("tree", tree.handle.address)
    return tree


def fill(bvm, val_cls, tree, keys):
    with bvm.scope():
        for k in keys:
            tree.insert(k, bvm.new(val_cls, value=k))


class TestBasics:
    def test_empty_tree(self, tree):
        assert len(tree) == 0
        assert tree.get(1) is None
        assert not tree.contains(1)
        assert tree.min_key() is None
        assert list(tree.keys()) == []

    def test_degree_validation(self, bvm):
        with pytest.raises(RuntimeFault):
            LongBTree.new(bvm, degree=1)

    def test_insert_and_get(self, bvm, val_cls, tree):
        fill(bvm, val_cls, tree, [5, 3, 8])
        assert tree.get(3)["value"] == 3
        assert tree.get(8)["value"] == 8
        assert len(tree) == 3

    def test_duplicate_insert_updates_value(self, bvm, val_cls, tree):
        with bvm.scope():
            assert tree.insert(1, bvm.new(val_cls, value=1))
            assert not tree.insert(1, bvm.new(val_cls, value=99))
        assert len(tree) == 1
        assert tree.get(1)["value"] == 99

    def test_inorder_iteration_sorted(self, bvm, val_cls, tree):
        keys = [7, 1, 9, 4, 2, 8, 3, 6, 5, 0]
        fill(bvm, val_cls, tree, keys)
        assert list(tree.keys()) == sorted(keys)

    def test_min_and_first_keys(self, bvm, val_cls, tree):
        fill(bvm, val_cls, tree, [50, 10, 30, 20, 40])
        assert tree.min_key() == 10
        assert tree.first_keys(3) == [10, 20, 30]
        assert tree.first_keys(99) == [10, 20, 30, 40, 50]

    def test_splits_build_multilevel_tree(self, bvm, val_cls, tree):
        fill(bvm, val_cls, tree, range(100))
        root = tree.handle["root"]
        assert not root["leaf"]  # the tree actually grew levels
        tree.check_invariants()

    def test_uses_paper_class_names(self, bvm, val_cls, tree):
        assert tree.handle.type_name == TREE_CLASS
        assert tree.handle["root"].type_name == NODE_CLASS
        assert "spec.jbb.infra.Collections" in TREE_CLASS


class TestRemoval:
    def test_remove_from_leaf(self, bvm, val_cls, tree):
        fill(bvm, val_cls, tree, [1, 2, 3])
        removed = tree.remove(2)
        assert removed["value"] == 2
        assert list(tree.keys()) == [1, 3]
        tree.check_invariants()

    def test_remove_missing_returns_none(self, bvm, val_cls, tree):
        fill(bvm, val_cls, tree, [1])
        assert tree.remove(9) is None
        assert len(tree) == 1

    def test_remove_internal_keys(self, bvm, val_cls, tree):
        fill(bvm, val_cls, tree, range(30))
        for key in [15, 7, 22, 0, 29]:
            assert tree.remove(key)["value"] == key
            tree.check_invariants()
        remaining = sorted(set(range(30)) - {15, 7, 22, 0, 29})
        assert list(tree.keys()) == remaining

    def test_remove_everything(self, bvm, val_cls, tree):
        keys = list(range(40))
        fill(bvm, val_cls, tree, keys)
        for key in keys:
            assert tree.remove(key) is not None
        assert len(tree) == 0
        assert list(tree.keys()) == []
        tree.check_invariants()

    def test_remove_descending(self, bvm, val_cls, tree):
        fill(bvm, val_cls, tree, range(25))
        for key in reversed(range(25)):
            tree.remove(key)
            tree.check_invariants()
        assert len(tree) == 0

    def test_removed_values_become_collectable(self, bvm, val_cls, tree):
        with bvm.scope():
            victim = bvm.new(val_cls, value=1)
            tree.insert(1, victim)
            for k in range(2, 20):
                tree.insert(k, bvm.new(val_cls, value=k))
        tree.remove(1)
        bvm.gc()
        assert not victim.is_live
        # Everything still in the tree survives.
        assert tree.get(5)["value"] == 5
        tree.check_invariants()

    def test_tree_survives_gc_under_pressure(self):
        vm = VirtualMachine(heap_bytes=32 << 10)
        cls = make_node_class(vm)
        tree = LongBTree.new(vm, degree=3)
        vm.statics.set_ref("tree", tree.handle.address)
        for i in range(1200):
            with vm.scope():
                tree.insert(i, vm.new(cls, value=i))
            if i >= 50:
                tree.remove(i - 50)
        assert vm.stats.collections > 0
        tree.check_invariants()
        assert list(tree.keys()) == list(range(1150, 1200))
