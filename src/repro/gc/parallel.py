"""Zone-parallel marking: per-zone worklist drains with packet routing.

The sequential tracer (:mod:`repro.gc.tracer`) is one worklist; this module
splits that worklist by *zone* (see :mod:`repro.heap.zones`) and drains the
zones on a pool of mark workers:

* **Roots are partitioned by owning zone.**  The root scan itself stays
  sequential — it runs the engine's full first-encounter hooks exactly as
  the sequential tracer would — and the seeded worklist is then split into
  per-zone stacks.
* **Each zone's mark bits are touched by one worker at a time.**  A worker
  drains a zone's stack with a fused loop (same per-edge body as the
  sequential drains); an edge whose target lies in another zone is not
  examined locally but routed to the owning zone as part of an *in-set
  packet*.  The hot loop therefore needs no locks and no atomics: packet
  hand-off (one lock acquisition per :data:`PACKET_SIZE` edges, not per
  edge) is the only synchronized operation.
* **Work-stealing at packet/zone granularity.**  Zones are not pinned to
  workers: a zone with pending work (a non-empty stack or queued in-set
  packets) and no active owner sits in a ready queue any idle worker may
  claim.  With more zones than workers (the default: 8 zones) this
  rebalances naturally; an overflow of routed packets to one zone is
  simply more claimable work.

**Determinism.**  Work *counters* are schedule-independent: every non-NULL
edge is examined exactly once (either locally or by the zone that received
its packet), every object is marked exactly once, so ``objects_traced`` /
``edges_traced`` / ``header_bit_checks`` / ``instance_count_increments``
are bit-identical to the sequential drains for every worker count —
including ``workers=1``.  (``path_entries_tagged`` is the exception: the
parallel drain keeps no low-bit path worklist, so violation paths are
reported as unavailable and that counter stays untouched.)

**Assertions survive sharding** via a deterministic reduction step: workers
never call engine hooks from the hot loop.  They *record* assertion-relevant
encounters — first encounters whose header word matched
``DEAD_BIT | OWNEE_BIT``, repeat encounters with ``UNSHARED_BIT`` — plus
per-zone per-class instance-count partials and a per-zone live census.
After the pool joins, the coordinator merges instance partials into the
class descriptors, merges worker :class:`~repro.gc.stats.GcStats` partials
with :meth:`GcStats.merge` (summed work, no double-counted pause time), and
replays the recorded encounters through the engine's ``*_slow`` hooks in a
canonical sort order — all before ``post_mark`` evaluates, so the engine
sees exactly the state a sequential mark would have produced.  The set of
recorded encounters is itself schedule-independent (which *parent* a record
carries may vary with the schedule; violation kind/object/site never do).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import TYPE_CHECKING, Optional

from repro.errors import InvalidAddressError
from repro.gc.stats import GcStats
from repro.heap import header as hdr
from repro.heap.layout import NULL
from repro.heap.zones import ZoneMap
from repro.telemetry.census import merge_censuses
from repro.tracing.spans import WORKER_TRACK_BASE

if TYPE_CHECKING:
    from repro.gc.base import Collector
    from repro.gc.tracer import Tracer

#: Cross-zone edges buffered per in-set packet before hand-off.  One lock
#: acquisition amortized over this many edges keeps routing off the hot path.
PACKET_SIZE = 64


class _ZoneState:
    """One zone's drainable state: a local stack and an in-set."""

    __slots__ = ("index", "stack", "inbox", "owned", "queued", "objects", "edges")

    def __init__(self, index: int):
        self.index = index
        #: Addresses marked into this zone and awaiting child expansion.
        self.stack: list[int] = []
        #: Routed in-set packets: lists of ``(parent_address, child_address)``.
        self.inbox: list[list[tuple[int, int]]] = []
        self.owned = False
        self.queued = False
        #: Deterministic per-zone work totals (only the owning worker writes
        #: them): the scaling curve's schedule-independent balance input.
        self.objects = 0
        self.edges = 0


class _Worker:
    """One mark worker's zone-local accumulators (merged after join)."""

    __slots__ = (
        "index",
        "stats",
        "first_records",
        "repeat_records",
        "instances",
        "census",
        "buffers",
        "busy_seconds",
        "start_ts",
        "end_ts",
        "zones_drained",
        "packets_sent",
        "edges_routed",
        "error",
    )

    def __init__(self, index: int, zones: int):
        self.index = index
        #: Counter-only partial; timers stay zero (the pause is timed once,
        #: by the enclosing PhaseTimer — GcStats.merge keeps it that way).
        self.stats = GcStats()
        self.first_records: list[tuple[int, int]] = []
        self.repeat_records: list[tuple[int, int]] = []
        self.instances: dict = {}
        self.census: dict[str, list[int]] = {}
        #: Per-target-zone outbound edge buffers (flushed as packets).
        self.buffers: list[list[tuple[int, int]]] = [[] for _ in range(zones)]
        self.busy_seconds = 0.0
        self.start_ts: Optional[float] = None
        self.end_ts: Optional[float] = None
        self.zones_drained = 0
        self.packets_sent = 0
        self.edges_routed = 0
        self.error: Optional[BaseException] = None


class ParallelMarkReport:
    """Per-pause summary of one parallel mark (bench + tests read this)."""

    __slots__ = (
        "workers",
        "zones",
        "busy_seconds",
        "objects_traced",
        "edges_traced",
        "zone_objects",
        "zone_edges",
        "packets_sent",
        "edges_routed",
        "zones_drained",
        "census",
    )

    def __init__(self) -> None:
        self.workers = 0
        self.zones = 0
        self.busy_seconds: list[float] = []
        self.objects_traced: list[int] = []
        self.edges_traced: list[int] = []
        #: Per-zone work totals, indexed by zone — deterministic (an edge is
        #: always examined by its target's owning zone, whatever the
        #: schedule), unlike the per-worker splits above.
        self.zone_objects: list[int] = []
        self.zone_edges: list[int] = []
        self.packets_sent = 0
        self.edges_routed = 0
        self.zones_drained = 0
        #: Merged per-zone live census of the traced set (root scan seeds +
        #: drain-marked objects), per class name -> (count, bytes).
        self.census: dict[str, tuple[int, int]] = {}

    def total_busy_seconds(self) -> float:
        return sum(self.busy_seconds)

    def work_balance_speedup(self) -> float:
        """Critical-path speedup: total mark work over the busiest worker.

        On a GIL build (or a single-core runner) wall-clock cannot shrink,
        so this is the schedule-quality number the scaling curve records
        alongside measured wall time: how much faster the same partition
        would finish with true hardware parallelism.
        """
        if not self.busy_seconds:
            return 1.0
        busiest = max(self.busy_seconds)
        if busiest <= 0.0:
            return 1.0
        return self.total_busy_seconds() / busiest

    def zone_balance_speedup(self, workers: Optional[int] = None) -> float:
        """Deterministic scaling bound from the per-zone edge loads.

        LPT-packs the per-zone work (edges examined) onto ``workers`` bins
        and returns total work over the busiest bin: the speedup an ideal
        zone-granular schedule achieves on true hardware parallelism.
        Unlike :meth:`work_balance_speedup` (which measures the *actual*
        schedule and degenerates on a GIL build, where one worker can hog
        the interpreter), this is a pure function of the heap partition —
        bit-identical across runs and machines — so the committed scaling
        curve can gate on it.
        """
        bins = max(1, workers if workers is not None else self.workers)
        loads = sorted((e for e in self.zone_edges if e), reverse=True)
        total = sum(loads)
        if not total:
            return 1.0
        heights = [0] * min(bins, len(loads))
        for load in loads:
            smallest = heights.index(min(heights))
            heights[smallest] += load
        return total / max(heights)

    def as_dict(self) -> dict:
        return {
            "workers": self.workers,
            "zones": self.zones,
            "busy_seconds": list(self.busy_seconds),
            "objects_traced": list(self.objects_traced),
            "edges_traced": list(self.edges_traced),
            "zone_objects": list(self.zone_objects),
            "zone_edges": list(self.zone_edges),
            "packets_sent": self.packets_sent,
            "edges_routed": self.edges_routed,
            "zones_drained": self.zones_drained,
            "work_balance_speedup": self.work_balance_speedup(),
            "zone_balance_speedup": self.zone_balance_speedup(),
        }

    def __repr__(self) -> str:
        return (
            f"<ParallelMarkReport workers={self.workers} zones={self.zones} "
            f"routed={self.edges_routed} balance={self.work_balance_speedup():.2f}x>"
        )


class ParallelMarker:
    """One parallel mark episode over a zoned heap.

    Eligibility is the caller's job (see ``Collector._parallel_eligible``):
    the engine, if any, must declare ``INLINE_HEADER_CHECKS``, and no
    snapshot sink may be attached (capture drains stay sequential).
    """

    def __init__(self, collector: "Collector", workers: int, zone_map: ZoneMap):
        self.collector = collector
        self.zone_map = zone_map
        self.workers = max(1, min(workers, zone_map.zones))
        self.report = ParallelMarkReport()
        self._zones = [_ZoneState(i) for i in range(zone_map.zones)]
        self._workers = [_Worker(i, zone_map.zones) for i in range(self.workers)]
        self._cond = threading.Condition()
        self._ready: deque[int] = deque()
        self._open_zones = 0
        self._done = False
        self._abort = False
        self._seed_census: dict[str, list[int]] = {}
        self._table: dict = {}
        self._engine = None

    # -- entry points ------------------------------------------------------------

    def mark(self, tracer: "Tracer", roots) -> None:
        """Sequential root scan (full engine hooks) + parallel drain."""
        tracer.scan_roots(roots)
        self.drain(tracer)

    def drain(self, tracer: "Tracer") -> None:
        """Partition the seeded worklist by zone and drain on the pool."""
        self._table = tracer._table
        engine = tracer.engine
        self._engine = engine
        self._partition(tracer)
        drain_zone = (
            self._drain_zone_plain if engine is None else self._drain_zone_engine
        )
        workers = self._workers
        if self.workers == 1:
            self._run_worker(workers[0], drain_zone)
        else:
            threads = [
                threading.Thread(
                    target=self._run_worker,
                    args=(worker, drain_zone),
                    name=f"mark-worker-{worker.index}",
                    daemon=True,
                )
                for worker in workers
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        # Work counters and instance partials merge even on an aborted mark,
        # mirroring the sequential drains' finally-flush; the assertion
        # replay only runs on a completed mark.
        self._merge_stats(tracer)
        errors = [w.error for w in workers if w.error is not None]
        if errors:
            raise errors[0]
        self._replay_encounters()
        self._finish_report()
        self._emit_spans()
        self.collector.last_parallel_mark = self.report

    # -- partition ----------------------------------------------------------------

    def _partition(self, tracer: "Tracer") -> None:
        """Split the root-seeded worklist into per-zone stacks.

        Root objects were already marked (and counted, and run through the
        engine's full hooks) by the sequential root scan; they also seed
        the traced-set census here, attributed to their owning zone's
        partial — the drain loops then count only the objects they mark.
        """
        zone_of = self.zone_map.zone_of
        zones = self._zones
        table = self._table
        census = self._seed_census
        seeds = tracer._stack
        tracer._stack = []
        for address in seeds:
            zones[zone_of(address)].stack.append(address)
            obj = table[address]
            name = obj.cls.name
            row = census.get(name)
            if row is None:
                census[name] = [1, obj.size_bytes]
            else:
                row[0] += 1
                row[1] += obj.size_bytes
        ready = self._ready
        for zone in zones:
            if zone.stack:
                zone.queued = True
                ready.append(zone.index)

    # -- the worker loop ------------------------------------------------------------

    def _run_worker(self, worker: _Worker, drain_zone) -> None:
        cond = self._cond
        ready = self._ready
        zones = self._zones
        perf = time.perf_counter
        try:
            while True:
                with cond:
                    while True:
                        if self._abort or self._done:
                            return
                        if ready:
                            break
                        if self._open_zones == 0:
                            self._done = True
                            cond.notify_all()
                            return
                        cond.wait()
                    zone = zones[ready.popleft()]
                    zone.queued = False
                    zone.owned = True
                    self._open_zones += 1
                t0 = perf()
                if worker.start_ts is None:
                    worker.start_ts = t0
                try:
                    drain_zone(zone, worker)
                finally:
                    t1 = perf()
                    worker.busy_seconds += t1 - t0
                    worker.end_ts = t1
                    worker.zones_drained += 1
                    self._flush_all_buffers(worker)
                    with cond:
                        zone.owned = False
                        self._open_zones -= 1
                        if (zone.stack or zone.inbox) and not zone.queued:
                            zone.queued = True
                            ready.append(zone.index)
                            cond.notify()
                        elif self._open_zones == 0 and not ready:
                            self._done = True
                            cond.notify_all()
        except BaseException as exc:
            worker.error = exc
            with cond:
                self._abort = True
                cond.notify_all()

    # -- packet plumbing --------------------------------------------------------------

    def _send_packet(self, target: int, packet: list) -> None:
        """Hand one in-set packet to ``target``'s zone (the only lock on the
        routing path); wakes a worker when the zone becomes claimable."""
        zone = self._zones[target]
        with self._cond:
            zone.inbox.append(packet)
            if not zone.owned and not zone.queued:
                zone.queued = True
                self._ready.append(target)
                self._cond.notify()

    def _flush_all_buffers(self, worker: _Worker) -> None:
        """Flush every partial packet (a worker may not sleep on buffered
        edges — they are someone else's only remaining work)."""
        buffers = worker.buffers
        for target, buf in enumerate(buffers):
            if buf:
                buffers[target] = []
                worker.packets_sent += 1
                worker.edges_routed += len(buf)
                self._send_packet(target, buf)

    def _pull_inbox(self, zone: _ZoneState) -> list[list[tuple[int, int]]]:
        with self._cond:
            packets = zone.inbox
            zone.inbox = []
        return packets

    # -- fused zone drains -------------------------------------------------------------
    #
    # Same per-edge bodies as the sequential Tracer drains, with one extra
    # branch: a child owned by another zone is buffered, not examined.  The
    # duplication between the plain and engine variants (and between the
    # stack and packet halves of each) is deliberate, like the tracer's —
    # the hot path carries no mode conditionals.

    def _drain_zone_plain(self, zone: _ZoneState, worker: _Worker) -> None:
        table = self._table
        zone_of = self.zone_map.zone_of
        my = zone.index
        stack = zone.stack
        push = stack.append
        buffers = worker.buffers
        census = worker.census
        mark_bit = hdr.MARK_BIT
        packet_limit = PACKET_SIZE
        objects = edges = 0
        try:
            while True:
                while stack:
                    obj = table[stack.pop()]
                    cls = obj.cls
                    if cls.is_array:
                        if not cls.element_kind.is_reference:
                            continue
                        children = obj.slots
                    else:
                        ref_slots = cls.ref_slots
                        if not ref_slots:
                            continue
                        slots = obj.slots
                        children = [slots[i] for i in ref_slots]
                    parent_address = obj.address
                    for child in children:
                        if child == NULL:
                            continue
                        target = zone_of(child)
                        if target != my:
                            buf = buffers[target]
                            buf.append((parent_address, child))
                            if len(buf) >= packet_limit:
                                buffers[target] = []
                                worker.packets_sent += 1
                                worker.edges_routed += packet_limit
                                self._send_packet(target, buf)
                            continue
                        edges += 1
                        cobj = table[child]
                        status = cobj.status
                        if status & mark_bit:
                            continue
                        cobj.status = status | mark_bit
                        objects += 1
                        name = cobj.cls.name
                        row = census.get(name)
                        if row is None:
                            census[name] = [1, cobj.size_bytes]
                        else:
                            row[0] += 1
                            row[1] += cobj.size_bytes
                        push(child)
                packets = self._pull_inbox(zone)
                if not packets:
                    break
                for packet in packets:
                    for _parent, child in packet:
                        edges += 1
                        cobj = table[child]
                        status = cobj.status
                        if status & mark_bit:
                            continue
                        cobj.status = status | mark_bit
                        objects += 1
                        name = cobj.cls.name
                        row = census.get(name)
                        if row is None:
                            census[name] = [1, cobj.size_bytes]
                        else:
                            row[0] += 1
                            row[1] += cobj.size_bytes
                        push(child)
        except KeyError as exc:
            raise InvalidAddressError(f"no live object at {exc.args[0]:#x}") from None
        finally:
            zone.objects += objects
            zone.edges += edges
            stats = worker.stats
            stats.objects_traced += objects
            stats.edges_traced += edges

    def _drain_zone_engine(self, zone: _ZoneState, worker: _Worker) -> None:
        table = self._table
        zone_of = self.zone_map.zone_of
        my = zone.index
        stack = zone.stack
        push = stack.append
        buffers = worker.buffers
        census = worker.census
        firsts = worker.first_records
        repeats = worker.repeat_records
        instances = worker.instances
        mark_bit = hdr.MARK_BIT
        first_slow_bits = hdr.DEAD_BIT | hdr.OWNEE_BIT
        unshared_bit = hdr.UNSHARED_BIT
        packet_limit = PACKET_SIZE
        objects = edges = header_checks = instance_incrs = 0
        try:
            while True:
                while stack:
                    obj = table[stack.pop()]
                    cls = obj.cls
                    if cls.is_array:
                        if not cls.element_kind.is_reference:
                            continue
                        children = obj.slots
                    else:
                        ref_slots = cls.ref_slots
                        if not ref_slots:
                            continue
                        slots = obj.slots
                        children = [slots[i] for i in ref_slots]
                    parent_address = obj.address
                    for child in children:
                        if child == NULL:
                            continue
                        target = zone_of(child)
                        if target != my:
                            buf = buffers[target]
                            buf.append((parent_address, child))
                            if len(buf) >= packet_limit:
                                buffers[target] = []
                                worker.packets_sent += 1
                                worker.edges_routed += packet_limit
                                self._send_packet(target, buf)
                            continue
                        edges += 1
                        cobj = table[child]
                        status = cobj.status
                        if status & mark_bit:
                            header_checks += 1
                            if status & unshared_bit:
                                repeats.append((child, parent_address))
                            continue
                        cobj.status = status | mark_bit
                        objects += 1
                        header_checks += 1
                        if status & first_slow_bits:
                            firsts.append((child, parent_address))
                        ccls = cobj.cls
                        if ccls.instance_limit is not None:
                            instances[ccls] = instances.get(ccls, 0) + 1
                            instance_incrs += 1
                        name = ccls.name
                        row = census.get(name)
                        if row is None:
                            census[name] = [1, cobj.size_bytes]
                        else:
                            row[0] += 1
                            row[1] += cobj.size_bytes
                        push(child)
                packets = self._pull_inbox(zone)
                if not packets:
                    break
                for packet in packets:
                    for parent_address, child in packet:
                        edges += 1
                        cobj = table[child]
                        status = cobj.status
                        if status & mark_bit:
                            header_checks += 1
                            if status & unshared_bit:
                                repeats.append((child, parent_address))
                            continue
                        cobj.status = status | mark_bit
                        objects += 1
                        header_checks += 1
                        if status & first_slow_bits:
                            firsts.append((child, parent_address))
                        ccls = cobj.cls
                        if ccls.instance_limit is not None:
                            instances[ccls] = instances.get(ccls, 0) + 1
                            instance_incrs += 1
                        name = ccls.name
                        row = census.get(name)
                        if row is None:
                            census[name] = [1, cobj.size_bytes]
                        else:
                            row[0] += 1
                            row[1] += cobj.size_bytes
                        push(child)
        except KeyError as exc:
            raise InvalidAddressError(f"no live object at {exc.args[0]:#x}") from None
        finally:
            zone.objects += objects
            zone.edges += edges
            stats = worker.stats
            stats.objects_traced += objects
            stats.edges_traced += edges
            stats.header_bit_checks += header_checks
            stats.instance_count_increments += instance_incrs

    # -- the deterministic reduction step ----------------------------------------------

    def _merge_stats(self, tracer: "Tracer") -> None:
        """Fold worker partials into the collector's stats and classes.

        :meth:`GcStats.merge` combines the per-worker partials (counters
        sum; the zero timers stay zero — the pause is timed once by the
        enclosing PhaseTimer, never per worker), and the merged counters
        are then added onto the live stats object in place.
        """
        partials = [worker.stats for worker in self._workers]
        merged = partials[0].merge(*partials[1:])
        stats = tracer.stats
        for field in GcStats.COUNTER_FIELDS:
            value = getattr(merged, field)
            if value:
                setattr(stats, field, getattr(stats, field) + value)
        for worker in self._workers:
            for cls, count in worker.instances.items():
                cls.instance_count += count
            worker.instances = {}

    def _replay_encounters(self) -> None:
        """Replay recorded assertion encounters through the engine.

        Canonical sort order (by child address, then parent address) makes
        every parallel schedule — any worker count — produce the same
        violation sequence.  ``tracer=None`` means violation paths report
        as unavailable: the paper's root-to-object path needs the
        sequential low-bit worklist, which sharded drains do not keep.
        """
        engine = self._engine
        if engine is None:
            return
        table = self._table
        firsts: list[tuple[int, int]] = []
        repeats: list[tuple[int, int]] = []
        for worker in self._workers:
            firsts.extend(worker.first_records)
            repeats.extend(worker.repeat_records)
        firsts.sort()
        repeats.sort()
        slow_first = engine.on_first_encounter_slow
        slow_repeat = engine.on_repeat_encounter_slow
        for child, parent in firsts:
            slow_first(table[child], None, table.get(parent))
        for child, parent in repeats:
            slow_repeat(table[child], None, table.get(parent))

    def _finish_report(self) -> None:
        report = self.report
        report.workers = self.workers
        report.zones = self.zone_map.zones
        report.zone_objects = [zone.objects for zone in self._zones]
        report.zone_edges = [zone.edges for zone in self._zones]
        partials = [self._seed_census]
        for worker in self._workers:
            report.busy_seconds.append(worker.busy_seconds)
            report.objects_traced.append(worker.stats.objects_traced)
            report.edges_traced.append(worker.stats.edges_traced)
            report.packets_sent += worker.packets_sent
            report.edges_routed += worker.edges_routed
            report.zones_drained += worker.zones_drained
            partials.append(worker.census)
        report.census = merge_censuses(partials)

    def _emit_spans(self) -> None:
        """Per-worker mark spans, recorded retroactively after the join.

        The recorder's begin/end stack is single-threaded, so workers never
        touch it live; instead each worker's busy window becomes one
        complete ("X") span on its own synthetic track, sorted by start
        time to keep the exported stream monotonic.
        """
        spans = self.collector.span_tracer
        if spans is None:
            return
        active = [w for w in self._workers if w.start_ts is not None]
        active.sort(key=lambda w: w.start_ts)
        for worker in active:
            spans.complete(
                f"mark_worker_{worker.index}",
                worker.start_ts,
                worker.end_ts,
                cat="gc",
                args={
                    "worker": worker.index,
                    "zones_drained": worker.zones_drained,
                    "objects": worker.stats.objects_traced,
                    "edges": worker.stats.edges_traced,
                    "packets_sent": worker.packets_sent,
                    "busy_ms": round(worker.busy_seconds * 1e3, 3),
                },
                track=WORKER_TRACK_BASE + worker.index,
            )
