"""The asyncio session server: ``repro-wire/1`` over TCP.

One :class:`AssertionService` hosts many concurrent tenant sessions.
The event loop owns framing, admission, and streaming; tenant workloads
(CPU-bound GC work) run on a thread-pool executor so a long collection
in one tenant never stalls another tenant's frame delivery.  Each
connection gets a writer task that drains its sessions' bounded
:class:`~repro.service.session.FrameQueue`\\ s to the socket — the only
place bytes are written, so frame boundaries are never interleaved.

The server runs its event loop on a background thread, which gives the
CLI, the load generator, and the tests one lifecycle: ``start()`` blocks
until the port is bound, ``stop()`` drains and joins.  An optional HTTP
sidecar (the shared :class:`~repro.httpd.EndpointServer`) serves
``/metrics``, ``/health`` and ``/slo`` for scrapers.

Frame vocabulary (client -> server): ``hello``, ``open``, ``assert``,
``submit``, ``gc``, ``stats``, ``close``, ``ping``.  Server -> client:
``welcome``, ``opened``, ``rejected``, ``ok``, ``violation``,
``gc-event``, ``result``, ``closed``, ``stats``, ``pong``, ``error``.
Unknown keys in any frame are ignored (forward compatibility); unknown
frame *types* get an ``error`` reply rather than a dropped connection.
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Optional

from repro.errors import ReproError, WireProtocolError
from repro.httpd import JSON_CONTENT_TYPE, PROMETHEUS_CONTENT_TYPE, EndpointServer
from repro.monitor.server import render_monitor_metrics
from repro.service.admission import AdmissionController
from repro.service.metrics import ServiceMetrics
from repro.service.session import TenantSession, resolve_workload
from repro.service.wire import MAX_FRAME_BYTES, WIRE_SCHEMA, FrameDecoder, encode_frame
from repro.tracing.distributed import (
    DistributedTracer,
    TraceContext,
    merge_service_trace,
    request_rows,
    write_merged_trace,
)

SERVER_VERSION = "repro-service/1"


@dataclass
class ServiceConfig:
    """Everything an operator tunes on the service."""

    host: str = "127.0.0.1"
    port: int = 0                      #: 0 = ephemeral (tests, CI)
    http_port: Optional[int] = 0       #: None disables the HTTP sidecar
    heap_budget_bytes: int = 8 << 20   #: aggregate committed-heap budget
    max_sessions: Optional[int] = None
    outbound_queue_frames: int = 256
    executor_workers: int = 8
    hardened: bool = True              #: tenant VMs get the PR-5 OOM ladder
    paranoid: bool = False             #: tenant VMs walk the heap around every GC
    admission_latency_slo_s: float = 0.050
    delivery_lag_slo_s: float = 0.200
    max_frame_bytes: int = MAX_FRAME_BYTES
    wait_timeout_s: float = 2.0        #: cap on queued (``"wait": true``) opens
    #: Distributed request tracing: server-side lifecycle spans plus a
    #: SpanTracer per tenant VM, merged into one Perfetto export.  Off by
    #: default — the zero-overhead-when-off discipline is a None-test on
    #: ``AssertionService.tracer``, same as the VM's ``span_tracer``.
    tracing: bool = False
    #: Cap on retained traced-session records (oldest beyond the cap are
    #: dropped from the merged export, never from serving).
    max_traced_sessions: int = 512


class _Connection:
    """Per-connection state owned by the event loop."""

    def __init__(self, writer: asyncio.StreamWriter):
        self.writer = writer
        self.write_lock = asyncio.Lock()
        self.sessions: dict[str, TenantSession] = {}
        self.wake = asyncio.Event()
        self.writer_task: Optional[asyncio.Task] = None
        self.protocol_errors = 0


class AssertionService:
    """Multi-tenant assertion service over a background event loop."""

    def __init__(self, config: Optional[ServiceConfig] = None):
        self.config = config or ServiceConfig()
        self.admission = AdmissionController(
            self.config.heap_budget_bytes, self.config.max_sessions
        )
        self.metrics = ServiceMetrics(
            admission_latency_slo_s=self.config.admission_latency_slo_s,
            delivery_lag_slo_s=self.config.delivery_lag_slo_s,
        )
        self.executor = ThreadPoolExecutor(
            max_workers=self.config.executor_workers,
            thread_name_prefix="repro-session",
        )
        self.http: Optional[EndpointServer] = None
        #: None when tracing is off — every tracing hook is behind this
        #: None-test, so the traced-off request path is byte-identical.
        self.tracer: Optional[DistributedTracer] = (
            DistributedTracer() if self.config.tracing else None
        )
        #: Evicted sessions whose VM SpanTracers feed the merged export:
        #: ``{tenant, session, tracer, trace_id, request_span_id}``.
        self.traced_sessions: list[dict] = []
        self.traced_sessions_dropped = 0
        self.sessions_opened = 0
        self._session_seq = 0
        self._seq_lock = threading.Lock()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._bound_port: Optional[int] = None

    # -- lifecycle ----------------------------------------------------------------------

    @property
    def port(self) -> int:
        return self._bound_port if self._bound_port is not None else self.config.port

    def start(self) -> "AssertionService":
        """Bind, spin up the loop thread, and (optionally) the HTTP sidecar."""
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._run_loop, name="repro-service", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=10.0):
            raise RuntimeError("assertion service failed to start within 10s")
        if self._startup_error is not None:
            raise self._startup_error
        if self.config.http_port is not None:
            self.http = EndpointServer(
                {
                    "/metrics": self._serve_metrics,
                    "/health": self._serve_health,
                    "/slo": self._serve_slo,
                },
                port=self.config.http_port,
                host=self.config.host,
                name="repro-service",
                server_version=SERVER_VERSION,
            ).start()
        return self

    def stop(self) -> None:
        if self._loop is not None and self._stop_event is not None:
            self._loop.call_soon_threadsafe(self._stop_event.set)
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        self.executor.shutdown(wait=False)
        if self.http is not None:
            self.http.stop()
            self.http = None

    def __enter__(self) -> "AssertionService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    def _run_loop(self) -> None:
        try:
            asyncio.run(self._serve_forever())
        except BaseException as exc:  # surface bind errors to start()
            self._startup_error = exc
            self._started.set()

    async def _serve_forever(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_client, self.config.host, self.config.port, backlog=256
        )
        self._bound_port = self._server.sockets[0].getsockname()[1]
        self._started.set()
        async with self._server:
            await self._stop_event.wait()

    # -- HTTP sidecar routes ------------------------------------------------------------

    def _serve_metrics(self):
        body = render_monitor_metrics(self.metrics.hub)
        body += self.metrics.render(self.admission)
        return 200, PROMETHEUS_CONTENT_TYPE, body

    def _serve_health(self):
        status = self.metrics.slo_status()
        snap = self.admission.snapshot()
        code = 200 if status["healthy"] else 503
        return code, JSON_CONTENT_TYPE, {
            "healthy": status["healthy"],
            "firing": status["firing"],
            "active_sessions": snap["active_sessions"],
            "committed_bytes": snap["committed_bytes"],
            "budget_bytes": snap["budget_bytes"],
        }

    def _serve_slo(self):
        return 200, JSON_CONTENT_TYPE, self.metrics.slo_status()

    # -- wire handling (event loop) -----------------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn = _Connection(writer)
        conn.writer_task = asyncio.ensure_future(self._drain_frames(conn))
        decoder = FrameDecoder(self.config.max_frame_bytes)
        try:
            while True:
                data = await reader.read(1 << 16)
                if not data:
                    decoder.finish()
                    break
                for frame in decoder.feed(data):
                    await self._dispatch(conn, frame)
        except WireProtocolError as exc:
            conn.protocol_errors += 1
            await self._reply(conn, {"type": "error", "error": str(exc)})
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            # Evict whatever the peer abandoned: budget must never leak.
            for session in list(conn.sessions.values()):
                self._evict(conn, session)
            conn.writer_task.cancel()
            # No await here: the handler may itself be mid-cancellation
            # (service shutdown), and awaiting wait_closed() in a
            # cancelled task re-raises into the event loop's logger.
            try:
                writer.close()
            except (ConnectionError, OSError):
                pass

    async def _reply(self, conn: _Connection, frame: dict) -> None:
        try:
            async with conn.write_lock:
                conn.writer.write(encode_frame(frame, self.config.max_frame_bytes))
                await conn.writer.drain()
        except (ConnectionError, OSError):
            pass

    async def _drain_frames(self, conn: _Connection) -> None:
        """Writer task: pump every session queue of this connection."""
        while True:
            await conn.wake.wait()
            conn.wake.clear()
            for session in list(conn.sessions.values()):
                for frame, enqueued_at in session.queue.drain():
                    await self._reply(conn, frame)
                    self._observe_delivery(session, frame, enqueued_at)

    def _observe_delivery(
        self, session: TenantSession, frame: dict, enqueued_at: float
    ) -> None:
        """Score (and trace) one delivered violation frame's queue residency."""
        if frame.get("type") != "violation":
            return
        written = time.perf_counter()
        trace = session.trace
        self.metrics.observe_delivery_lag(
            enqueued_at, written, time.time(),
            trace_id=trace.trace_id if trace is not None else None,
        )
        if self.tracer is not None and trace is not None:
            self.tracer.record(
                "violation_delivery", enqueued_at, written,
                lane=session.request_lane,
                trace_id=trace.trace_id,
                parent_span_id=session.request_span_id,
                cat="delivery",
                args={"seq": frame.get("seq"), "gc_number": frame.get("gc_number")},
            )

    async def _dispatch(self, conn: _Connection, frame: dict) -> None:
        ftype = frame.get("type")
        if ftype == "hello":
            await self._reply(conn, {
                "type": "welcome", "schema": WIRE_SCHEMA, "server": SERVER_VERSION,
            })
        elif ftype == "open":
            await self._open_session(conn, frame)
        elif ftype == "assert":
            await self._register_assertion(conn, frame)
        elif ftype == "submit":
            await self._submit(conn, frame)
        elif ftype == "gc":
            await self._explicit_gc(conn, frame)
        elif ftype == "stats":
            await self._reply(conn, {
                "type": "stats",
                "admission": self.admission.snapshot(),
                "slo": self.metrics.slo_status(),
            })
        elif ftype == "close":
            await self._close_session(conn, frame)
        elif ftype == "ping":
            await self._reply(conn, {"type": "pong"})
        else:
            conn.protocol_errors += 1
            await self._reply(conn, {
                "type": "error", "error": f"unknown frame type {ftype!r}",
            })

    def _session_for(self, conn: _Connection, frame: dict) -> Optional[TenantSession]:
        session = conn.sessions.get(frame.get("session"))
        return session

    async def _open_session(self, conn: _Connection, frame: dict) -> None:
        received = time.perf_counter()
        tenant = str(frame.get("tenant", "anonymous"))
        workload = str(frame.get("workload", "swapleak"))
        tracer = self.tracer
        ctx: Optional[TraceContext] = None
        if tracer is not None:
            # A stamped open joins the client's trace; an unstamped one
            # (old client) gets a fresh server-rooted trace — tracing
            # never depends on the peer's protocol vintage.
            ctx = TraceContext.from_frame(frame) or TraceContext.new()
        try:
            heap_bytes, runner = resolve_workload(
                workload,
                asserted=bool(frame.get("asserted", True)),
                overrides=frame.get("overrides") or {},
            )
        except WireProtocolError as exc:
            conn.protocol_errors += 1
            await self._reply(conn, {"type": "error", "error": str(exc)})
            return
        committed = heap_bytes * 2 if self.config.hardened else heap_bytes

        retries = 0
        decision = self.admission.try_admit(committed)
        if not decision.admitted and frame.get("wait"):
            # Queued admission: hold the open (bounded by wait_timeout_s)
            # and retry on the Retry-After cadence.
            deadline = self._loop.time() + self.config.wait_timeout_s
            while not decision.admitted and self._loop.time() < deadline:
                await asyncio.sleep(decision.retry_after_s or 0.05)
                retries += 1
                decision = self.admission.try_admit(committed)
        decided = time.perf_counter()
        latency = decided - received
        self.metrics.observe_admission_latency(
            received, decided, time.time(),
            trace_id=ctx.trace_id if ctx is not None else None,
        )

        if not decision.admitted:
            if tracer is not None:
                self._trace_open(
                    tracer, ctx, received, decided, decision, retries,
                    tenant, workload, label=f"request rejected ({tenant})",
                    outcome="rejected",
                )
            await self._reply(conn, {
                "type": "rejected",
                "tenant": tenant,
                "reason": decision.reason,
                "retry_after_s": decision.retry_after_s,
                **({"trace_id": ctx.trace_id} if ctx is not None else {}),
            })
            return

        with self._seq_lock:
            self._session_seq += 1
            session_id = f"s{self._session_seq}"
        request_span_id = None
        lane = None
        if tracer is not None:
            request_span_id, lane = self._trace_open(
                tracer, ctx, received, decided, decision, retries,
                tenant, workload, label=f"request {session_id} ({tenant})",
                outcome=None, session_id=session_id,
            )
        loop = self._loop
        session = TenantSession(
            session_id=session_id,
            tenant=tenant,
            heap_bytes=heap_bytes,
            collector=str(frame.get("collector", "marksweep")),
            hardened=self.config.hardened,
            paranoid=self.config.paranoid,
            queue_frames=self.config.outbound_queue_frames,
            notify=lambda: loop.call_soon_threadsafe(conn.wake.set),
            aggregate=self.metrics.aggregate,
            tracing=tracer is not None,
            trace=ctx,
            request_span_id=request_span_id,
        )
        session.request_lane = lane
        session.runner = runner
        conn.sessions[session_id] = session
        self.sessions_opened += 1
        self.metrics.session_opened(tenant)
        await self._reply(conn, {
            "type": "opened",
            "session": session_id,
            "tenant": tenant,
            "heap_bytes": heap_bytes,
            "committed_bytes": committed,
            "admission_latency_s": latency,
            **({"trace_id": ctx.trace_id} if ctx is not None else {}),
        })

    def _trace_open(
        self, tracer, ctx, received, decided, decision, retries,
        tenant, workload, label, outcome, session_id=None,
    ):
        """Record the admission-side spans of one open (event loop only)."""
        request_span_id = tracer.new_span_id()
        lane = tracer.lane(request_span_id, label)
        args = {"tenant": tenant, "workload": workload}
        if session_id is not None:
            args["session"] = session_id
        tracer.begin(
            "request", start=received, lane=lane,
            trace_id=ctx.trace_id, parent_span_id=ctx.span_id,
            span_id=request_span_id, args=args,
        )
        tracer.record(
            "admission_wait", received, decided, lane=lane,
            trace_id=ctx.trace_id, parent_span_id=request_span_id,
            cat="admission",
            args={"decision": decision.reason, "retries": retries},
        )
        tracer.record(
            "admission_commit",
            decided - decision.commit_seconds, decided, lane=lane,
            trace_id=ctx.trace_id, parent_span_id=request_span_id,
            cat="admission",
        )
        if outcome is not None:
            tracer.end(
                request_span_id, time.perf_counter(),
                args={"outcome": outcome, "reason": decision.reason},
            )
        return request_span_id, lane

    async def _register_assertion(self, conn: _Connection, frame: dict) -> None:
        session = self._session_for(conn, frame)
        if session is None:
            await self._reply(conn, {"type": "error", "error": "no such session"})
            return
        try:
            session.register_assertion(frame.get("assertion") or {})
        except (WireProtocolError, ReproError) as exc:
            conn.protocol_errors += 1
            await self._reply(conn, {
                "type": "error", "session": session.session_id, "error": str(exc),
            })
            return
        await self._reply(conn, {
            "type": "ok", "session": session.session_id, "re": "assert",
        })

    async def _submit(self, conn: _Connection, frame: dict) -> None:
        session = self._session_for(conn, frame)
        if session is None:
            await self._reply(conn, {"type": "error", "error": "no such session"})
            return
        if session.state != "admitted":
            await self._reply(conn, {
                "type": "error", "session": session.session_id,
                "error": f"cannot submit in state {session.state!r}",
            })
            return
        runner = session.runner
        if "program" in frame:
            source = str(frame["program"])
            entry = str(frame.get("entry", "main"))

            def runner(vm, _source=source, _entry=entry):
                from repro.interp.interpreter import Interpreter
                interp = Interpreter(vm)
                interp.load(_source)
                return interp.run(_entry)

        # The GC work runs off-loop; violation/gc-event frames stream from
        # the worker thread through the queue while this await is pending.
        tracer = self.tracer
        if tracer is not None and session.trace is not None:
            dispatched = time.perf_counter()

            def traced_run(session=session, runner=runner, dispatched=dispatched):
                started = time.perf_counter()
                trace = session.trace
                tracer.record(
                    "executor_wait", dispatched, started,
                    lane=session.request_lane, trace_id=trace.trace_id,
                    parent_span_id=session.request_span_id, cat="executor",
                )
                try:
                    return session.run(runner)
                finally:
                    tracer.record(
                        "workload_execution", started, time.perf_counter(),
                        lane=session.request_lane, trace_id=trace.trace_id,
                        parent_span_id=session.request_span_id, cat="executor",
                        args={"outcome": session.outcome},
                    )

            await self._loop.run_in_executor(self.executor, traced_run)
        else:
            await self._loop.run_in_executor(self.executor, session.run, runner)

    async def _explicit_gc(self, conn: _Connection, frame: dict) -> None:
        session = self._session_for(conn, frame)
        if session is None:
            await self._reply(conn, {"type": "error", "error": "no such session"})
            return
        reason = str(frame.get("reason", "wire-explicit"))
        await self._loop.run_in_executor(self.executor, session.vm.gc, reason)
        await self._reply(conn, {
            "type": "ok", "session": session.session_id, "re": "gc",
        })

    async def _close_session(self, conn: _Connection, frame: dict) -> None:
        session = self._session_for(conn, frame)
        if session is None:
            await self._reply(conn, {"type": "error", "error": "no such session"})
            return
        # Flush anything still queued before the terminal frame.
        for queued, enqueued_at in session.queue.drain():
            await self._reply(conn, queued)
            self._observe_delivery(session, queued, enqueued_at)
        self._evict(conn, session)
        await self._reply(conn, {
            "type": "closed",
            "session": session.session_id,
            "outcome": session.outcome,
            "dropped_frames": session.queue.dropped_frames,
            "discarded_frames": session.discarded_frames,
        })

    def _evict(self, conn: _Connection, session: TenantSession) -> None:
        if session.state == "evicted":
            return
        session.evict()
        conn.sessions.pop(session.session_id, None)
        self.admission.release(session.committed_bytes)
        self.metrics.session_evicted(session.tenant, session)
        if self.tracer is not None and session.request_span_id is not None:
            self.tracer.end(
                session.request_span_id, time.perf_counter(),
                args={"outcome": session.outcome},
            )
            if session.vm.span_tracer is not None and session.trace is not None:
                if len(self.traced_sessions) < self.config.max_traced_sessions:
                    self.traced_sessions.append({
                        "tenant": session.tenant,
                        "session": session.session_id,
                        "tracer": session.vm.span_tracer,
                        "trace_id": session.trace.trace_id,
                        "request_span_id": session.request_span_id,
                    })
                else:
                    self.traced_sessions_dropped += 1

    # -- merged-trace export ------------------------------------------------------------

    def merged_trace_payload(self, meta: Optional[dict] = None) -> dict:
        """The multi-track Chrome/Perfetto payload (requires tracing on)."""
        if self.tracer is None:
            raise RuntimeError("service was not started with tracing enabled")
        return merge_service_trace(self.tracer, self.traced_sessions, meta)

    def write_merged_trace(self, path: str, meta: Optional[dict] = None) -> dict:
        if self.tracer is None:
            raise RuntimeError("service was not started with tracing enabled")
        return write_merged_trace(self.tracer, self.traced_sessions, path, meta)

    def request_rows(self) -> list[dict]:
        """Per-request lifecycle breakdown (requires tracing on)."""
        if self.tracer is None:
            raise RuntimeError("service was not started with tracing enabled")
        return request_rows(self.tracer)
