"""Block-structured segregated-fit space (the Jikes RVM MarkSweep layout).

Jikes RVM's MarkSweep space carves its memory into fixed-size *blocks*,
each formatted for a single size class; cells recycle within their block,
and fully-empty blocks return to a shared pool where they can be reformatted
for any size class.  This module reproduces that structure, which the
simpler :class:`~repro.heap.space.FreeListSpace` abstracts away:

* capacity is consumed block-at-a-time — a block half-filled with 32-byte
  cells still occupies a whole block of budget, so *fragmentation is
  observable* (``fragmentation()`` reports held-but-unused bytes);
* objects larger than half a block get dedicated multi-block spans;
* empty blocks are recycled across size classes.

The :class:`~repro.gc.marksweep.MarkSweepCollector` can run on either space
policy (``space_policy="freelist"`` or ``"blocks"``); the ablation bench
``benchmarks/test_ablation_space_policy.py`` compares them.
"""

from __future__ import annotations

from repro.errors import HeapError
from repro.heap.freelist import size_class_for
from repro.heap.layout import align_up
from repro.heap.space import Space

#: Bytes per block.  4 KB, like a small Jikes/MMTk block.
BLOCK_BYTES = 4096

#: Requests above this size get a dedicated multi-block span.
LARGE_CUTOFF = BLOCK_BYTES // 2


class Block:
    """One block, formatted for a single cell size."""

    __slots__ = ("base", "cell_bytes", "n_cells", "free_cells", "live_cells")

    def __init__(self, base: int, cell_bytes: int):
        self.base = base
        self.format(cell_bytes)

    def format(self, cell_bytes: int) -> None:
        """(Re)format the block for a size class."""
        self.cell_bytes = cell_bytes
        self.n_cells = BLOCK_BYTES // cell_bytes
        self.free_cells = list(range(self.n_cells - 1, -1, -1))
        self.live_cells = 0

    @property
    def is_full(self) -> bool:
        return not self.free_cells

    @property
    def is_empty(self) -> bool:
        return self.live_cells == 0

    def take_cell(self) -> int:
        index = self.free_cells.pop()
        self.live_cells += 1
        return self.base + index * self.cell_bytes

    def return_cell(self, address: int) -> None:
        offset = address - self.base
        if offset % self.cell_bytes != 0 or not 0 <= offset < BLOCK_BYTES:
            raise HeapError(f"address {address:#x} is not a cell of block {self.base:#x}")
        self.free_cells.append(offset // self.cell_bytes)
        self.live_cells -= 1
        if self.live_cells < 0:
            raise HeapError(f"double free in block {self.base:#x}")

    def __repr__(self) -> str:
        return (
            f"<block @{self.base:#x} cell={self.cell_bytes} "
            f"live={self.live_cells}/{self.n_cells}>"
        )


class BlockSpace(Space):
    """Segregated blocks + large-object spans under one byte budget."""

    def __init__(self, name: str, capacity_bytes: int, base_address: int = BLOCK_BYTES):
        # Round the base up so ordinary blocks are BLOCK_BYTES aligned and
        # a cell's block is recoverable by masking its address.
        base_address = align_up(base_address)
        if base_address % BLOCK_BYTES:
            base_address += BLOCK_BYTES - base_address % BLOCK_BYTES
        super().__init__(name, capacity_bytes, base_address)
        #: block base -> Block, for every block currently held.
        self._blocks: dict[int, Block] = {}
        #: size class -> bases of blocks with at least one free cell.
        self._partial: dict[int, list[int]] = {}
        #: recycled empty blocks awaiting reformatting.
        self._pool: list[int] = []
        #: address -> byte size of live large-object spans.
        self._large: dict[int, int] = {}

    # -- block plumbing --------------------------------------------------------------

    def _acquire_block(self) -> int | None:
        if self._pool:
            return self._pool.pop()
        if not self.can_fit(BLOCK_BYTES):
            return None
        address = self._bump(BLOCK_BYTES)
        self.bytes_in_use += BLOCK_BYTES
        return address

    def _release_block(self, block: Block) -> None:
        """An empty block returns to the pool for any size class."""
        bucket = self._partial.get(block.cell_bytes)
        if bucket is not None and block.base in bucket:
            bucket.remove(block.base)
        del self._blocks[block.base]
        self._pool.append(block.base)

    # -- allocation -------------------------------------------------------------------

    def allocate(self, nbytes: int) -> int | None:
        if nbytes > LARGE_CUTOFF:
            return self._allocate_large(nbytes)
        cell = size_class_for(nbytes)
        bucket = self._partial.setdefault(cell, [])
        while bucket:
            block = self._blocks[bucket[-1]]
            if block.is_full:
                bucket.pop()
                continue
            address = block.take_cell()
            if block.is_full:
                bucket.pop()
            return address
        base = self._acquire_block()
        if base is None:
            return None
        block = self._blocks.get(base)
        if block is None:
            block = Block(base, cell)
            self._blocks[base] = block
        else:  # pragma: no cover - pool entries are always removed from _blocks
            block.format(cell)
        address = block.take_cell()
        if not block.is_full:
            bucket.append(base)
        return address

    def _allocate_large(self, nbytes: int) -> int | None:
        span = align_up(nbytes)
        span += (BLOCK_BYTES - span % BLOCK_BYTES) % BLOCK_BYTES
        if not self.can_fit(span):
            return None
        address = self._bump(span)
        self.bytes_in_use += span
        self._large[address] = span
        return address

    # -- reclamation ------------------------------------------------------------------

    def free(self, address: int) -> int:
        span = self._large.pop(address, None)
        if span is not None:
            self.bytes_in_use -= span
            return span
        base = address - (address - self._base) % BLOCK_BYTES
        block = self._blocks.get(base)
        if block is None:
            raise HeapError(f"free of unallocated address {address:#x}")
        was_full = block.is_full
        block.return_cell(address)
        if block.is_empty:
            self._release_block(block)
        elif was_full:
            self._partial.setdefault(block.cell_bytes, []).append(base)
        return block.cell_bytes

    # -- chunked sweep interface --------------------------------------------------------

    def chunk_ids(self) -> list[int]:
        """One chunk per held block, plus one per live large-object span."""
        return list(self._blocks) + list(self._large)

    def chunk_cells(self, chunk_id: int) -> list[tuple[int, int]]:
        """Snapshot of one chunk's allocated ``(address, cell size)`` pairs."""
        span = self._large.get(chunk_id)
        if span is not None:
            return [(chunk_id, span)]
        block = self._blocks.get(chunk_id)
        if block is None:
            return []
        free = set(block.free_cells)
        cell = block.cell_bytes
        return [
            (block.base + index * cell, cell)
            for index in range(block.n_cells)
            if index not in free
        ]

    def free_chunk_cells(self, chunk_id: int, by_class: dict[int, list[int]]) -> int:
        """Batch-free swept cells of one chunk; returns bytes released.

        For an ordinary block this is a single ``free_cells`` splice plus
        one full/empty transition check, instead of per-cell bookkeeping.
        """
        span = self._large.get(chunk_id)
        if span is not None:
            self._large.pop(chunk_id)
            self.bytes_in_use -= span
            return span
        block = self._blocks[chunk_id]
        released = 0
        was_full = block.is_full
        for cell, addresses in by_class.items():
            if cell != block.cell_bytes:
                raise HeapError(
                    f"chunk {chunk_id:#x} is formatted for {block.cell_bytes}-byte "
                    f"cells, not {cell}"
                )
            block.free_cells.extend(
                (address - block.base) // cell for address in addresses
            )
            block.live_cells -= len(addresses)
            released += cell * len(addresses)
        if block.live_cells < 0:
            raise HeapError(f"double free in block {block.base:#x}")
        if block.is_empty:
            self._release_block(block)
        elif was_full and not block.is_full:
            self._partial.setdefault(block.cell_bytes, []).append(block.base)
        return released

    def contains(self, address: int) -> bool:
        if address in self._large:
            return True
        base = address - (address - self._base) % BLOCK_BYTES
        block = self._blocks.get(base)
        if block is None:
            return False
        offset = address - base
        if offset % block.cell_bytes:
            return False
        index = offset // block.cell_bytes
        return index < block.n_cells and index not in block.free_cells

    def cell_size(self, address: int) -> int:
        span = self._large.get(address)
        if span is not None:
            return span
        base = address - (address - self._base) % BLOCK_BYTES
        return self._blocks[base].cell_bytes

    # -- introspection ------------------------------------------------------------------

    def block_count(self) -> int:
        return len(self._blocks) + len(self._pool)

    def fragmentation(self) -> dict:
        """Held-but-unused bytes: the cost of block-granularity budgeting."""
        wasted_cells = sum(
            len(b.free_cells) * b.cell_bytes for b in self._blocks.values()
        )
        pooled = len(self._pool) * BLOCK_BYTES
        live = sum(b.live_cells * b.cell_bytes for b in self._blocks.values())
        live += sum(self._large.values())
        return {
            "bytes_in_use": self.bytes_in_use,
            "live_cell_bytes": live,
            "free_cell_bytes": wasted_cells,
            "pooled_block_bytes": pooled,
            "utilization": live / self.bytes_in_use if self.bytes_in_use else 1.0,
        }
