"""Ablation abl-path: the cost of the low-bit path-tracking worklist.

§2.7 claims the tagged-worklist scheme maintains full path information
"with no measurable overhead".  The mechanism costs one extra pop per
traced object (the tagged re-push); this ablation measures the GC-time
delta with tracking on vs off, plus the deterministic pop-count delta.
"""

from __future__ import annotations

from benchmarks.conftest import trials
from repro.bench.methodology import confidence_interval_90, mean
from repro.runtime.vm import VirtualMachine
from repro.workloads.synthetic import PROFILES, run_synthetic
from repro.workloads.suite import HEAP_BUDGETS

PROFILE = "bloat"  # the GC-heaviest suite member


def _gc_time(track_paths: bool) -> tuple[float, dict]:
    vm = VirtualMachine(
        heap_bytes=HEAP_BUDGETS[PROFILE], assertions=True, track_paths=track_paths
    )
    run_synthetic(vm, PROFILES[PROFILE])
    return vm.stats.gc_seconds, vm.stats.snapshot()


def test_path_tracking_overhead(once, figure_report):
    def run():
        on = [_gc_time(True) for _ in range(trials())]
        off = [_gc_time(False) for _ in range(trials())]
        return on, off

    on, off = once(run)
    on_times = [t for t, _s in on]
    off_times = [t for t, _s in off]
    ratio = mean(on_times) / mean(off_times)
    figure_report.append(
        "Ablation abl-path (path tracking on/off, GC time on 'bloat'):\n"
        f"  off: {mean(off_times) * 1e3:.1f} ms ±{confidence_interval_90(off_times) * 1e3:.1f}\n"
        f"  on:  {mean(on_times) * 1e3:.1f} ms ±{confidence_interval_90(on_times) * 1e3:.1f}\n"
        f"  ratio: {ratio:.3f} (paper: 'no measurable overhead')"
    )
    # Shape: cheap — far below a 2x slowdown even in pure Python, where the
    # extra pop is proportionally much more expensive than in Jikes.
    assert ratio < 2.0

    on_stats = on[0][1]["counters"]
    off_stats = off[0][1]["counters"]
    # Identical collection work...
    assert on_stats["objects_traced"] == off_stats["objects_traced"]
    assert on_stats["collections"] == off_stats["collections"]
    # ...the only mechanical difference is the tagged re-push per object.
    assert on_stats["path_entries_tagged"] == on_stats["objects_traced"]
    assert off_stats["path_entries_tagged"] == 0


def test_path_quality_not_free_of_value(once):
    """With tracking on, violations carry complete paths; with it off they
    carry none — the ablation's other axis."""

    def run():
        reports = {}
        for track in (True, False):
            vm = VirtualMachine(heap_bytes=1 << 20, track_paths=track)
            cls = vm.define_class("N", [("next", "ref")])
            with vm.scope():
                a = vm.new(cls)
                b = vm.new(cls)
                a["next"] = b
                vm.statics.set_ref("head", a.address)
                vm.assertions.assert_dead(b)
            vm.gc()
            violation = vm.engine.log.violations[0]
            reports[track] = len(violation.path) if violation.path else 0
        return reports

    reports = once(run)
    assert reports[True] == 2  # head -> victim
    assert reports[False] <= 1
