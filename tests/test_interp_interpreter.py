"""MiniJ compiler + interpreter: language semantics."""

import pytest

from repro.errors import (
    MiniJCompileError,
    MiniJRuntimeError,
    NullReferenceError,
)
from repro.interp.interpreter import Interpreter, run_source
from repro.runtime.vm import VirtualMachine


def run(source, entry="main"):
    return run_source(source, VirtualMachine(heap_bytes=4 << 20), entry)


def output_of(source):
    return run(source).output


class TestExpressions:
    def test_arithmetic(self):
        out = output_of("def main(): void { print(2 + 3 * 4 - 1); }")
        assert out == ["13"]

    def test_integer_division_truncates_toward_zero(self):
        out = output_of(
            "def main(): void { print(7 / 2); print(0 - 7 / 2); print((0-7) % 2); }"
        )
        assert out == ["3", "-3", "-1"]

    def test_division_by_zero(self):
        with pytest.raises(MiniJRuntimeError):
            run("def main(): void { print(1 / 0); }")

    def test_float_arithmetic(self):
        out = output_of("def main(): void { print(1.5 + 2.25); }")
        assert out == ["3.75"]

    def test_string_concat(self):
        out = output_of('def main(): void { print("a" + "b"); }')
        assert out == ["ab"]

    def test_comparisons_and_booleans(self):
        out = output_of(
            "def main(): void { print(1 < 2); print(2 <= 1); print(!(1 == 1)); }"
        )
        assert out == ["true", "false", "false"]

    def test_short_circuit_and(self):
        # The right operand would divide by zero; && must not evaluate it.
        out = output_of("def main(): void { print(false && (1 / 0 == 1)); }")
        assert out == ["false"]

    def test_short_circuit_or(self):
        out = output_of("def main(): void { print(true || (1 / 0 == 1)); }")
        assert out == ["true"]

    def test_reference_equality(self):
        out = output_of(
            """
            class C { var x: int; }
            def main(): void {
              var a: C = new C();
              var b: C = new C();
              var c: C = a;
              print(a == b); print(a == c); print(a != null); print(null == null);
            }
            """
        )
        assert out == ["false", "true", "true", "true"]


class TestControlFlow:
    def test_if_else(self):
        out = output_of(
            """
            def main(): void {
              var x: int = 3;
              if (x > 2) { print("big"); } else { print("small"); }
            }
            """
        )
        assert out == ["big"]

    def test_while_loop(self):
        out = output_of(
            """
            def main(): void {
              var i: int = 0;
              var sum: int = 0;
              while (i < 5) { sum = sum + i; i = i + 1; }
              print(sum);
            }
            """
        )
        assert out == ["10"]

    def test_recursion(self):
        out = output_of(
            """
            def fib(n: int): int {
              if (n < 2) { return n; }
              return fib(n - 1) + fib(n - 2);
            }
            def main(): void { print(fib(10)); }
            """
        )
        assert out == ["55"]

    def test_non_bool_condition_rejected(self):
        with pytest.raises(MiniJRuntimeError):
            run("def main(): void { if (1) { } }")


class TestObjectsAndArrays:
    def test_fields_and_methods(self):
        out = output_of(
            """
            class Counter {
              var n: int;
              def bump(): int { this.n = this.n + 1; return this.n; }
            }
            def main(): void {
              var c: Counter = new Counter();
              c.bump(); c.bump();
              print(c.bump());
            }
            """
        )
        assert out == ["3"]

    def test_method_dispatch_through_inheritance(self):
        out = output_of(
            """
            class Animal { def speak(): str { return "..."; } }
            class Dog extends Animal { def speak(): str { return "woof"; } }
            class Cat extends Animal { }
            def main(): void {
              var d: Dog = new Dog();
              var c: Cat = new Cat();
              print(d.speak());
              print(c.speak());
            }
            """
        )
        assert out == ["woof", "..."]

    def test_inherited_fields(self):
        out = output_of(
            """
            class A { var x: int; }
            class B extends A { var y: int; }
            def main(): void {
              var b: B = new B();
              b.x = 1; b.y = 2;
              print(b.x + b.y);
            }
            """
        )
        assert out == ["3"]

    def test_arrays(self):
        out = output_of(
            """
            def main(): void {
              var a: int[] = new int[3];
              a[0] = 5; a[2] = 7;
              print(a[0] + a[1] + a[2]);
              print(len(a));
            }
            """
        )
        assert out == ["12", "3"]

    def test_reference_arrays(self):
        out = output_of(
            """
            class P { var v: int; }
            def main(): void {
              var ps: P[] = new P[2];
              ps[0] = new P();
              ps[0].v = 9;
              print(ps[0].v);
              print(ps[1] == null);
            }
            """
        )
        assert out == ["9", "true"]

    def test_null_dereference(self):
        with pytest.raises(NullReferenceError):
            run(
                """
                class C { var x: int; }
                def main(): void { var c: C = null; print(c.x); }
                """
            )

    def test_array_bounds_checked(self):
        with pytest.raises(MiniJRuntimeError):
            run("def main(): void { var a: int[] = new int[2]; print(a[5]); }")

    def test_unknown_field(self):
        with pytest.raises(MiniJRuntimeError):
            run(
                """
                class C { var x: int; }
                def main(): void { var c: C = new C(); print(c.nope); }
                """
            )

    def test_unknown_method(self):
        with pytest.raises(MiniJRuntimeError):
            run(
                """
                class C { }
                def main(): void { var c: C = new C(); c.nope(); }
                """
            )


class TestCompileErrors:
    def test_undeclared_variable(self):
        with pytest.raises(MiniJCompileError):
            run("def main(): void { x = 1; }")

    def test_duplicate_variable(self):
        with pytest.raises(MiniJCompileError):
            run("def main(): void { var x: int; var x: int; }")

    def test_this_outside_method(self):
        with pytest.raises(MiniJCompileError):
            run("def main(): void { print(this); }")

    def test_unknown_superclass(self):
        with pytest.raises(MiniJCompileError):
            run("class A extends Nope {} def main(): void { }")

    def test_inheritance_cycle(self):
        with pytest.raises(MiniJCompileError):
            run("class A extends B {} class B extends A {} def main(): void { }")

    def test_duplicate_function(self):
        with pytest.raises(MiniJCompileError):
            run("def f(): void {} def f(): void {} def main(): void {}")


class TestRuntime:
    def test_missing_entry_point(self):
        vm = VirtualMachine(heap_bytes=1 << 20)
        interp = Interpreter(vm)
        interp.load("def helper(): void { }")
        with pytest.raises(MiniJRuntimeError):
            interp.run("main")

    def test_wrong_arity(self):
        with pytest.raises(MiniJRuntimeError):
            run("def f(a: int): void { } def main(): void { f(); }")

    def test_instruction_budget(self):
        vm = VirtualMachine(heap_bytes=1 << 20)
        interp = Interpreter(vm, max_steps=1000)
        interp.load("def main(): void { while (true) { } }")
        with pytest.raises(MiniJRuntimeError):
            interp.run()

    def test_return_value_from_entry(self):
        vm = VirtualMachine(heap_bytes=1 << 20)
        interp = Interpreter(vm)
        interp.load("def answer(): int { return 42; }")
        assert interp.run("answer") == 42

    def test_builtin_str_and_print_render(self):
        out = output_of(
            'def main(): void { print(str(1) + " " + str(true) + " " + str(null)); }'
        )
        assert out == ["1 true null"]
