"""A copying SemiSpace collector.

The paper's technique "will work with any tracing collector" (§2.2); this
collector demonstrates that: it runs the identical mark phase (including the
assertion engine's ownership pre-phase and per-object encounter hooks, and
the path-tracking worklist), then *evacuates* survivors into the other
semispace instead of sweeping.  Object addresses change across collections;
the forwarding map is applied to every root slot, every surviving reference
slot, the assertion engine's metadata, and thread region queues, and
Python-side handles stay valid because they reference the
:class:`~repro.heap.object_model.HeapObject` identity, not the address.
"""

from __future__ import annotations

from repro.gc.base import Collector
from repro.gc.stats import PhaseTimer
from repro.heap import header as hdr
from repro.heap.heap import SPACE_STRIDE
from repro.heap.layout import HEAP_BASE_ADDRESS, NULL
from repro.heap.object_model import ClassDescriptor, HeapObject
from repro.heap.space import BumpSpace


class SemiSpaceCollector(Collector):
    """Two-space copying collector: bump allocation, whole-space evacuation."""

    name = "semispace"
    moving = True

    def __init__(
        self,
        heap_bytes: int,
        engine=None,
        track_paths=None,
        hardened: bool = False,
        max_heap_bytes=None,
    ):
        super().__init__(heap_bytes, engine, track_paths, hardened, max_heap_bytes)
        half = heap_bytes // 2
        self._spaces = (
            BumpSpace("ss0", half, HEAP_BASE_ADDRESS),
            BumpSpace("ss1", half, HEAP_BASE_ADDRESS + SPACE_STRIDE),
        )
        self._current = 0

    @property
    def from_space(self) -> BumpSpace:
        return self._spaces[self._current]

    @property
    def to_space(self) -> BumpSpace:
        return self._spaces[1 - self._current]

    # -- allocation -----------------------------------------------------------------

    def allocate(self, cls: ClassDescriptor, length: int = 0) -> HeapObject:
        nbytes = cls.size_of(length)
        self._telemetry_allocation(nbytes)
        address = self.from_space.allocate(nbytes)
        if address is None:
            self.collect(reason=f"allocation of {nbytes} bytes failed")
            address = self.from_space.allocate(nbytes)
            while address is None and self._try_grow():
                address = self.from_space.allocate(nbytes)
                if address is not None:
                    self.recovery.oom_recoveries += 1
            if address is None:
                raise self._oom(cls, nbytes, "semispace full after collection")
        return self.heap.install(address, cls, length)

    def bytes_in_use(self) -> int:
        return self.from_space.bytes_in_use

    def _grow_spaces(self, delta: int) -> None:
        # Both halves grow equally so evacuation capacity keeps up.
        half = delta // 2
        for space in self._spaces:
            space.capacity_bytes += half

    # -- collection -----------------------------------------------------------------

    def collect(self, reason: str = "explicit") -> None:
        with self._span("collect", kind="full", reason=reason):
            if self.hardened:
                # No sweep debt to worry about (the semispace collector is
                # always exact), so the sentinel can run right away.
                self._sentinel_check("pre-gc")
            if self.paranoid:
                self._paranoid_check("pre-gc")
            pending = self._telemetry_begin("full", reason)
            with PhaseTimer(self.stats, "gc_seconds", self.span_tracer, "pause"):
                self.stats.collections += 1
                self.stats.full_collections += 1
                self.gc_log.append(f"GC {self.stats.collections}: {reason}")

                tracer = self._make_tracer(reason)
                self._run_mark_phase(tracer)
                freed, fwd = self._evacuate()
            self._finish_collection(freed, fwd)
            # Snapshot rows were frozen at mark time (from-space addresses,
            # one consistent graph); serializing them costs no pause time.
            self._snapshot_flush()
            self._telemetry_end(pending)
            if self.hardened:
                self._sentinel_check("post-gc")
            if self.paranoid:
                self._paranoid_check("post-gc")

    def _evacuate(self) -> tuple[set[int], dict[int, int]]:
        """Copy marked objects to the to-space; reclaim everything else."""
        heap = self.heap
        stats = self.stats
        from_space, to_space = self.from_space, self.to_space
        freed: set[int] = set()
        fwd: dict[int, int] = {}
        survivors: list[HeapObject] = []

        with PhaseTimer(stats, "sweep_seconds", self.span_tracer, "sweep"):
            for address in from_space.addresses():
                obj = heap.maybe(address)
                if obj is None:
                    continue
                stats.objects_swept += 1
                if obj.status & hdr.MARK_BIT:
                    new_address = to_space.allocate(obj.size_bytes)
                    if new_address is None and self._try_grow():
                        self.recovery.oom_recoveries += 1
                        new_address = to_space.allocate(obj.size_bytes)
                    if new_address is None:
                        # With equal-size semispaces this cannot happen unless
                        # the heap is badly undersized; surface it loudly.
                        raise self._oom(obj.cls, obj.size_bytes, "to-space exhausted")
                    heap.relocate(obj, new_address)
                    fwd[address] = new_address
                    survivors.append(obj)
                    self.clear_gc_bits(obj)
                else:
                    freed.add(address)
                    stats.objects_freed += 1
                    stats.bytes_freed += obj.size_bytes
                    heap.evict(obj)

            # Rewrite surviving reference slots through the forwarding map.
            for obj in survivors:
                slots = obj.slots
                for idx in obj.reference_slot_indices():
                    child = slots[idx]
                    if child != NULL:
                        new = fwd.get(child)
                        if new is not None:
                            slots[idx] = new

            from_space.reset()
            self._current = 1 - self._current
        return freed, fwd
