"""Zone-sharded address space: the heap side of parallel marking.

The address space of a zoned heap splits into N *zones* — disjoint,
zone-tagged address ranges.  Zones are the unit of mark-parallelism (see
:mod:`repro.gc.parallel`): during a parallel mark each zone's mark bits are
touched by exactly one worker at a time, so the hot drain loop needs no
atomics and no locks.  Two pieces live here:

* :class:`ZoneMap` — the address→zone function.  For a
  :class:`ZonedFreeListSpace` the map is exact range arithmetic (one
  subtraction and a shift); for heaps whose spaces are not zone-aware
  (the generational nursery+mature pair, the blocks policy) the
  :meth:`ZoneMap.hashed` fallback buckets addresses by 4 KB granule, which
  keeps allocation-order neighbours in the same zone without any layout
  cooperation.
* :class:`ZonedFreeListSpace` — a drop-in replacement for
  :class:`~repro.heap.space.FreeListSpace` that keeps one free-list shard
  per zone at strided base addresses.  The shards share a single byte
  budget (capacity checks and fault-injection refusals live on the facade),
  so GC trigger pressure is identical to the unsharded space; only the
  *addresses* handed out differ.  ``reserve_run`` serves each run wholly
  from one zone, rotating round-robin per refill — the collector's
  size-class run cache thereby becomes a per-zone allocation buffer, and
  consecutive allocations of one size class land in one zone (spatial
  locality for the zone-local mark drains).

Layout::

    zone 0: [base + 0·ZONE_STRIDE, …)     ms/z0 free lists + bump frontier
    zone 1: [base + 1·ZONE_STRIDE, …)     ms/z1 free lists + bump frontier
    ...
    zone k = (address - base) >> ZONE_STRIDE_SHIFT

``ZONE_STRIDE`` is 2^36 bytes — far beyond any simulated heap budget, so a
zone never overflows into its neighbour, and with at most
``MAX_ZONES`` (16) zones the whole zoned range stays inside one
``SPACE_STRIDE`` (2^40) slot of the global address-space layout.
"""

from __future__ import annotations

from repro.errors import HeapError
from repro.heap.freelist import size_class_for
from repro.heap.layout import HEAP_BASE_ADDRESS
from repro.heap.space import CHUNK_BYTES, CHUNK_SHIFT, FreeListSpace

#: Address bits per zone shard: zone index = (address - base) >> 36.
ZONE_STRIDE_SHIFT = 36
ZONE_STRIDE = 1 << ZONE_STRIDE_SHIFT

#: Granule for the hashed (layout-agnostic) zone map: 4 KB pages, so
#: allocation-order neighbours usually share a zone even on unzoned spaces.
ZONE_GRANULE_SHIFT = 12

#: Default zone count for parallel-marking configurations.  Eight zones
#: keep every worker count in the benched 1/2/4/8 curve evenly divisible,
#: and leave stealable surplus zones at every count below eight.
DEFAULT_ZONE_COUNT = 8

#: Hard ceiling keeping the strided layout inside one SPACE_STRIDE slot.
MAX_ZONES = 16


class ZoneMap:
    """The address→zone function handed to the parallel mark coordinator.

    ``zone_of`` is a plain callable attribute (not a method) so drain loops
    can hoist it into a local and pay one call per cross-zone decision.
    """

    __slots__ = ("zones", "zone_of", "kind")

    def __init__(self, zones: int, zone_of, kind: str = "custom"):
        if not 1 <= zones <= MAX_ZONES:
            raise HeapError(f"zone count must be in 1..{MAX_ZONES}, got {zones}")
        self.zones = zones
        self.zone_of = zone_of
        self.kind = kind

    @classmethod
    def hashed(cls, zones: int, shift: int = ZONE_GRANULE_SHIFT) -> "ZoneMap":
        """Granule-hash map for heaps without zone-aware spaces."""

        def zone_of(address: int, _shift=shift, _zones=zones) -> int:
            return (address >> _shift) % _zones

        return cls(zones, zone_of, kind="hashed")

    @classmethod
    def strided(cls, zones: int, base: int) -> "ZoneMap":
        """Exact map for a :class:`ZonedFreeListSpace` at ``base``.

        Addresses outside the strided range (other spaces of the same
        collector, quarantined sentinels) fall back to the granule hash so
        every address still has a well-defined owning zone.
        """

        def zone_of(address: int, _base=base, _zones=zones) -> int:
            zone = (address - _base) >> ZONE_STRIDE_SHIFT
            if 0 <= zone < _zones:
                return zone
            return (address >> ZONE_GRANULE_SHIFT) % _zones

        return cls(zones, zone_of, kind="strided")

    def __repr__(self) -> str:
        return f"<ZoneMap {self.kind} zones={self.zones}>"


class ZonedFreeListSpace:
    """N per-zone :class:`FreeListSpace` shards behind one byte budget.

    API-compatible with ``FreeListSpace`` everywhere the mark-sweep
    collector, the chunk sweeper, the fault injector, and the OOM ladder
    touch a space: ``allocate``/``free``/``commit``/``uncommit``,
    ``reserve_run``/``release_run``, ``cell_size``/``contains``,
    ``chunk_ids``/``chunk_cells``/``free_chunk_cells``, ``deny_next``,
    ``bytes_in_use``/``bytes_free``/``capacity_bytes``.

    Capacity discipline: the shards are created with an effectively
    unlimited shard-local capacity and every byte-budget decision happens
    here, against the *shared* ``capacity_bytes`` — so the collection
    trigger points of a zoned heap match the unsharded space exactly.
    Chunk ids stay globally unique (shard address ranges are disjoint), so
    the chunked sweeper works against this space unchanged.
    """

    def __init__(
        self,
        name: str,
        capacity_bytes: int,
        base_address: int = HEAP_BASE_ADDRESS,
        zones: int = DEFAULT_ZONE_COUNT,
    ):
        if capacity_bytes <= 0:
            raise HeapError(f"space {name!r} needs a positive capacity")
        if not 1 <= zones <= MAX_ZONES:
            raise HeapError(f"zone count must be in 1..{MAX_ZONES}, got {zones}")
        self.name = name
        self.capacity_bytes = capacity_bytes
        self.zones = zones
        self._base = base_address
        self._fault_refusals = 0
        self._next_zone = 0
        # Shard capacity is the stride itself: shard-local checks can never
        # bind before the facade's shared-budget check does.
        self._shards: list[FreeListSpace] = [
            FreeListSpace(
                f"{name}/z{zone}", ZONE_STRIDE, base_address + zone * ZONE_STRIDE
            )
            for zone in range(zones)
        ]

    # -- zone surface ------------------------------------------------------------

    def zone_map(self) -> ZoneMap:
        return ZoneMap.strided(self.zones, self._base)

    def zone_of(self, address: int) -> int:
        zone = (address - self._base) >> ZONE_STRIDE_SHIFT
        if 0 <= zone < self.zones:
            return zone
        return (address >> ZONE_GRANULE_SHIFT) % self.zones

    def shard_for(self, address: int) -> FreeListSpace:
        return self._shards[self.zone_of(address)]

    @property
    def shards(self) -> tuple[FreeListSpace, ...]:
        return tuple(self._shards)

    # -- shared-budget accounting --------------------------------------------------

    @property
    def bytes_in_use(self) -> int:
        return sum(shard.bytes_in_use for shard in self._shards)

    @property
    def bytes_free(self) -> int:
        return self.capacity_bytes - self.bytes_in_use

    def deny_next(self, count: int = 1) -> None:
        """Arm ``count`` simulated allocation failures (fault injection)."""
        self._fault_refusals += count

    def can_fit(self, nbytes: int) -> bool:
        if self._fault_refusals:
            self._fault_refusals -= 1
            return False
        return self.bytes_in_use + nbytes <= self.capacity_bytes

    # -- allocation ----------------------------------------------------------------

    def allocate(self, nbytes: int) -> int | None:
        """Allocate a cell; None when the shared budget is exhausted.

        The refill zone rotates per call; a free-list hit in *any* shard is
        preferred over fresh bump carving (starting from the rotation
        point), so recycled cells are exhausted heap-wide before the
        frontier advances — same global behaviour as the unsharded space,
        just segregated by zone.
        """
        cell = size_class_for(nbytes)
        if not self.can_fit(cell):
            return None
        shards = self._shards
        zones = self.zones
        start = self._next_zone
        self._next_zone = (start + 1) % zones
        for offset in range(zones):
            shard = shards[(start + offset) % zones]
            address = shard.free_list.pop(cell)
            if address is not None:
                shard._record(address, cell)
                return address
        shard = shards[start]
        address = shard._bump(cell)
        shard._record(address, cell)
        return address

    def free(self, address: int) -> int:
        return self.shard_for(address).free(address)

    def cell_size(self, address: int) -> int:
        return self.shard_for(address).cell_size(address)

    def contains(self, address: int) -> bool:
        return self.shard_for(address).contains(address)

    # -- allocation fast path (collector run cache) ---------------------------------

    def reserve_run(self, cell: int, limit: int) -> list[int]:
        """Up to ``limit`` uncommitted cells, all from one zone.

        Each refill is served wholly by a single shard — the collector's
        run cache thereby holds per-zone allocation buffers.  The serving
        zone rotates round-robin per refill; free-list inventory anywhere
        beats carving fresh addresses, mirroring :meth:`allocate`.
        """
        shards = self._shards
        zones = self.zones
        start = self._next_zone
        self._next_zone = (start + 1) % zones
        for offset in range(zones):
            shard = shards[(start + offset) % zones]
            run = shard.free_list.pop_run(cell, limit)
            if run:
                run.reverse()
                return run
        if not self.can_fit(cell):
            return []
        shard = shards[start]
        run = [shard._bump(cell) for _ in range(limit)]
        run.reverse()
        return run

    def commit(self, address: int, cell: int) -> bool:
        """Charge and record a reserved cell against the shared budget."""
        if self._fault_refusals:
            self._fault_refusals -= 1
            return False
        if self.bytes_in_use + cell > self.capacity_bytes:
            return False
        self.shard_for(address)._record(address, cell)
        return True

    def uncommit(self, address: int, cell: int) -> None:
        """Undo one :meth:`commit`'s byte charge (quarantine repair path)."""
        self.shard_for(address).bytes_in_use -= cell

    def release_run(self, cell: int, addresses: list[int]) -> None:
        """Return unused reserved cells to their zones' free lists."""
        shards = self._shards
        by_zone: dict[int, list[int]] = {}
        for address in addresses:
            by_zone.setdefault(self.zone_of(address), []).append(address)
        for zone, batch in by_zone.items():
            shards[zone].free_list.push_many(batch, cell)

    # -- chunked sweep interface -----------------------------------------------------

    def chunk_ids(self) -> list[int]:
        """Ids of every chunk holding allocated cells, zone-major order."""
        return [
            chunk_id for shard in self._shards for chunk_id in shard._chunks
        ]

    def _chunk_shard(self, chunk_id: int) -> FreeListSpace:
        # Route by the chunk's END address: a zone's first chunk *starts*
        # below the shard base (the shard base carries the heap-base offset,
        # the chunk grid does not), so the start address would round down
        # into the previous zone.  Chunks never span zones — a shard's
        # populated range is tiny against the 2^36 stride — so the end
        # address always lands in the owning zone.
        return self.shard_for((chunk_id << CHUNK_SHIFT) + CHUNK_BYTES - 1)

    def chunk_cells(self, chunk_id: int) -> list[tuple[int, int]]:
        return self._chunk_shard(chunk_id).chunk_cells(chunk_id)

    def free_chunk_cells(self, chunk_id: int, by_class: dict[int, list[int]]) -> int:
        return self._chunk_shard(chunk_id).free_chunk_cells(chunk_id, by_class)

    def __repr__(self) -> str:
        return (
            f"<ZonedFreeListSpace {self.name}: {self.zones} zones, "
            f"{self.bytes_in_use}/{self.capacity_bytes} bytes>"
        )
