"""MiniJ × GC: interpreter frames as roots, gcAssert* builtins."""

import pytest

from repro.core.reporting import AssertionKind
from repro.errors import MiniJRuntimeError
from repro.interp.interpreter import Interpreter, run_source
from repro.runtime.vm import VirtualMachine


def run(source, heap_bytes=4 << 20, collector="marksweep"):
    vm = VirtualMachine(heap_bytes=heap_bytes, collector=collector)
    return run_source(source, vm)


class TestRootsFromFrames:
    def test_locals_keep_objects_alive_across_gc(self):
        interp = run(
            """
            class C { var v: int; }
            def main(): void {
              var c: C = new C();
              c.v = 7;
              gc();
              print(c.v);
            }
            """
        )
        assert interp.output == ["7"]

    def test_dropped_locals_are_collected(self):
        interp = run(
            """
            class C { var v: int; }
            def main(): void {
              var c: C = new C();
              c = null;
              gc();
              print(heapLive());
            }
            """
        )
        assert interp.output == ["0"]

    def test_callee_frames_root_arguments(self):
        interp = run(
            """
            class C { var v: int; }
            def probe(c: C): int { gc(); return c.v; }
            def main(): void {
              var c: C = new C();
              c.v = 5;
              c = c;  // keep a local too
              print(probe(c));
            }
            """
        )
        assert interp.output == ["5"]

    def test_allocation_pressure_triggers_gc_inside_program(self):
        vm = VirtualMachine(heap_bytes=24 << 10)
        interp = run_source(
            """
            class C { var v: int; }
            def main(): void {
              var i: int = 0;
              while (i < 3000) {
                var c: C = new C();
                c.v = i;
                i = i + 1;
              }
              print("done");
            }
            """,
            vm,
        )
        assert interp.output == ["done"]
        assert vm.stats.collections > 0

    def test_data_structure_survives_pressure(self):
        """A linked list under allocation churn: the GC must never free a
        reachable node while interpreter frames and fields root it."""
        vm = VirtualMachine(heap_bytes=32 << 10)
        interp = run_source(
            """
            class Node { var v: int; var next: Node; }
            def main(): void {
              var head: Node = null;
              var i: int = 0;
              while (i < 50) {
                var n: Node = new Node();
                n.v = i;
                n.next = head;
                head = n;
                var junk: int = 0;
                while (junk < 20) {
                  var tmp: Node = new Node();
                  junk = junk + 1;
                }
                i = i + 1;
              }
              var sum: int = 0;
              while (head != null) { sum = sum + head.v; head = head.next; }
              print(sum);
            }
            """,
            vm,
        )
        assert interp.output == [str(sum(range(50)))]
        assert vm.stats.collections > 0


class TestAssertionBuiltins:
    def test_gc_assert_dead_violation(self):
        interp = run(
            """
            class C { var v: int; }
            def main(): void {
              var c: C = new C();
              gcAssertDead(c);
              gc();
              print(violations());
            }
            """
        )
        assert interp.output == ["1"]

    def test_gc_assert_dead_satisfied(self):
        interp = run(
            """
            class C { var v: int; }
            def main(): void {
              var c: C = new C();
              gcAssertDead(c);
              c = null;
              gc();
              print(violations());
            }
            """
        )
        assert interp.output == ["0"]

    def test_region_builtins(self):
        interp = run(
            """
            class C { var v: int; }
            def main(): void {
              gcStartRegion();
              var c: C = new C();
              c = null;
              print(gcAssertAllDead());
              gc();
              print(violations());
            }
            """
        )
        assert interp.output == ["1", "0"]

    def test_assert_instances_builtin(self):
        interp = run(
            """
            class S { var v: int; }
            def main(): void {
              gcAssertInstances("S", 1);
              var a: S = new S();
              var b: S = new S();
              gc();
              print(violations());
            }
            """
        )
        assert interp.output == ["1"]

    def test_assert_unshared_builtin(self):
        interp = run(
            """
            class C { var other: C; }
            def main(): void {
              var a: C = new C();
              var b: C = new C();
              var t: C = new C();
              a.other = t;
              b.other = t;
              gcAssertUnshared(t);
              t = null;   // drop the root so only the two heap refs remain
              gc();
              print(violations());
            }
            """
        )
        assert interp.output == ["1"]

    def test_assert_ownedby_builtin(self):
        interp = run(
            """
            class Box { var item: C; }
            class C { var v: int; }
            def main(): void {
              var box: Box = new Box();
              var c: C = new C();
              box.item = c;
              gcAssertOwnedBy(box, c);
              c = null;
              gc();
              print(violations());   // owned: fine
              box.item = null;
              // keep c reachable only via a different box
              var rogue: Box = new Box();
              rogue.item = null;
              gc();
              print(violations());
            }
            """
        )
        # After removal the ownee died with no outside refs: still fine.
        assert interp.output == ["0", "0"]

    def test_assert_ownedby_violation_from_minij(self):
        vm = VirtualMachine(heap_bytes=4 << 20)
        interp = run_source(
            """
            class Box { var item: C; }
            class C { var v: int; }
            def main(): void {
              var box: Box = new Box();
              var c: C = new C();
              box.item = c;
              gcAssertOwnedBy(box, c);
              box.item = null;   // removed from owner...
              gc();              // ...but the local `c` still keeps it alive
              print(violations());
            }
            """,
            vm,
        )
        assert interp.output == ["1"]
        violation = vm.engine.log.of_kind(AssertionKind.OWNED_BY)[0]
        assert violation.type_name == "C"

    def test_builtins_need_objects(self):
        with pytest.raises(MiniJRuntimeError):
            run("def main(): void { gcAssertDead(3); }")

    def test_assertions_unavailable_in_base_vm(self):
        vm = VirtualMachine(heap_bytes=1 << 20, assertions=False)
        with pytest.raises(MiniJRuntimeError):
            run_source(
                """
                class C { var v: int; }
                def main(): void { var c: C = new C(); gcAssertDead(c); }
                """,
                vm,
            )


class TestOnOtherCollectors:
    @pytest.mark.parametrize("collector", ["semispace", "generational"])
    def test_program_runs_on_moving_collectors(self, collector):
        interp = run(
            """
            class Node { var v: int; var next: Node; }
            def main(): void {
              var head: Node = null;
              var i: int = 0;
              while (i < 30) {
                var n: Node = new Node();
                n.v = i; n.next = head; head = n;
                i = i + 1;
              }
              gc();
              var sum: int = 0;
              while (head != null) { sum = sum + head.v; head = head.next; }
              print(sum);
            }
            """,
            collector=collector,
        )
        assert interp.output == [str(sum(range(30)))]

    def test_minor_gc_builtin_on_generational(self):
        interp = run(
            """
            class C { var v: int; }
            def main(): void {
              var c: C = new C();
              c.v = 3;
              gcMinor();
              print(c.v);
            }
            """,
            collector="generational",
        )
        assert interp.output == ["3"]
