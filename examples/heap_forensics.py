#!/usr/bin/env python
"""Heap forensics: the analysis toolkit on the SPEC JBB leak.

GC assertions report a violation with the heap path at collection time;
the `repro.gc.analysis` toolkit answers the same questions interactively —
who holds this object, what does it retain, what does the heap look like —
which is how you'd investigate once a violation points you somewhere.  Run:

    python examples/heap_forensics.py
"""

from repro import AssertionKind, VirtualMachine
from repro.gc.analysis import (
    heap_census,
    incoming_references,
    path_to,
    retained_size,
)
from repro.workloads.jbb import JbbConfig, run_pseudojbb


def main():
    vm = VirtualMachine(heap_bytes=8 << 20)
    print("running pseudojbb with the Customer.lastOrder leak...")
    run_pseudojbb(
        vm,
        JbbConfig(
            warehouses=1,
            districts_per_warehouse=2,
            customers_per_district=10,
            iterations=1,
            transactions_per_iteration=300,
            leak_last_order=True,
            assert_dead_orders=True,
            gc_per_iteration=True,
        ),
    )
    violations = vm.engine.log.of_kind(AssertionKind.DEAD)
    print(f"assert-dead violations: {len(violations)}\n")

    # Pick one leaked Order the collector flagged and investigate it.
    leaked_address = violations[0].address
    leaked = vm.handle(leaked_address)
    print(f"investigating leaked object {leaked!r}")

    print("\n1. Who references it right now?")
    for description, holder in incoming_references(vm, leaked.obj):
        where = f" (in {holder.cls.name}@{holder.address:#x})" if holder else ""
        print(f"   {description}{where}")

    print("\n2. Shortest root path (the live version of the violation path):")
    result = path_to(vm, leaked.obj)
    if result:
        root_desc, chain = result
        print(f"   {root_desc}")
        for obj in chain:
            print(f"   -> {obj.cls.name}@{obj.address:#x}")
    else:
        print("   (no root path anymore: the benchmark ended, so the whole")
        print("    leak graph is garbage awaiting the next GC.  The path the")
        print("    collector recorded at violation time was:)")
        for line in violations[0].path.render().splitlines():
            print(f"   {line}")

    print("\n3. How much memory does the leak pin?")
    single = retained_size(vm, leaked.obj)
    total = sum(retained_size(vm, vm.heap.get(v.address)) for v in violations
                if vm.heap.contains(v.address))
    print(f"   this Order retains {single} bytes; "
          f"all {len(violations)} flagged Orders retain ~{total} bytes")

    print("\n4. Heap census (top classes by live bytes):")
    for name, row in list(heap_census(vm).items())[:6]:
        print(f"   {name:44} {row['objects']:>5} objects {row['bytes']:>8} bytes")

    print("\nThe repair (paper §3.2.1): clear Customer.lastOrder in destroy().")


if __name__ == "__main__":
    main()
