"""Snapshot diffing and ranked leak triage.

Two snapshots bracketing a workload turn the leak question into
arithmetic: a leaking type is one whose live population *grows* between
the snapshots, and whose early instances *survive* into the later one —
in the motivating SwapLeak, every ``swap`` strands one more ``SObject``
and one more ``SObject$Rep`` on the undead chain, so both types grow
linearly while healthy types plateau.

Cross-snapshot identity is ``(addr, alloc_seq)``: addresses are recycled
(and moving collectors restamp ``alloc_seq`` on relocation), so an
address match alone proves nothing, but an identity match proves the very
same install survived.  Survivors whose outgoing edges are bit-identical
in both snapshots ("unchanged survivors") are the stalest tier — alive
for the whole interval without a single observed field write, which is
Cork/staleness's definition of a leak suspect arrived at from the other
direction.  When the caller passes Cork's per-type growth slopes
(:meth:`repro.telemetry.census.ClassCensus.slopes` via
``baselines/cork.py``), each candidate cites Cork's independent ranking
rather than recomputing it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:
    from repro.snapshot.format import HeapSnapshot


class LeakCandidate:
    """One type's growth profile between two snapshots."""

    __slots__ = (
        "type_name",
        "count_first",
        "count_last",
        "bytes_first",
        "bytes_last",
        "survivors",
        "survivors_unchanged",
        "cork_slope",
        "cork_rank",
    )

    def __init__(
        self,
        type_name: str,
        count_first: int,
        count_last: int,
        bytes_first: int,
        bytes_last: int,
        survivors: int = 0,
        survivors_unchanged: int = 0,
        cork_slope: Optional[float] = None,
        cork_rank: Optional[int] = None,
    ):
        self.type_name = type_name
        self.count_first = count_first
        self.count_last = count_last
        self.bytes_first = bytes_first
        self.bytes_last = bytes_last
        self.survivors = survivors
        self.survivors_unchanged = survivors_unchanged
        self.cork_slope = cork_slope
        self.cork_rank = cork_rank

    @property
    def count_delta(self) -> int:
        return self.count_last - self.count_first

    @property
    def bytes_delta(self) -> int:
        return self.bytes_last - self.bytes_first

    def render(self) -> str:
        line = (
            f"{self.type_name}: {self.count_first} -> {self.count_last} live "
            f"({self.count_delta:+d} objects, {self.bytes_delta:+d} bytes); "
            f"{self.survivors} survivors, {self.survivors_unchanged} unwritten"
        )
        if self.cork_slope is not None:
            rank = f" (cork rank #{self.cork_rank})" if self.cork_rank else ""
            line += f"; cork slope {self.cork_slope:+.1f} B/census{rank}"
        return line

    def __repr__(self) -> str:
        return f"<leak-candidate {self.type_name} {self.bytes_delta:+d}B>"


class SnapshotDiff:
    """The full comparison of two snapshots, leak candidates ranked first."""

    __slots__ = ("first", "last", "candidates", "shrunk", "survivor_identities")

    def __init__(
        self,
        first: "HeapSnapshot",
        last: "HeapSnapshot",
        candidates: list[LeakCandidate],
        shrunk: list[LeakCandidate],
        survivor_identities: set[tuple[int, int]],
    ):
        self.first = first
        self.last = last
        #: Growing types, heaviest byte growth first.
        self.candidates = candidates
        #: Types whose population stayed flat or shrank (not leak suspects).
        self.shrunk = shrunk
        self.survivor_identities = survivor_identities

    def ranked(self) -> list[LeakCandidate]:
        return self.candidates

    def render(self, limit: int = 10) -> str:
        lines = [
            f"Snapshot diff: gc {self.first.gc_number} -> gc {self.last.gc_number} "
            f"({len(self.first)} -> {len(self.last)} live objects, "
            f"{self.first.total_bytes} -> {self.last.total_bytes} bytes, "
            f"{len(self.survivor_identities)} survivors)",
        ]
        if not self.candidates:
            lines.append("No growing types: nothing to triage.")
            return "\n".join(lines)
        lines.append(f"Leak candidates (top {min(limit, len(self.candidates))}):")
        for rank, cand in enumerate(self.candidates[:limit], start=1):
            lines.append(f"  #{rank} {cand.render()}")
        if len(self.candidates) > limit:
            lines.append(f"  ... and {len(self.candidates) - limit} more growing types")
        return "\n".join(lines)


def diff_snapshots(
    first: "HeapSnapshot",
    last: "HeapSnapshot",
    cork_slopes: Optional[dict[str, float]] = None,
) -> SnapshotDiff:
    """Compare two snapshots and rank leak candidates.

    Ranking is byte growth, then object growth, then type name — the name
    tie-break keeps the ranking deterministic when two types grow in
    lock-step (SwapLeak's ``SObject``/``SObject$Rep`` pair grows by
    exactly the same bytes per swap).
    """
    first_types = first.type_summary()
    last_types = last.type_summary()

    survivor_identities = first.identities() & last.identities()
    first_edges = {rec.identity: rec.edges for rec in first.objects.values()}
    survivors_by_type: dict[str, int] = {}
    unchanged_by_type: dict[str, int] = {}
    for rec in last.objects.values():
        ident = rec.identity
        if ident not in survivor_identities:
            continue
        name = rec.type_name
        survivors_by_type[name] = survivors_by_type.get(name, 0) + 1
        if first_edges[ident] == rec.edges:
            unchanged_by_type[name] = unchanged_by_type.get(name, 0) + 1

    cork_ranks: dict[str, int] = {}
    if cork_slopes:
        ordered = sorted(cork_slopes.items(), key=lambda kv: (-kv[1], kv[0]))
        cork_ranks = {name: i for i, (name, _slope) in enumerate(ordered, start=1)}

    growing: list[LeakCandidate] = []
    flat: list[LeakCandidate] = []
    for name in sorted(set(first_types) | set(last_types)):
        count_first, bytes_first = first_types.get(name, (0, 0))
        count_last, bytes_last = last_types.get(name, (0, 0))
        cand = LeakCandidate(
            name,
            count_first,
            count_last,
            bytes_first,
            bytes_last,
            survivors=survivors_by_type.get(name, 0),
            survivors_unchanged=unchanged_by_type.get(name, 0),
            cork_slope=(cork_slopes or {}).get(name),
            cork_rank=cork_ranks.get(name),
        )
        if cand.bytes_delta > 0 or cand.count_delta > 0:
            growing.append(cand)
        else:
            flat.append(cand)
    growing.sort(key=lambda c: (-c.bytes_delta, -c.count_delta, c.type_name))
    return SnapshotDiff(first, last, growing, flat, survivor_identities)
