"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``info``      — package, collector, and suite overview.
* ``demo``      — run the quickstart scenario and print the reports.
* ``figures``   — regenerate Figures 2–5 (``--full`` for the whole suite;
  ``--json-out`` also writes the machine-readable perf record).
* ``bench``     — hot-path perf record: trace/alloc microbenchmarks and the
  eager-vs-lazy sweep pause comparison; writes ``BENCH_perf.json`` and
  exits non-zero if the deterministic work counters drift between modes.
* ``verify``    — run a workload on every collector and verify heap
  integrity afterwards (a smoke test for modified collectors).
* ``stats``     — run a workload with telemetry on and report the GC event
  stream, pause percentiles, and per-class census (``--json`` / ``--prom``
  for machine-readable output, ``--jsonl FILE`` to stream events).
* ``minij FILE``— run a MiniJ program (with gcAssert* builtins available).
"""

from __future__ import annotations

import argparse
import sys


def cmd_info(_args) -> int:
    import repro
    from repro.workloads.suite import build_suite

    print(f"repro {repro.__version__} — GC assertions (PLDI 2009) reproduction")
    print("collectors: marksweep (paper), semispace, generational")
    print("assertions: assert_dead, start_region/assert_alldead, "
          "assert_instances, assert_unshared, assert_ownedby")
    suite = build_suite()
    print(f"benchmark suite ({len(suite)} members):")
    for name, entry in sorted(suite.items()):
        asserted = " [+assertions variant]" if entry.run_with_assertions else ""
        print(f"  {name:12} heap={entry.heap_bytes:>8}B{asserted}")
    return 0


def cmd_demo(_args) -> int:
    """A compact version of examples/quickstart.py."""
    from repro import FieldKind, VirtualMachine

    vm = VirtualMachine(heap_bytes=1 << 20)
    node = vm.define_class("Node", [("next", FieldKind.REF), ("value", FieldKind.INT)])
    with vm.scope():
        head = vm.new(node, value=1)
        tail = vm.new(node, value=2)
        head["next"] = tail
        vm.statics.set_ref("head", head.address)
        vm.assertions.assert_dead(tail, site="demo: after detach")
    vm.gc()
    print("assert_dead on a still-reachable object:")
    print()
    print(vm.assertions.violations.lines[0])
    print()
    head["next"] = None
    vm.gc()
    print(f"after the fix: {vm.assertions.pending_dead()} pending assertions, "
          f"{vm.engine.registry.dead_satisfied} satisfied.")
    print("see examples/quickstart.py for all five assertion kinds.")
    return 0


def cmd_figures(args) -> int:
    from repro.bench import dump_figures, infrastructure_figures, withassertions_figures

    benchmarks = None if args.full else ["antlr", "jess", "xalan", "db", "pseudojbb"]
    infra = infrastructure_figures(trials=args.trials, benchmarks=benchmarks)
    print(infra["fig2"].render())
    print()
    print(infra["fig3"].render())
    print()
    asserted = withassertions_figures(trials=args.trials)
    print(asserted["fig4"].render())
    print()
    print(asserted["fig5"].render())
    if args.json_out:
        path = dump_figures({**infra, **asserted}, args.json_out, trials=args.trials)
        print()
        print(f"machine-readable results written to {path}")
    return 0


def cmd_bench(args) -> int:
    from repro.bench import dump_perf, perf_payload, render_perf

    payload = perf_payload(quick=args.quick)
    print(render_perf(payload))
    if args.json_out:
        path = dump_perf(payload, args.json_out)
        print()
        print(f"machine-readable results written to {path}")
    # Timing is advisory; counter identity is the gate (CI relies on this).
    return 0 if payload["counters_match"] else 1


def cmd_stats(args) -> int:
    """Run one suite workload with telemetry enabled and report it."""
    import json

    from repro.runtime.vm import VirtualMachine
    from repro.telemetry import JsonlSink, render_prometheus
    from repro.workloads.suite import build_suite

    suite = build_suite()
    try:
        entry = suite[args.workload]
    except KeyError:
        print(f"unknown workload {args.workload!r}; pick from {sorted(suite)}")
        return 2
    vm = VirtualMachine(
        heap_bytes=args.heap or entry.heap_bytes, collector=args.collector
    )
    if args.jsonl:
        vm.telemetry.add_sink(JsonlSink(args.jsonl))
    runner = entry.run
    if args.assertions and entry.run_with_assertions is not None:
        runner = entry.run_with_assertions
    runner(vm)
    if vm.stats.collections == 0:
        # Nothing triggered a collection, so no event or census sample
        # exists yet; force one.  (After a workload that *did* collect,
        # a forced GC would only overwrite the census with the post-run
        # empty heap.)
        vm.gc("stats: final census")
    vm.telemetry.close()
    if args.json:
        print(json.dumps(vm.telemetry.summary(), indent=2))
    elif args.prom:
        print(render_prometheus(vm.telemetry), end="")
    else:
        print(f"{entry.name} on {vm.collector.describe()}")
        print()
        print(vm.telemetry.render())
    return 0


def cmd_verify(_args) -> int:
    from repro.gc.verify import verify_heap
    from repro.runtime.vm import VirtualMachine
    from repro.workloads.jbb import JbbConfig, run_pseudojbb

    failures = 0
    for collector in ("marksweep", "semispace", "generational"):
        vm = VirtualMachine(heap_bytes=1 << 20, collector=collector)
        run_pseudojbb(
            vm,
            JbbConfig(
                iterations=1,
                transactions_per_iteration=150,
                assert_dead_orders=True,
                assert_ownedby_orders=True,
                gc_per_iteration=True,
            ),
        )
        vm.gc()
        problems = verify_heap(vm, raise_on_error=False)
        status = "OK" if not problems else f"FAILED ({len(problems)} problems)"
        print(f"{collector:12} {status}")
        for problem in problems:
            print(f"    {problem}")
        failures += bool(problems)
    return 1 if failures else 0


def cmd_minij(args) -> int:
    from repro.interp.interpreter import Interpreter
    from repro.runtime.vm import VirtualMachine

    with open(args.file) as handle:
        source = handle.read()
    vm = VirtualMachine(heap_bytes=args.heap)
    interp = Interpreter(vm, echo=True)
    interp.load(source)
    interp.run(args.entry)
    if vm.engine is not None and vm.engine.log.lines:
        print()
        print("GC assertion reports:")
        for line in vm.engine.log.lines:
            print(line)
            print()
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="package and suite overview")
    sub.add_parser("demo", help="run the quickstart scenario")

    figures = sub.add_parser("figures", help="regenerate Figures 2-5")
    figures.add_argument("--trials", type=int, default=3)
    figures.add_argument("--full", action="store_true")
    figures.add_argument(
        "--json-out",
        metavar="PATH",
        help="also write machine-readable results (e.g. BENCH_figures.json)",
    )

    bench = sub.add_parser("bench", help="hot-path perf record (BENCH_perf.json)")
    bench.add_argument(
        "--quick",
        action="store_true",
        help="reduced sizes/trials for CI smoke runs",
    )
    bench.add_argument(
        "--json-out",
        metavar="PATH",
        default="BENCH_perf.json",
        help="machine-readable results path (default: %(default)s)",
    )

    sub.add_parser("verify", help="heap-integrity smoke test on all collectors")

    stats = sub.add_parser("stats", help="GC telemetry for one workload run")
    stats.add_argument("--workload", default="pseudojbb")
    stats.add_argument(
        "--collector",
        default="marksweep",
        choices=["marksweep", "semispace", "generational"],
    )
    stats.add_argument("--heap", type=int, default=None, help="heap bytes override")
    stats.add_argument(
        "--assertions",
        action="store_true",
        help="use the benchmark's asserted variant when it has one",
    )
    stats.add_argument("--jsonl", metavar="PATH", help="stream events to a JSONL file")
    output = stats.add_mutually_exclusive_group()
    output.add_argument("--json", action="store_true", help="full summary as JSON")
    output.add_argument(
        "--prom", action="store_true", help="Prometheus text exposition format"
    )

    minij = sub.add_parser("minij", help="run a MiniJ program")
    minij.add_argument("file")
    minij.add_argument("--entry", default="main")
    minij.add_argument("--heap", type=int, default=4 << 20)

    args = parser.parse_args(argv)
    handlers = {
        "info": cmd_info,
        "demo": cmd_demo,
        "figures": cmd_figures,
        "bench": cmd_bench,
        "verify": cmd_verify,
        "stats": cmd_stats,
        "minij": cmd_minij,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
