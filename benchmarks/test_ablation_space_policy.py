"""Ablation abl-space: free-list space vs Jikes-style block-structured space.

The simulator's default space hands out size-class cells from simple free
lists; the ``blocks`` policy reproduces Jikes RVM's block-structured layout
where capacity is consumed a 4 KB block at a time and partially-filled
blocks waste budget.  This ablation quantifies the difference the layout
makes: collection *frequency* rises under block-granular budgeting (the
same workload hits the heap ceiling sooner), while reachability results and
assertion checking stay identical.
"""

from __future__ import annotations

from repro.gc.marksweep import MarkSweepCollector
from repro.heap.blocks import BlockSpace
from repro.runtime.vm import VirtualMachine
from repro.workloads.jbb import JbbConfig, run_pseudojbb

HEAP = 72 << 10
CONFIG = JbbConfig(
    warehouses=1,
    districts_per_warehouse=2,
    customers_per_district=8,
    iterations=2,
    transactions_per_iteration=400,
    assert_dead_orders=True,
)


def _run(policy: str) -> dict:
    collector = MarkSweepCollector(HEAP, space_policy=policy)
    vm = VirtualMachine(collector=collector, assertions=True)
    result = run_pseudojbb(vm, CONFIG)
    # Measure space state at end-of-run (before the census GC empties it).
    out = {
        "policy": policy,
        "collections": vm.stats.collections,
        "violations": result.violations,
        "bytes_in_use": collector.bytes_in_use(),
        "live_bytes": vm.heap.live_bytes(),
    }
    if isinstance(collector.space, BlockSpace):
        out["fragmentation"] = collector.space.fragmentation()
    vm.gc(reason="final census")  # align the live sets before comparing
    out["objects_live"] = vm.heap.stats.objects_live
    return out


def test_space_policy_ablation(once, figure_report):
    def run():
        return _run("freelist"), _run("blocks")

    freelist, blocks = once(run)

    utilization = blocks["fragmentation"]["utilization"]
    figure_report.append(
        "Ablation abl-space (free-list vs block-structured space, same "
        f"workload at {HEAP // 1024} KB):\n"
        f"  freelist: {freelist['collections']} collections, "
        f"{freelist['bytes_in_use']} bytes held for "
        f"{freelist['live_bytes']} live bytes\n"
        f"  blocks:   {blocks['collections']} collections, "
        f"{blocks['bytes_in_use']} bytes held for "
        f"{blocks['live_bytes']} live bytes "
        f"(block utilization {utilization:.0%})"
    )

    # Identical program behavior and assertion outcomes...
    assert freelist["violations"] == blocks["violations"] == 0
    assert freelist["objects_live"] == blocks["objects_live"]
    # ...but block-granular budgeting holds at least as many bytes for the
    # same live data (internal fragmentation) and collects at least as often.
    assert blocks["bytes_in_use"] >= blocks["live_bytes"]
    assert blocks["collections"] >= freelist["collections"]
    assert 0 < utilization <= 1.0


def test_block_space_accounting_consistent(once):
    blocks = once(lambda: _run("blocks"))
    frag = blocks["fragmentation"]
    # live + free cells + pooled blocks account for every held byte
    # (up to per-block slack from cells that don't divide 4096 evenly).
    accounted = (
        frag["live_cell_bytes"] + frag["free_cell_bytes"] + frag["pooled_block_bytes"]
    )
    assert accounted <= frag["bytes_in_use"]
    assert accounted >= frag["bytes_in_use"] * 0.8
