"""Assertion-engine internals: hooks, misuse detection, metadata hygiene."""

import pytest

from repro.core.reporting import AssertionKind
from repro.heap import header as hdr
from repro.heap.object_model import FieldKind
from repro.runtime.vm import VirtualMachine
from tests.conftest import build_chain, make_node_class


class TestOwnershipMisuse:
    """§2.5.2: 'If we encounter an ownee object ... check to make sure it
    belongs to the current owner.  If not, issue a warning (improper use of
    the assertion).'"""

    def _overlapping_vm(self):
        vm = VirtualMachine(heap_bytes=4 << 20)
        cont_cls = vm.define_class("Cont", [("a", FieldKind.REF), ("b", FieldKind.REF)])
        elem_cls = vm.define_class("Elem", [("id", FieldKind.INT)])
        with vm.scope():
            owner1 = vm.new(cont_cls)
            owner2 = vm.new(cont_cls)
            vm.statics.set_ref("o1", owner1.address)
            vm.statics.set_ref("o2", owner2.address)
            shared = vm.new(elem_cls, id=7)
            # shared is registered as owner2's ownee, but owner1's region
            # also reaches it: the regions overlap — improper use.
            owner1["a"] = shared
            owner2["a"] = shared
            own1_elem = vm.new(elem_cls, id=1)
            owner1["b"] = own1_elem
            vm.assertions.assert_ownedby(owner1, own1_elem)
            vm.assertions.assert_ownedby(owner2, shared)
        return vm, shared

    def test_overlap_reported_as_misuse(self):
        vm, shared = self._overlapping_vm()
        vm.gc()
        misuse = vm.engine.log.of_kind(AssertionKind.OWNERSHIP_MISUSE)
        assert len(misuse) == 1
        assert misuse[0].address == shared.obj.address
        assert "overlap" in misuse[0].message

    def test_misuse_deduplicated_within_one_gc(self):
        vm, shared = self._overlapping_vm()
        vm.gc()
        assert len(vm.engine.log.of_kind(AssertionKind.OWNERSHIP_MISUSE)) == 1

    def test_shared_ownee_still_validated_by_its_owner(self):
        vm, shared = self._overlapping_vm()
        vm.gc()
        # No unowned-ownee violation: owner2's own scan owns it (when owner2
        # scans first) or it is flagged as misuse only.
        unowned = [
            v
            for v in vm.engine.log.of_kind(AssertionKind.OWNED_BY)
            if v.address == shared.obj.address
        ]
        assert unowned == []


class TestEngineLifecycle:
    def test_instance_counts_reset_between_gcs(self, vm, node_class):
        build_chain(vm, node_class, 3)
        vm.assertions.assert_instances(node_class, 99)
        vm.gc()
        first = node_class.instance_count
        vm.gc()
        assert node_class.instance_count == first

    def test_violations_dispatched_only_at_gc_end(self, vm, node_class):
        nodes = build_chain(vm, node_class, 1)
        vm.assertions.assert_dead(nodes[0])
        assert len(vm.engine.log) == 0
        vm.gc()
        assert len(vm.engine.log) == 1

    def test_gc_number_recorded_on_violations(self, vm, node_class):
        nodes = build_chain(vm, node_class, 1)
        vm.gc()  # collection #1
        vm.assertions.assert_dead(nodes[0])
        vm.gc()  # collection #2 detects
        assert vm.engine.log.violations[0].gc_number == 2

    def test_address_reuse_does_not_resurrect_assertions(self, vm, node_class):
        """A freed asserted object's address may be recycled; the new
        occupant must not inherit the assertion."""
        with vm.scope():
            doomed = vm.new(node_class)
            vm.assertions.assert_dead(doomed)
            vm.assertions.assert_unshared(doomed)
        vm.gc()  # doomed dies; assertion satisfied, metadata purged
        with vm.scope():
            fresh = vm.new(node_class)
            # Free-list recycling gives back the same cell.
            assert fresh.obj.address == doomed.obj.address
            vm.statics.set_ref("fresh", fresh.address)
        vm.gc()
        assert len(vm.engine.log) == 0
        assert not fresh.obj.test(hdr.DEAD_BIT)
        assert not fresh.obj.test(hdr.UNSHARED_BIT)

    def test_registry_snapshot_reflects_state(self, vm, node_class):
        nodes = build_chain(vm, node_class, 3)
        vm.assertions.assert_dead(nodes[0])
        vm.assertions.assert_ownedby(nodes[1], nodes[2])
        snap = vm.engine.registry.snapshot()
        assert snap["dead_pending"] == 1
        assert snap["owners"] == 1
        assert snap["ownees"] == 1
        assert snap["calls"]["assert-dead"] == 1


class TestOwnershipAcrossCollections:
    def test_pairs_survive_many_gcs(self, vm, node_class):
        nodes = build_chain(vm, node_class, 4)
        vm.assertions.assert_ownedby(nodes[0], nodes[3])
        for _ in range(5):
            vm.gc()
        assert len(vm.engine.log) == 0
        assert vm.assertions.live_ownees() == 1

    def test_violation_reported_every_gc_while_leaked(self, vm, node_class):
        nodes = build_chain(vm, node_class, 3)
        vm.assertions.assert_ownedby(nodes[0], nodes[2])
        vm.statics.set_ref("cache", nodes[2].address)
        nodes[1]["next"] = None  # cut the owner path
        vm.gc()
        vm.gc()
        assert len(vm.engine.log.of_kind(AssertionKind.OWNED_BY)) == 2

    def test_owner_chain_three_levels(self, vm):
        """Owner A owns b; separately b's payload is just data (no nested
        owners on the path), per the §2.5.2 disjointness requirement."""
        cls = vm.define_class("H", [("child", FieldKind.REF), ("data", FieldKind.REF)])
        with vm.scope():
            a = vm.new(cls)
            b = vm.new(cls)
            payload = vm.new(cls)
            a["child"] = b
            b["data"] = payload
            vm.statics.set_ref("a", a.address)
            vm.assertions.assert_ownedby(a, b)
        vm.gc()
        assert len(vm.engine.log) == 0
        # payload was marked through the ownership phase and survived.
        assert payload.is_live
