"""§3.2 qualitative case studies, end to end.

Each test reproduces one of the paper's debugging sessions: run the buggy
program with the paper's assertion placement, confirm the violation and its
diagnostic content, then run the repaired program and confirm silence.
"""

from __future__ import annotations

from repro.core.reporting import AssertionKind
from repro.runtime.vm import VirtualMachine
from repro.workloads.db import DbConfig, run_db
from repro.workloads.jbb import JbbConfig, run_pseudojbb
from repro.workloads.lusearch import LusearchConfig, run_lusearch
from repro.workloads.swapleak import SwapLeakConfig, run_swapleak

JBB_BASE = dict(
    warehouses=1,
    districts_per_warehouse=2,
    customers_per_district=8,
    iterations=2,
    transactions_per_iteration=200,
    gc_per_iteration=True,
)


def _jbb(**flags):
    vm = VirtualMachine(heap_bytes=8 << 20)
    result = run_pseudojbb(vm, JbbConfig(**JBB_BASE, **flags))
    return vm, result


class TestJbbCaseStudies:
    def test_jbb_lastorder_leak_found_and_repaired(self, once, figure_report):
        vm, _result = once(
            lambda: _jbb(leak_last_order=True, assert_dead_orders=True)
        )
        dead = vm.engine.log.of_kind(AssertionKind.DEAD)
        assert dead
        names = dead[0].path.type_names()
        assert "spec.jbb.Customer" in names, "the path must finger Customer"
        figure_report.append(
            "Case study 3.2.1(a) — Customer.lastOrder leak:\n" + dead[0].render()
        )
        # The paper's repair: clear Customer.lastOrder in destroy().
        vm_fixed, _ = _jbb(leak_last_order=False, assert_dead_orders=True)
        assert len(vm_fixed.engine.log.of_kind(AssertionKind.DEAD)) == 0

    def test_jbb_oldcompany_drag_found(self, once, figure_report):
        vm, _ = once(
            lambda: _jbb(drag_old_company=True, assert_instances_company=True)
        )
        violations = vm.engine.log.of_kind(AssertionKind.INSTANCES)
        assert violations
        assert violations[0].details["count"] == 2
        figure_report.append(
            "Case study 3.2.1(b) — oldCompany drag:\n" + violations[0].render()
        )
        vm_fixed, _ = _jbb(drag_old_company=False, assert_instances_company=True)
        assert len(vm_fixed.engine.log.of_kind(AssertionKind.INSTANCES)) == 0

    def test_jbb_ordertable_leak_via_assert_dead(self, once):
        vm, _ = once(lambda: _jbb(leak_order_table=True, assert_dead_orders=True))
        dead = vm.engine.log.of_kind(AssertionKind.DEAD)
        assert dead
        assert any(
            "spec.jbb.infra.Collections.longBTree" in v.path.type_names()
            for v in dead
        )

    def test_jbb_ordertable_leak_via_ownership(self, once):
        """'Instead, we applied the assert-ownedBy assertion to the Orders
        ... the user does not need to know when an object should be dead.'
        With the lastOrder bug present, destroyed Orders stay reachable from
        Customers only — i.e. not through their owning orderTable."""
        vm, result = once(
            lambda: _jbb(
                leak_last_order=True,
                assert_ownedby_orders=True,
            )
        )
        owned = vm.engine.log.of_kind(AssertionKind.OWNED_BY)
        assert owned
        assert owned[0].type_name == "spec.jbb.Order"

    def test_jbb_healthy_is_quiet(self, once):
        vm, result = once(
            lambda: _jbb(
                assert_dead_orders=True,
                assert_ownedby_orders=True,
                assert_instances_company=True,
                region_payments=True,
            )
        )
        assert result.violations == 0


class TestLusearchCaseStudy:
    def test_lusearch_32_searchers(self, once, figure_report):
        def run():
            vm = VirtualMachine(heap_bytes=16 << 20)
            result = run_lusearch(
                vm,
                LusearchConfig(
                    threads=32,
                    queries_per_thread=4,
                    ndocs=60,
                    terms_per_doc=8,
                    assert_single_searcher=True,
                ),
            )
            return vm, result

        vm, result = once(run)
        violations = vm.engine.log.of_kind(AssertionKind.INSTANCES)
        assert violations
        # The paper's finding, exactly: 32 live IndexSearchers, one per thread.
        assert violations[0].details["count"] == 32
        assert result.peak_live_searchers == 32
        figure_report.append(
            "Case study 3.2.2 — lusearch IndexSearcher:\n" + violations[0].render()
        )

    def test_lusearch_repair(self, once):
        def run():
            vm = VirtualMachine(heap_bytes=16 << 20)
            result = run_lusearch(
                vm,
                LusearchConfig(
                    threads=32,
                    queries_per_thread=4,
                    ndocs=60,
                    terms_per_doc=8,
                    assert_single_searcher=True,
                    share_searcher=True,
                ),
            )
            return vm, result

        vm, result = once(run)
        assert result.violations == 0
        assert result.searchers_created == 1


class TestSwapLeakCaseStudy:
    def test_swapleak_hidden_reference(self, once, figure_report):
        def run():
            vm = VirtualMachine(heap_bytes=16 << 20)
            result = run_swapleak(vm, SwapLeakConfig(array_size=16, swaps=16))
            return vm, result

        vm, result = once(run)
        assert result.violations == result.swaps
        violation = vm.engine.log.violations[0]
        # The paper's exact path: SArray -> SObject[] -> SObject ->
        # SObject$Rep -> SObject.
        assert violation.path.type_names() == [
            "SArray",
            "SObject[]",
            "SObject",
            "SObject$Rep",
            "SObject",
        ]
        figure_report.append(
            "Case study 3.2.3 — SwapLeak hidden inner-class reference:\n"
            + violation.render()
        )

    def test_swapleak_static_inner_repair(self, once):
        def run():
            vm = VirtualMachine(heap_bytes=16 << 20)
            return run_swapleak(
                vm, SwapLeakConfig(array_size=16, swaps=16, static_rep=True)
            )

        result = once(run)
        assert result.violations == 0


class TestDbCaseStudy:
    def test_db_cache_leak_detected_both_ways(self, once):
        def run():
            vm = VirtualMachine(heap_bytes=8 << 20)
            result = run_db(
                vm,
                DbConfig(
                    initial_entries=60,
                    operations=400,
                    key_space=100,
                    find_weight=8,
                    gc_every=100,
                    leak_external_cache=True,
                    assert_ownedby_entries=True,
                    assert_dead_on_delete=True,
                ),
            )
            return vm, result

        vm, result = once(run)
        kinds = {v.kind for v in vm.engine.log}
        assert AssertionKind.DEAD in kinds
        assert AssertionKind.OWNED_BY in kinds
