"""Bytecode for the MiniJ stack machine."""

from __future__ import annotations

import enum
from typing import Optional


class Op(enum.Enum):
    PUSH_CONST = "push_const"    # a = python value (int/float/bool/str)
    PUSH_NULL = "push_null"
    LOAD = "load"                # a = local slot
    STORE = "store"              # a = local slot
    GET_FIELD = "get_field"      # a = field name;  [obj] -> [value]
    PUT_FIELD = "put_field"      # a = field name;  [obj, value] -> []
    ALOAD = "aload"              # [arr, idx] -> [value]
    ASTORE = "astore"            # [arr, idx, value] -> []
    NEW_OBJECT = "new_object"    # a = class name
    NEW_ARRAY = "new_array"      # a = element TypeRef; [length] -> [arr]
    CALL = "call"                # a = function name, b = argc
    CALL_METHOD = "call_method"  # a = method name, b = argc; [obj, args...]
    RETURN = "return"            # [value] -> caller
    POP = "pop"
    DUP = "dup"
    BINARY = "binary"            # a = operator text
    UNARY = "unary"              # a = operator text
    JUMP = "jump"                # a = target pc
    JUMP_IF_FALSE = "jump_if_false"  # a = target pc; [cond] -> []


class Instr:
    """One instruction: opcode plus up to two immediates and a source line."""

    __slots__ = ("op", "a", "b", "line")

    def __init__(self, op: Op, a=None, b=None, line: int = 0):
        self.op = op
        self.a = a
        self.b = b
        self.line = line

    def __repr__(self) -> str:
        parts = [self.op.value]
        if self.a is not None:
            parts.append(repr(self.a))
        if self.b is not None:
            parts.append(repr(self.b))
        return f"<{' '.join(parts)}>"


class Function:
    """A compiled function or method."""

    __slots__ = ("name", "owner", "params", "n_locals", "code", "return_is_void", "local_names")

    def __init__(
        self,
        name: str,
        owner: Optional[str],
        params: list[str],
        n_locals: int,
        code: list[Instr],
        return_is_void: bool,
        local_names: list[str],
    ):
        self.name = name
        self.owner = owner
        self.params = params
        self.n_locals = n_locals
        self.code = code
        self.return_is_void = return_is_void
        self.local_names = local_names

    @property
    def qualname(self) -> str:
        return f"{self.owner}.{self.name}" if self.owner else self.name

    def disassemble(self) -> str:
        lines = [f"function {self.qualname}({', '.join(self.params)}) locals={self.n_locals}"]
        for pc, instr in enumerate(self.code):
            lines.append(f"  {pc:4d}: {instr!r}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"<fn {self.qualname} ({len(self.code)} instrs)>"
