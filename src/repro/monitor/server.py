"""The live serving layer: ``/metrics``, ``/health`` and ``/slo`` over HTTP.

A :class:`MonitorServer` wraps the shared :class:`repro.httpd.EndpointServer`
— a stdlib ``ThreadingHTTPServer`` on a daemon thread, no framework, no new
dependency — and serves the pull side of the monitor:

* ``/metrics`` — Prometheus text exposition: the PR-1 telemetry exporter
  verbatim, with the monitor's own families (MMU curve, utilization,
  health score, alert/budget state) appended in the same format.
* ``/health`` — the machine-readable health report as JSON; HTTP 200
  while within SLO, 503 while any alert fires or a budget is exhausted.
* ``/slo`` — the full SLO status document as JSON (always 200; the
  *content* says what is burning).

Handlers only read hub state that is appended from the GC's emit path,
so a scrape races at worst against one in-flight append — both the
deques and the handler snapshots tolerate that.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.httpd import JSON_CONTENT_TYPE, PROMETHEUS_CONTENT_TYPE, EndpointServer
from repro.monitor.health import health_report, health_score
from repro.monitor.mmu import DEFAULT_MMU_WINDOWS
from repro.telemetry.sinks import ExpositionWriter, render_prometheus

if TYPE_CHECKING:
    from repro.monitor.timeseries import MonitorHub

__all__ = ["MonitorServer", "PROMETHEUS_CONTENT_TYPE", "render_monitor_metrics"]


def render_monitor_metrics(hub: "MonitorHub", namespace: str = "repro") -> str:
    """The monitor's own metric families, exposition-format text.

    Appended after the telemetry exporter's output on ``/metrics``;
    family names are disjoint from the telemetry exporter's, so the
    combined document has no duplicate TYPE declarations.
    """
    writer = ExpositionWriter(namespace)
    metric, sample = writer.metric, writer.sample

    full = metric("mutator_utilization_ratio", "gauge",
                  "Mutator utilization over the trailing 1s window.")
    sample(full, hub.utilization_now())

    full = metric("mmu_ratio", "gauge",
                  "Minimum mutator utilization per window width.")
    for window_s, value in hub.mmu_points(DEFAULT_MMU_WINDOWS):
        sample(full, value, {"window": f"{window_s:g}s"})

    full = metric("monitor_gc_events_total", "counter",
                  "GC events the monitor hub has ingested.")
    sample(full, hub.gc_events_seen)

    full = metric("monitor_degradations_total", "counter",
                  "Recovery-path activations observed, by kind.")
    for kind, count in sorted(hub.degradations_by_kind.items()):
        sample(full, count, {"kind": kind})

    full = metric("monitor_alerts_total", "counter",
                  "Burn-rate alert transitions observed, by state.")
    firing = sum(1 for a in hub.alerts if a.state == "firing")
    resolved = sum(1 for a in hub.alerts if a.state == "resolved")
    sample(full, firing, {"state": "firing"})
    sample(full, resolved, {"state": "resolved"})

    if hub.slos is not None:
        full = metric("slo_budget_remaining_ratio", "gauge",
                      "Error budget remaining per objective (1 = untouched).")
        for rule in hub.slos.rules:
            sample(full, rule.budget_remaining(),
                   {"objective": rule.objective.name})
        full = metric("slo_firing", "gauge",
                      "1 while the objective's burn-rate alert is firing.")
        for rule in hub.slos.rules:
            sample(full, 1 if rule.firing else 0,
                   {"objective": rule.objective.name})

    full = metric("heap_health_score", "gauge",
                  "Composite heap health (0-100; 100 is perfectly healthy).")
    sample(full, health_score(hub))

    return writer.render()


class MonitorServer:
    """Daemon-threaded HTTP server over a monitor hub.

    ``port=0`` binds an ephemeral port (tests, CI); the bound port is
    ``server.port`` after :meth:`start`.  The serving thread is a daemon,
    so a crashing workload never hangs on the exporter.
    """

    def __init__(self, hub: "MonitorHub", port: int = 0, host: str = "127.0.0.1"):
        self.hub = hub
        self.host = host
        self._endpoint: Optional[EndpointServer] = EndpointServer(
            {
                "/metrics": self._serve_metrics,
                "/health": self._serve_health,
                "/slo": self._serve_slo,
            },
            port=port,
            host=host,
            name="repro-monitor",
            server_version="repro-monitor/1",
        )

    # -- route handlers (run on the serving thread; read-only) --------------------------

    def _serve_metrics(self):
        hub = self.hub
        body = ""
        vm = hub.vm
        if vm is not None and vm.telemetry is not None and vm.telemetry.enabled:
            body += render_prometheus(vm.telemetry)
        body += render_monitor_metrics(hub)
        return 200, PROMETHEUS_CONTENT_TYPE, body

    def _serve_health(self):
        report = health_report(self.hub)
        return report["http_code"], JSON_CONTENT_TYPE, report

    def _serve_slo(self):
        hub = self.hub
        if hub.slos is None:
            return 200, JSON_CONTENT_TYPE, {
                "schema": "repro-slo/1", "healthy": True,
                "firing": [], "exhausted": [], "objectives": [],
            }
        return 200, JSON_CONTENT_TYPE, hub.slos.status()

    # -- lifecycle (delegates to the shared EndpointServer) -----------------------------

    @property
    def port(self) -> int:
        return self._endpoint.port

    @property
    def url(self) -> str:
        return self._endpoint.url

    def start(self) -> "MonitorServer":
        self._endpoint.start()
        return self

    def stop(self) -> None:
        self._endpoint.stop()

    def __enter__(self) -> "MonitorServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
