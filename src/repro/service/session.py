"""Tenant sessions: one isolated VM + heap + assertion engine per tenant.

A :class:`TenantSession` is the unit of multi-tenancy.  Its lifecycle is

    admitted -> running -> draining -> evicted

Every session ends *evicted* — that is the state in which its committed
heap bytes have been returned to the admission budget; the ``outcome``
field says how it got there (``completed``, ``killed``, or a typed
error such as ``typed:HeapExhausted``).  The session owns a private
:class:`~repro.runtime.vm.VirtualMachine`, so one tenant's assertion
violations, OOM ladder, or injected faults can never perturb another
tenant's GC counters — the isolation property the chaos suite's
tenant-isolation cell pins.

Outbound traffic flows through a bounded :class:`FrameQueue`.  GC-event
frames are load-sheddable (a slow consumer drops telemetry, counted,
rather than stalling the collector); violation, result, and lifecycle
frames are critical and always enqueue.  Every outbound frame is
stamped with a monotonic per-session ``seq`` *before* the shedding
decision, so a dropped frame leaves an observable gap the client's
:class:`~repro.service.wire.SequenceTracker` can count.

When the service runs with distributed tracing on, the session's VM
gets its own :class:`~repro.tracing.spans.SpanTracer` and the session
carries the requester's :class:`~repro.tracing.distributed.TraceContext`
— outbound frames echo the ``trace_id``, and the merge layer re-parents
the VM's GC/assertion spans under the owning request span.

Fault hooks: the session registers ``session-kill`` and ``conn-drop``
callables in ``vm.service_hooks`` so :mod:`repro.faults` can inject
service-layer failures through the same plan/injector machinery as heap
corruption.  ``session-kill`` raises :class:`~repro.errors.SessionKilled`
out of the workload at the next GC; ``conn-drop`` severs the outbound
stream (frames are discarded and counted) while the workload runs on —
the draining semantics a dead TCP peer produces.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, Optional

from repro.errors import ReproError, SessionKilled, WireProtocolError
from repro.runtime.vm import VirtualMachine
from repro.telemetry.events import GcEvent
from repro.workloads.suite import build_suite
from repro.workloads.swapleak import SwapLeakConfig, run_swapleak

#: Heap budget for the ``swapleak`` pseudo-workload (not in the suite
#: table; mirrors the CLI default for its leak-shaped live set).
SWAPLEAK_HEAP_BYTES = 96 * 1024

#: Outbound frame kinds that may be shed under backpressure.  Everything
#: else (violations, results, lifecycle, errors) is critical.
SHEDDABLE_FRAMES = frozenset({"gc-event"})

#: Default bound on a session's outbound queue, in frames.
DEFAULT_QUEUE_FRAMES = 256


class FrameQueue:
    """Thread-safe bounded outbound queue with slow-consumer shedding.

    ``push`` is called from workload threads (inside GC pauses, even);
    ``drain`` from the event loop's writer task.  When the queue is full
    a sheddable frame is dropped and counted; a critical frame enqueues
    anyway (the bound is backpressure policy, not a correctness limit —
    critical frames are few and bounded by the workload itself).
    """

    def __init__(
        self,
        max_frames: int = DEFAULT_QUEUE_FRAMES,
        notify: Optional[Callable[[], None]] = None,
    ):
        self.max_frames = max_frames
        self.notify = notify
        self.dropped_frames = 0
        self.pushed_frames = 0
        self._frames: deque = deque()
        self._lock = threading.Lock()

    def push(self, frame: dict) -> bool:
        """Enqueue one frame; returns False if it was shed."""
        with self._lock:
            if (
                len(self._frames) >= self.max_frames
                and frame.get("type") in SHEDDABLE_FRAMES
            ):
                self.dropped_frames += 1
                return False
            self._frames.append((frame, time.perf_counter()))
            self.pushed_frames += 1
        if self.notify is not None:
            self.notify()
        return True

    def drain(self) -> list[tuple[dict, float]]:
        """Pop every queued ``(frame, enqueue_perf_counter)`` pair."""
        with self._lock:
            frames = list(self._frames)
            self._frames.clear()
        return frames

    def __len__(self) -> int:
        with self._lock:
            return len(self._frames)


def resolve_workload(
    name: str, asserted: bool = True, overrides: Optional[dict] = None
) -> tuple[int, Callable[[VirtualMachine], object]]:
    """Map a wire-protocol workload name to ``(heap_bytes, runner)``.

    Accepts every suite entry plus the ``swapleak`` pseudo-workload (the
    guaranteed-violation generator the load mix leans on).  ``overrides``
    tunes swapleak's knobs (``swaps``, ``array_size``, ``gc_every_swaps``).
    Unknown names raise :class:`WireProtocolError` — a client mistake,
    not a server fault.
    """
    overrides = overrides or {}
    if name == "swapleak":
        config = SwapLeakConfig(
            array_size=int(overrides.get("array_size", 32)),
            swaps=int(overrides.get("swaps", 64)),
            gc_every_swaps=int(overrides.get("gc_every_swaps", 8)),
            assert_dead_swapped=asserted,
        )
        return SWAPLEAK_HEAP_BYTES, lambda vm: run_swapleak(vm, config)
    suite = build_suite()
    entry = suite.get(name)
    if entry is None:
        known = ", ".join(sorted(set(suite) | {"swapleak"}))
        raise WireProtocolError(f"unknown workload {name!r} (known: {known})")
    runner = entry.run
    if asserted and entry.run_with_assertions is not None:
        runner = entry.run_with_assertions
    return entry.heap_bytes, runner


class TenantSession:
    """One tenant's admitted slice of the service."""

    def __init__(
        self,
        session_id: str,
        tenant: str,
        heap_bytes: int,
        collector: str = "marksweep",
        hardened: bool = True,
        paranoid: bool = False,
        queue_frames: int = DEFAULT_QUEUE_FRAMES,
        notify: Optional[Callable[[], None]] = None,
        aggregate: Optional[Callable[[str, object], None]] = None,
        tracing: bool = False,
        trace=None,
        request_span_id: Optional[str] = None,
    ):
        self.session_id = session_id
        self.tenant = tenant
        self.heap_bytes = heap_bytes
        #: Committed against the admission budget: heap plus the hardened
        #: OOM ladder's emergency headroom (max_heap_bytes = 2x heap).
        self.committed_bytes = heap_bytes * 2 if hardened else heap_bytes
        self.state = "admitted"
        self.outcome: Optional[str] = None
        self.error_detail: Optional[str] = None
        self.connection_dropped = False
        self.discarded_frames = 0
        self.violation_frames = 0
        self.gc_event_frames = 0
        #: Monotonic stamp for the next outbound frame.  Single producer
        #: (the workload thread owns all sends for a session), no lock.
        self.out_seq = 0
        #: Requester's TraceContext + the server-side request span this
        #: session's work re-parents under (None when tracing is off).
        self.trace = trace
        self.request_span_id = request_span_id
        self.request_lane: Optional[int] = None
        self.queue = FrameQueue(queue_frames, notify=notify)
        self._aggregate = aggregate
        self._pending_instances: list[tuple[str, int]] = []
        self._define_hooked = False
        self.vm = VirtualMachine(
            heap_bytes=heap_bytes,
            collector=collector,
            assertions=True,
            telemetry=True,
            hardened=hardened,
            paranoid=paranoid,
            max_heap_bytes=heap_bytes * 2 if hardened else None,
            tracing=tracing,
        )
        self.vm.telemetry.add_sink(_SessionSink(self))
        self.vm.engine.policy.add_handler(self._on_violation)
        # Attachment points for the fault injector's service-layer kinds.
        self.vm.service_hooks["session-kill"] = self._kill_hook
        self.vm.service_hooks["conn-drop"] = self._drop_connection_hook

    # -- streaming (called from the workload thread, inside the VM) ---------------------

    def _send(self, frame: dict) -> None:
        # Number the frame before any drop decision: a shed or discarded
        # frame must consume a seq so the client sees the gap.
        frame["seq"] = self.out_seq
        self.out_seq += 1
        if self.trace is not None:
            frame["trace_id"] = self.trace.trace_id
        if self.connection_dropped:
            self.discarded_frames += 1
            return
        self.queue.push(frame)

    def _on_violation(self, violation) -> None:
        """ReactionPolicy handler: stream the violation, change nothing.

        Returning ``None`` keeps the configured reaction, so a session
        with a streaming observer produces bit-identical GC/assertion
        counters to a direct VM run — the service's core invariant.
        """
        self.violation_frames += 1
        self._send({
            "type": "violation",
            "session": self.session_id,
            "kind": violation.kind.value,
            "message": violation.message,
            "class": violation.type_name,
            "site": violation.site,
            "gc_number": violation.gc_number,
        })
        if self._aggregate is not None:
            self._aggregate(self.tenant, ("violation", violation))
        return None

    def _observe_event(self, event) -> None:
        """Telemetry sink path: GC events become sheddable stream frames."""
        if isinstance(event, GcEvent):
            self.gc_event_frames += 1
            self._send({
                "type": "gc-event",
                "session": self.session_id,
                **event.as_dict(),
            })
        if self._aggregate is not None:
            self._aggregate(self.tenant, ("event", event))

    # -- fault hooks --------------------------------------------------------------------

    def _kill_hook(self) -> None:
        raise SessionKilled(
            f"session {self.session_id} (tenant {self.tenant!r}) killed by fault injection"
        )

    def _drop_connection_hook(self) -> str:
        self.drop_connection()
        return f"outbound stream severed for session {self.session_id}"

    def drop_connection(self) -> None:
        """Sever the outbound stream: the workload runs on, frames vanish."""
        self.connection_dropped = True

    # -- lifecycle ----------------------------------------------------------------------

    def register_assertion(self, spec: dict) -> None:
        """Wire-protocol assertion registration (pre-run, state=admitted).

        A tenant registers assertions *before* submitting the program
        that defines its classes, so an instances assertion naming a
        not-yet-defined class is held pending and armed the moment the
        class is defined — instance counts are recomputed from scratch
        at every GC, so arming at definition time is exact.
        """
        kind = spec.get("kind")
        if kind == "instances":
            cls = spec.get("class")
            limit = spec.get("limit")
            if not isinstance(cls, str) or not isinstance(limit, int):
                raise WireProtocolError(
                    "instances assertion needs a 'class' string and an integer 'limit'"
                )
            if cls in self.vm.classes:
                self.vm.assertions.assert_instances(cls, limit)
            else:
                self._pending_instances.append((cls, limit))
                self._hook_define_class()
        else:
            raise WireProtocolError(
                f"unknown wire assertion kind {kind!r} (supported: instances)"
            )

    def _hook_define_class(self) -> None:
        if self._define_hooked:
            return
        self._define_hooked = True
        original = self.vm.define_class

        def armed_define(*args, **kwargs):
            cls = original(*args, **kwargs)
            for pending in [p for p in self._pending_instances if p[0] == cls.name]:
                self.vm.assertions.assert_instances(cls, pending[1])
                self._pending_instances.remove(pending)
            return cls

        self.vm.define_class = armed_define

    def run(self, runner: Callable[[VirtualMachine], object]) -> dict:
        """Execute the tenant's workload to completion or typed failure.

        Runs synchronously (the server calls this on an executor thread).
        Returns the result frame; the session is left *draining* with its
        queue holding any undelivered frames.  Untyped exceptions
        propagate — those are server bugs, not tenant outcomes.
        """
        self.state = "running"
        started = time.perf_counter()
        try:
            runner(self.vm)
            self.vm.collector.sweep_all()
            self.outcome = "completed"
        except SessionKilled as exc:
            self.outcome = "killed"
            self.error_detail = str(exc)
        except ReproError as exc:
            self.outcome = f"typed:{type(exc).__name__}"
            self.error_detail = str(exc)
        self.state = "draining"
        frame = self.result_frame(wall_s=time.perf_counter() - started)
        self._send(frame)
        return frame

    def result_frame(self, wall_s: float = 0.0) -> dict:
        counters = self.vm.stats.snapshot()["counters"]
        return {
            "type": "result",
            "session": self.session_id,
            "tenant": self.tenant,
            "outcome": self.outcome,
            "error": self.error_detail,
            "wall_s": wall_s,
            "gc_seconds": self.vm.stats.gc_seconds,
            "counters": counters,
            "violations": self.vm.violation_lines(),
            "violation_frames": self.violation_frames,
            "gc_event_frames": self.gc_event_frames,
            "dropped_frames": self.queue.dropped_frames,
            "discarded_frames": self.discarded_frames,
        }

    def evict(self) -> None:
        """Terminal transition; the server releases the budget after this."""
        self.state = "evicted"
        if self.outcome is None:
            self.outcome = "evicted-before-run"


class _SessionSink:
    """Telemetry sink bridging one VM's event stream into its session."""

    def __init__(self, session: TenantSession):
        self.session = session

    def emit(self, event) -> None:
        self.session._observe_event(event)

    def close(self) -> None:
        pass
