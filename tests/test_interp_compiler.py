"""MiniJ bytecode-compiler unit tests."""

import pytest

from repro.errors import MiniJCompileError
from repro.heap.object_model import FieldKind
from repro.interp.ast_nodes import TypeRef
from repro.interp.bytecode import Op
from repro.interp.compiler import compile_program, field_kind_for
from repro.interp.parser import parse
from repro.runtime.vm import VirtualMachine


def compile_src(source):
    vm = VirtualMachine(heap_bytes=1 << 20)
    return compile_program(parse(source), vm), vm


def ops_of(function):
    return [instr.op for instr in function.code]


class TestFieldKinds:
    @pytest.mark.parametrize(
        "name,expected",
        [
            ("int", FieldKind.INT),
            ("bool", FieldKind.BOOL),
            ("str", FieldKind.STR),
            ("float", FieldKind.FLOAT),
            ("Node", FieldKind.REF),
        ],
    )
    def test_scalar_and_class_kinds(self, name, expected):
        assert field_kind_for(TypeRef(name)) is expected

    def test_arrays_are_refs(self):
        assert field_kind_for(TypeRef("int", 1)) is FieldKind.REF

    def test_void_rejected(self):
        with pytest.raises(MiniJCompileError):
            field_kind_for(TypeRef("void"))


class TestClassLoading:
    def test_classes_defined_in_vm(self):
        program, vm = compile_src(
            "class A { var x: int; } class B extends A { var y: B; } "
            "def main(): void { }"
        )
        a = vm.classes.get("A")
        b = vm.classes.get("B")
        assert b.superclass is a
        assert b.field("x").slot == 0
        assert b.field("y").kind is FieldKind.REF

    def test_forward_references_between_classes(self):
        program, vm = compile_src(
            "class A { var b: B; } class B { var a: A; } def main(): void { }"
        )
        assert vm.classes.get("A").field("b").kind is FieldKind.REF

    def test_subclass_defined_before_superclass(self):
        program, vm = compile_src(
            "class B extends A { } class A { var x: int; } def main(): void { }"
        )
        assert vm.classes.get("B").has_field("x")

    def test_method_table_and_supers(self):
        program, _vm = compile_src(
            """
            class A { def m(): int { return 1; } }
            class B extends A { }
            class C extends B { def m(): int { return 3; } }
            def main(): void { }
            """
        )
        assert program.resolve_method("B", "m").owner == "A"
        assert program.resolve_method("C", "m").owner == "C"
        assert program.resolve_method("A", "missing") is None


class TestCodeGeneration:
    def test_implicit_void_return_appended(self):
        program, _ = compile_src("def f(): void { }")
        assert ops_of(program.functions["f"]) == [Op.PUSH_NULL, Op.RETURN]

    def test_locals_get_slots(self):
        program, _ = compile_src(
            "def f(a: int, b: int): int { var c: int = a; return c; }"
        )
        fn = program.functions["f"]
        assert fn.n_locals == 3
        assert fn.local_names == ["a", "b", "c"]

    def test_methods_reserve_this_slot(self):
        program, _ = compile_src(
            "class C { def m(x: int): int { return x; } } def main(): void { }"
        )
        method = program.methods["C"]["m"]
        assert method.local_names[0] == "this"
        assert method.n_locals == 2

    def test_while_emits_backward_jump(self):
        program, _ = compile_src("def f(): void { while (true) { } }")
        code = program.functions["f"].code
        jumps = [i for i in code if i.op is Op.JUMP]
        assert jumps and jumps[0].a == 0  # back to the condition

    def test_if_else_jump_targets_in_range(self):
        program, _ = compile_src(
            "def f(x: bool): int { if (x) { return 1; } else { return 2; } }"
        )
        code = program.functions["f"].code
        for instr in code:
            if instr.op in (Op.JUMP, Op.JUMP_IF_FALSE):
                assert 0 <= instr.a <= len(code)

    def test_short_circuit_uses_dup(self):
        program, _ = compile_src("def f(a: bool, b: bool): bool { return a && b; }")
        assert Op.DUP in ops_of(program.functions["f"])

    def test_scalar_var_without_init_gets_default(self):
        program, _ = compile_src("def f(): int { var x: int; return x; }")
        code = program.functions["f"].code
        assert code[0].op is Op.PUSH_CONST
        assert code[0].a == 0

    def test_ref_var_without_init_gets_null(self):
        program, _ = compile_src(
            "class C { } def f(): C { var x: C; return x; }"
        )
        assert program.functions["f"].code[0].op is Op.PUSH_NULL

    def test_disassemble_readable(self):
        program, _ = compile_src("def f(): int { return 41 + 1; }")
        text = program.functions["f"].disassemble()
        assert "function f" in text
        assert "push_const" in text
        assert "binary" in text
