"""``python -m repro top`` — a live terminal view of a running VM.

The workload runs in a daemon thread; the main thread repaints a summary
frame every ``interval`` seconds from the VM's telemetry hub and span
recorder.  Reads are lock-free on purpose: list slicing is atomic under the
GIL, the span-aggregation replay tolerates an unclosed tail (a frame drawn
mid-pause simply omits the open spans), and histogram counters are only
ever incremented — a torn read is at worst one sample stale.

Each frame shows the operator's first four questions about a GC-heavy
process: how long are pauses (p50/p90/p99), is sweep debt building up, who
is growing (census slopes), and where inside the pause time goes (hottest
spans).  ``--frames``/``--interval`` bound the run for CI and tests;
without a tty the frame separator degrades from ANSI home+clear to a plain
divider line so output stays readable in a pipe.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional, TextIO, TYPE_CHECKING

from repro.tracing.report import aggregate_spans

if TYPE_CHECKING:
    from repro.runtime.vm import VirtualMachine

#: ANSI cursor-home + clear-screen, the tty frame separator.
_ANSI_CLEAR = "\x1b[H\x1b[2J"

#: Rows shown in the hottest-phases and census panes.
TOP_SPANS = 6
TOP_CLASSES = 5


def render_frame(vm: "VirtualMachine", frame_no: int, elapsed: float) -> str:
    """One repaint: a pure read of telemetry + span state (no side effects)."""
    lines: list[str] = []
    stats = vm.stats
    lines.append(
        f"repro top — {vm.collector.describe()}  "
        f"up {elapsed:6.1f}s  frame {frame_no}"
    )
    live = len(vm.heap)
    lines.append(
        f"heap: {vm.collector.bytes_in_use()}/{vm.collector.heap_bytes} bytes, "
        f"{live} objects live | collections: {stats.collections} "
        f"({stats.full_collections} full, {stats.minor_collections} minor)"
    )

    telemetry = vm.telemetry
    if telemetry is not None and telemetry.pause_hist.count:
        pauses = telemetry.pause_hist
        lines.append(
            f"pauses: p50={pauses.percentile(50) * 1e3:.2f}ms "
            f"p90={pauses.percentile(90) * 1e3:.2f}ms "
            f"p99={pauses.percentile(99) * 1e3:.2f}ms "
            f"max={pauses.max_value * 1e3:.2f}ms "
            f"({pauses.count} collections)"
        )
    else:
        lines.append("pauses: (no collections yet)")

    debt = vm.collector.sweep_debt()
    debt_line = f"sweep debt: {debt} chunk(s) outstanding"
    if telemetry is not None:
        slices = getattr(telemetry, "lazy_slice_hist", None)
        if slices is not None and slices.count:
            debt_line += (
                f" | slice latency p50={slices.percentile(50) * 1e6:.0f}us "
                f"p99={slices.percentile(99) * 1e6:.0f}us "
                f"({slices.count} slices)"
            )
    lines.append(debt_line)

    tracer = vm.span_tracer
    if tracer is not None:
        aggregates = aggregate_spans(tracer.snapshot_events())
        if aggregates:
            lines.append(f"hottest phases (top {TOP_SPANS} by total time):")
            ranked = sorted(
                aggregates.items(), key=lambda kv: kv[1]["total_s"], reverse=True
            )
            for name, row in ranked[:TOP_SPANS]:
                mean_us = row["total_s"] / row["count"] * 1e6
                lines.append(
                    f"  {name:<18} {row['count']:>6}x  "
                    f"total {row['total_s'] * 1e3:>8.2f}ms  "
                    f"self {row['self_s'] * 1e3:>8.2f}ms  "
                    f"mean {mean_us:>7.1f}us"
                )

    if telemetry is not None and telemetry.census.samples >= 2:
        slopes = telemetry.census.slopes()
        growing = sorted(
            ((name, slope) for name, slope in slopes.items() if slope > 0),
            key=lambda kv: kv[1],
            reverse=True,
        )
        if growing:
            lines.append(f"census slopes (top {TOP_CLASSES} growing, bytes/GC):")
            for name, slope in growing[:TOP_CLASSES]:
                lines.append(f"  {name:<24} {slope:>+12.1f}")

    if vm.engine is not None and len(vm.engine.log):
        lines.append(f"assertion violations: {len(vm.engine.log)} (see report)")
    return "\n".join(lines)


def run_top(
    vm: "VirtualMachine",
    runner: Callable[["VirtualMachine"], object],
    interval: float = 1.0,
    frames: Optional[int] = None,
    stream: Optional[TextIO] = None,
    ansi: Optional[bool] = None,
) -> int:
    """Drive ``runner(vm)`` in a daemon thread while repainting frames.

    Returns 0, or 1 when the workload thread died on an exception (the
    traceback message is printed in the final frame).  Stops after
    ``frames`` repaints even if the workload is still running — the CI
    smoke mode; ``frames=None`` runs until the workload finishes and then
    draws one final settled frame.
    """
    import sys

    if stream is None:
        stream = sys.stdout
    if ansi is None:
        ansi = hasattr(stream, "isatty") and stream.isatty()
    error: list[BaseException] = []

    def _drive() -> None:
        try:
            runner(vm)
        except BaseException as exc:  # surfaced in the final frame
            error.append(exc)

    worker = threading.Thread(target=_drive, name="repro-top-workload", daemon=True)
    start = time.perf_counter()
    worker.start()
    frame_no = 0
    while True:
        frame_no += 1
        frame = render_frame(vm, frame_no, time.perf_counter() - start)
        if ansi:
            stream.write(_ANSI_CLEAR)
        elif frame_no > 1:
            stream.write("\n" + "-" * 72 + "\n")
        stream.write(frame)
        stream.write("\n")
        stream.flush()
        if frames is not None and frame_no >= frames:
            break
        if not worker.is_alive():
            break
        worker.join(timeout=interval)
        if not worker.is_alive() and frames is None:
            # One more pass so the final frame reflects the settled state.
            continue
    if worker.is_alive():
        stream.write(f"(workload still running after {frame_no} frames; detaching)\n")
    if error:
        stream.write(f"workload failed: {error[0]!r}\n")
        return 1
    return 0
