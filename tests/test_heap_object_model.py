"""Unit tests for class descriptors, field layout, and heap objects."""

import pytest

from repro.errors import LayoutError
from repro.heap import header as hdr
from repro.heap.layout import HEADER_BYTES, NULL, WORD_BYTES
from repro.heap.object_model import ClassDescriptor, FieldKind, HeapObject


def make_class(name="C", fields=(), superclass=None, class_id=0, **kw):
    return ClassDescriptor(class_id, name, fields, superclass, **kw)


class TestFieldKind:
    def test_ref_is_reference(self):
        assert FieldKind.REF.is_reference
        assert not FieldKind.INT.is_reference

    @pytest.mark.parametrize(
        "kind,expected",
        [
            (FieldKind.REF, NULL),
            (FieldKind.INT, 0),
            (FieldKind.FLOAT, 0.0),
            (FieldKind.BOOL, False),
            (FieldKind.STR, ""),
        ],
    )
    def test_defaults(self, kind, expected):
        assert kind.default() == expected


class TestClassDescriptor:
    def test_field_slots_in_declaration_order(self):
        cls = make_class(fields=[("a", FieldKind.INT), ("b", FieldKind.REF)])
        assert cls.field("a").slot == 0
        assert cls.field("b").slot == 1

    def test_field_offsets_after_header(self):
        cls = make_class(fields=[("a", FieldKind.INT), ("b", FieldKind.REF)])
        assert cls.field("a").offset == HEADER_BYTES
        assert cls.field("b").offset == HEADER_BYTES + WORD_BYTES

    def test_ref_slots_only_references(self):
        cls = make_class(
            fields=[("a", FieldKind.INT), ("b", FieldKind.REF), ("c", FieldKind.REF)]
        )
        assert cls.ref_slots == (1, 2)

    def test_instance_size_includes_header(self):
        cls = make_class(fields=[("a", FieldKind.INT)])
        assert cls.instance_size == HEADER_BYTES + WORD_BYTES

    def test_inherited_fields_come_first(self):
        parent = make_class("P", [("p", FieldKind.INT)])
        child = make_class("C", [("c", FieldKind.REF)], superclass=parent, class_id=1)
        assert child.field("p").slot == 0
        assert child.field("c").slot == 1
        assert child.ref_slots == (1,)

    def test_redeclared_field_rejected(self):
        parent = make_class("P", [("x", FieldKind.INT)])
        with pytest.raises(LayoutError):
            make_class("C", [("x", FieldKind.REF)], superclass=parent, class_id=1)

    def test_unknown_field_raises(self):
        cls = make_class()
        with pytest.raises(LayoutError):
            cls.field("nope")

    def test_is_subclass_of(self):
        parent = make_class("P")
        child = make_class("C", superclass=parent, class_id=1)
        assert child.is_subclass_of(parent)
        assert child.is_subclass_of(child)
        assert not parent.is_subclass_of(child)

    def test_array_class_requires_element_kind(self):
        with pytest.raises(LayoutError):
            make_class("A[]", is_array=True)

    def test_non_array_rejects_element_kind(self):
        with pytest.raises(LayoutError):
            make_class("C", element_kind=FieldKind.INT)

    def test_array_size_scales_with_length(self):
        arr = make_class("O[]", is_array=True, element_kind=FieldKind.REF)
        assert arr.array_size(0) < arr.array_size(4)
        assert arr.array_size(4) - arr.array_size(3) == WORD_BYTES

    def test_instance_tracking_words_default_unset(self):
        cls = make_class()
        assert cls.instance_limit is None
        assert cls.instance_count == 0


class TestHeapObject:
    def test_scalar_fields_default_initialized(self):
        cls = make_class(fields=[("n", FieldKind.INT), ("s", FieldKind.STR)])
        obj = HeapObject(0x1000, cls)
        assert obj.slots == [0, ""]

    def test_ref_fields_default_null(self):
        cls = make_class(fields=[("r", FieldKind.REF)])
        obj = HeapObject(0x1000, cls)
        assert obj.slots == [NULL]

    def test_array_elements_default(self):
        arr = make_class("int[]", is_array=True, element_kind=FieldKind.INT)
        obj = HeapObject(0x1000, arr, length=3)
        assert obj.slots == [0, 0, 0]
        assert obj.length == 3

    def test_header_bit_helpers(self):
        cls = make_class()
        obj = HeapObject(0x1000, cls)
        assert not obj.is_marked
        obj.set(hdr.MARK_BIT)
        assert obj.is_marked
        obj.clear(hdr.MARK_BIT)
        assert not obj.is_marked

    def test_reference_slots_iterates_refs_only(self):
        cls = make_class(fields=[("n", FieldKind.INT), ("a", FieldKind.REF), ("b", FieldKind.REF)])
        obj = HeapObject(0x1000, cls)
        obj.slots[1] = 0x2000
        assert list(obj.reference_slots()) == [0x2000, NULL]

    def test_reference_slots_for_ref_array(self):
        arr = make_class("O[]", is_array=True, element_kind=FieldKind.REF)
        obj = HeapObject(0x1000, arr, length=2)
        obj.slots[0] = 0x3000
        assert list(obj.reference_slots()) == [0x3000, NULL]

    def test_scalar_array_has_no_reference_slots(self):
        arr = make_class("int[]", is_array=True, element_kind=FieldKind.INT)
        obj = HeapObject(0x1000, arr, length=5)
        assert list(obj.reference_slots()) == []
        assert list(obj.reference_slot_indices()) == []

    def test_size_bytes_for_scalar_object(self):
        cls = make_class(fields=[("a", FieldKind.INT)])
        obj = HeapObject(0x1000, cls)
        assert obj.size_bytes == cls.instance_size
