"""Ablation abl-snapshot: the cost of piggybacked heap-snapshot capture.

The snapshot subsystem's acceptance bar: capturing on *every* full
collection (``SnapshotPolicy(every_n_gcs=1)``, the worst case) must add no
more than ~15% to GC time, because the capture drain records one bare
address per live object (non-moving collectors) or one frozen row (copying
collectors) as a by-product of marking, and serialization happens after
the pause timer closes.  With no policy installed the capture machinery
must be entirely inert — identical work counters, no sink anywhere a hot
path could reach.
"""

from __future__ import annotations

import shutil
import tempfile

from benchmarks.conftest import trials
from repro.bench.methodology import confidence_interval_90, mean
from repro.runtime.vm import VirtualMachine
from repro.snapshot import SnapshotPolicy
from repro.workloads.suite import HEAP_BUDGETS
from repro.workloads.synthetic import PROFILES, run_synthetic

PROFILE = "bloat"  # the GC-heaviest suite member, as in abl-path

#: Wall-clock bound for the capture drain, with headroom over the ~15%
#: acceptance target for interpreter jitter on loaded CI machines.  The
#: counter-identity assertion is the hard gate.
MAX_GC_TIME_RATIO = 1.5


def _run(capture: bool):
    vm = VirtualMachine(
        heap_bytes=HEAP_BUDGETS[PROFILE], assertions=False, telemetry=False
    )
    tmpdir = None
    policy = None
    if capture:
        tmpdir = tempfile.mkdtemp(prefix="repro-abl-snapshot-")
        policy = SnapshotPolicy(tmpdir, every_n_gcs=1).attach(vm)
    try:
        run_synthetic(vm, PROFILES[PROFILE])
        vm.collector.sweep_all()
        snapshots = len(policy.captured) if policy is not None else 0
        return vm.stats.gc_seconds, vm.stats.snapshot(), snapshots
    finally:
        if tmpdir is not None:
            shutil.rmtree(tmpdir, ignore_errors=True)


def test_snapshot_capture_overhead(once, figure_report):
    def run():
        captured = [_run(True) for _ in range(trials())]
        plain = [_run(False) for _ in range(trials())]
        return captured, plain

    captured, plain = once(run)
    on_times = [t for t, _s, _n in captured]
    off_times = [t for t, _s, _n in plain]
    ratio = mean(on_times) / mean(off_times)
    figure_report.append(
        "Ablation abl-snapshot (every-GC capture on/off, GC time on 'bloat'):\n"
        f"  off: {mean(off_times) * 1e3:.1f} ms ±{confidence_interval_90(off_times) * 1e3:.1f}\n"
        f"  on:  {mean(on_times) * 1e3:.1f} ms ±{confidence_interval_90(on_times) * 1e3:.1f}\n"
        f"  ratio: {ratio:.3f} ({captured[0][2]} snapshots per run; "
        "target <=1.15, asserted <=1.5 for CI noise)"
    )
    assert ratio < MAX_GC_TIME_RATIO

    # Capture observes marking without changing it: every deterministic
    # work counter is identical whether the policy is installed or not.
    assert captured[0][1]["counters"] == plain[0][1]["counters"]

    # And the capture leg actually piggybacked on every full collection.
    assert captured[0][2] == captured[0][1]["counters"]["full_collections"]


def test_no_policy_is_inert(once):
    """Without a policy the capture machinery is unreachable from hot paths."""

    def run():
        vm = VirtualMachine(
            heap_bytes=HEAP_BUDGETS[PROFILE], assertions=False, telemetry=False
        )
        run_synthetic(vm, PROFILES[PROFILE])
        return vm

    vm = once(run)
    assert vm.snapshot_policy is None
    assert vm.collector.snapshot_policy is None
    assert vm.collector._snapshot_pending is None
