"""The tracing engine: transitive marking with low-bit path tracking.

This implements the paper's §2.7 worklist algorithm.  The gray-object
worklist holds integer heap addresses; because objects are word aligned the
low-order bit of each entry is free, and the tracer uses it to keep an
object *on* the worklist while its children are being traced:

    "We pop a reference from the worklist, set its low order bit and push it
    back onto the worklist; then we continue to scan the object normally.
    [...] at any given time during tracing, the subset of the worklist whose
    references have their low bit set define the complete path from the root
    to the current object."

:meth:`Tracer.current_path` reconstructs that path on demand, which is what
gives violation reports their Figure-1 root-to-object paths for free.

The tracer calls two assertion hooks on an attached engine:

* ``on_first_encounter(obj, tracer, parent)`` — the object was just marked
  (dead-bit check, instance counting, unowned-ownee detection).
* ``on_repeat_encounter(obj, tracer, parent)`` — the object's mark bit was
  already set, i.e. a second incoming reference (unshared-bit check).

With ``engine=None`` and ``track_paths=False`` the tracer degenerates to the
plain mark loop of an unmodified collector — that is the paper's *Base*
configuration, against which the *Infrastructure* overhead is measured.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.heap import header as hdr
from repro.heap.heap import ObjectHeap
from repro.heap.layout import ADDRESS_TAG_BIT, NULL
from repro.heap.object_model import HeapObject
from repro.gc.stats import GcStats


class Tracer:
    """One tracing episode (reused across the collection's mark phase)."""

    __slots__ = ("heap", "stats", "engine", "track_paths", "_stack", "_root_descs")

    def __init__(
        self,
        heap: ObjectHeap,
        stats: GcStats,
        engine=None,
        track_paths: bool = True,
    ):
        self.heap = heap
        self.stats = stats
        self.engine = engine
        self.track_paths = track_paths
        self._stack: list[int] = []
        self._root_descs: dict[int, str] = {}

    # -- driving the trace -------------------------------------------------------

    def trace(self, roots: Iterable[tuple[str, int]]) -> int:
        """Mark everything reachable from ``roots``; returns objects marked."""
        before = self.stats.objects_traced
        for description, address in roots:
            if address == NULL:
                continue
            self._reach(self.heap.get(address), parent=None, via_root=description)
        self.drain()
        return self.stats.objects_traced - before

    def drain(self) -> None:
        """Process the worklist to empty."""
        if self.track_paths:
            self._drain_with_paths()
        else:
            self._drain_plain()

    def _drain_with_paths(self) -> None:
        stack = self._stack
        heap = self.heap
        stats = self.stats
        while stack:
            entry = stack.pop()
            if entry & ADDRESS_TAG_BIT:
                # Low bit set: all objects reachable from it are done.
                continue
            stack.append(entry | ADDRESS_TAG_BIT)
            stats.path_entries_tagged += 1
            self._scan(heap.get(entry))

    def _drain_plain(self) -> None:
        stack = self._stack
        heap = self.heap
        while stack:
            self._scan(heap.get(stack.pop()))

    def _scan(self, obj: HeapObject) -> None:
        """Visit every outgoing reference of ``obj``."""
        heap = self.heap
        stats = self.stats
        for child in obj.reference_slots():
            if child == NULL:
                continue
            stats.edges_traced += 1
            self._reach(heap.get(child), parent=obj)

    def _reach(
        self,
        obj: HeapObject,
        parent: Optional[HeapObject],
        via_root: Optional[str] = None,
    ) -> None:
        engine = self.engine
        if obj.status & hdr.MARK_BIT:
            if engine is not None:
                engine.on_repeat_encounter(obj, self, parent)
            return
        obj.status |= hdr.MARK_BIT
        self.stats.objects_traced += 1
        if via_root is not None and self.track_paths:
            self._root_descs.setdefault(obj.address, via_root)
        if engine is not None:
            engine.on_first_encounter(obj, self, parent)
        self._stack.append(obj.address)

    # -- path reconstruction -------------------------------------------------------

    def current_path(self, tip: Optional[HeapObject] = None):
        """Reconstruct the root-to-current-object path from the worklist.

        Returns ``(root_description, [HeapObject, ...])`` where the list runs
        root-first and ends at ``tip`` (if given).  Returns ``(None, [tip])``
        when path tracking is disabled.
        """
        if not self.track_paths:
            return None, ([tip] if tip is not None else [])
        chain: list[HeapObject] = []
        heap = self.heap
        for entry in self._stack:
            if entry & ADDRESS_TAG_BIT:
                chain.append(heap.get(entry & ~ADDRESS_TAG_BIT))
        if tip is not None and (not chain or chain[-1] is not tip):
            chain.append(tip)
        root_desc = self._root_descs.get(chain[0].address) if chain else None
        return root_desc, chain

    def root_description(self, obj: HeapObject) -> Optional[str]:
        return self._root_descs.get(obj.address)
