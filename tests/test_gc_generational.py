"""Generational collector: nursery, write barrier, promotion, assertion latency."""

import pytest

from repro.heap.object_model import FieldKind
from repro.runtime.vm import VirtualMachine
from tests.conftest import build_chain, make_node_class


@pytest.fixture
def gen_vm():
    return VirtualMachine(heap_bytes=1 << 20, collector="generational")


@pytest.fixture
def gen_node(gen_vm):
    return make_node_class(gen_vm)


class TestMinorCollection:
    def test_minor_gc_reclaims_nursery_garbage(self, gen_vm, gen_node):
        with gen_vm.scope():
            gen_vm.new(gen_node)
        gen_vm.minor_gc()
        assert gen_vm.heap.stats.objects_live == 0
        assert gen_vm.stats.minor_collections == 1
        assert gen_vm.stats.full_collections == 0

    def test_minor_gc_promotes_rooted_survivors(self, gen_vm, gen_node):
        nodes = build_chain(gen_vm, gen_node, 3)
        gen_vm.minor_gc()
        assert all(n.is_live for n in nodes)
        assert gen_vm.stats.objects_promoted == 3
        collector = gen_vm.collector
        for n in nodes:
            assert collector.mature.contains(n.obj.address)
            assert not collector.nursery.contains(n.obj.address)

    def test_promotion_rewrites_references(self, gen_vm, gen_node):
        nodes = build_chain(gen_vm, gen_node, 5)
        gen_vm.minor_gc()
        current = nodes[0]
        values = [current["value"]]
        while current["next"] is not None:
            current = current["next"]
            values.append(current["value"])
        assert values == [0, 1, 2, 3, 4]

    def test_write_barrier_keeps_nursery_object_alive(self, gen_vm, gen_node):
        # Promote a holder into the mature space first.
        with gen_vm.scope():
            holder = gen_vm.new(gen_node, value=100)
            gen_vm.statics.set_ref("holder", holder.address)
        gen_vm.minor_gc()
        assert gen_vm.collector.mature.contains(holder.obj.address)
        # Store a nursery object into the mature holder, then drop all roots
        # to it: only the remembered set keeps it alive at the next minor GC.
        with gen_vm.scope():
            young = gen_vm.new(gen_node, value=7)
            holder["next"] = young
        gen_vm.minor_gc()
        assert young.is_live
        assert holder["next"]["value"] == 7

    def test_without_barrier_scan_object_would_die(self, gen_vm, gen_node):
        """Control for the barrier test: an unreferenced nursery object dies."""
        with gen_vm.scope():
            gen_vm.new(gen_node, value=7)
        before = gen_vm.heap.stats.objects_freed
        gen_vm.minor_gc()
        assert gen_vm.heap.stats.objects_freed == before + 1

    def test_nursery_full_triggers_minor_not_full(self):
        vm = VirtualMachine(heap_bytes=256 << 10, collector="generational")
        cls = make_node_class(vm)
        for _ in range(4000):
            with vm.scope():
                vm.new(cls)
        assert vm.stats.minor_collections > 0
        assert vm.stats.full_collections == 0

    def test_large_objects_allocate_directly_mature(self, gen_vm):
        threshold = gen_vm.collector._large_threshold
        big_length = threshold // 8 + 16  # comfortably past the threshold
        with gen_vm.scope():
            big = gen_vm.new_array(FieldKind.INT, big_length)
            assert gen_vm.collector.mature.contains(big.obj.address)
        with gen_vm.scope():
            small = gen_vm.new_array(FieldKind.INT, 4)
            assert gen_vm.collector.nursery.contains(small.obj.address)


class TestFullCollection:
    def test_full_gc_empties_nursery(self, gen_vm, gen_node):
        nodes = build_chain(gen_vm, gen_node, 4)
        gen_vm.gc()
        assert gen_vm.collector.nursery.bytes_in_use == 0
        assert all(n.is_live for n in nodes)

    def test_full_gc_reclaims_mature_garbage(self, gen_vm, gen_node):
        nodes = build_chain(gen_vm, gen_node, 4)
        gen_vm.minor_gc()  # promote
        gen_vm.statics.drop_ref("head")
        gen_vm.gc()
        assert all(not n.is_live for n in nodes)


class TestAssertionLatency:
    """§2.2: 'A generational collector ... performs full-heap collections
    infrequently, allowing some assertions to go unchecked for long periods
    of time.'"""

    def test_minor_gc_does_not_check_assertions(self, gen_vm, gen_node):
        nodes = build_chain(gen_vm, gen_node, 3)
        gen_vm.assertions.assert_dead(nodes[0], site="latency-test")
        gen_vm.minor_gc()
        # Still reachable, but minor GCs check nothing.
        assert len(gen_vm.engine.log) == 0

    def test_full_gc_detects_what_minor_missed(self, gen_vm, gen_node):
        nodes = build_chain(gen_vm, gen_node, 3)
        gen_vm.assertions.assert_dead(nodes[0], site="latency-test")
        gen_vm.minor_gc()
        gen_vm.gc()
        assert len(gen_vm.engine.log) == 1

    def test_minor_gc_still_purges_metadata(self, gen_vm, gen_node):
        with gen_vm.scope():
            doomed = gen_vm.new(gen_node)
            gen_vm.assertions.assert_dead(doomed, site="purge-test")
        gen_vm.minor_gc()
        # The object died as asserted; its registry entry must be gone.
        assert gen_vm.assertions.pending_dead() == 0
        assert gen_vm.engine.registry.dead_satisfied == 1

    def test_dead_bit_follows_promotion(self, gen_vm, gen_node):
        nodes = build_chain(gen_vm, gen_node, 2)
        gen_vm.assertions.assert_dead(nodes[1], site="promo-test")
        gen_vm.minor_gc()  # promotes; registry keys must be forwarded
        gen_vm.gc()
        assert len(gen_vm.engine.log) == 1
        violation = gen_vm.engine.log.violations[0]
        assert violation.site == "promo-test"
