"""pseudojbb: the fixed-workload SPEC JBB2000 driver.

Reproduces the transaction loop the paper instruments, with every bug from
§3.2.1 individually injectable:

* ``leak_order_table`` — Delivery does not remove completed Orders from the
  orderTable B-tree (the Jump & McKinley leak).
* ``leak_last_order`` — destroy() does not clear ``Customer.lastOrder``.
* ``drag_old_company`` — the previous iteration's Company stays referenced
  by the ``oldCompany`` local for the whole iteration (memory drag, not a
  leak).

And every assertion placement from §3.1.1/§3.2.1:

* ``assert_dead_orders`` — assert-dead on each Order at the end of
  Delivery's processing of it.
* ``assert_ownedby_orders`` — in ``District.addOrder``: each Order is owned
  by its district's orderTable.
* ``assert_instances_company`` — at most one Company alive at a time.
* ``region_payments`` — bracket Payment transactions (allocation-neutral
  servicing code) with start-region / assert-alldead, the §2.3.2 server
  idiom.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.runtime.vm import VirtualMachine
from repro.workloads.jbb import entities
from repro.workloads.jbb.entities import (
    STATUS_DESTROYED,
    build_company,
    destroy_order,
    districts_of,
    new_order,
    order_table_of,
    process_order,
)


@dataclass
class JbbConfig:
    """Workload size and bug/assertion switches."""

    warehouses: int = 1
    districts_per_warehouse: int = 2
    customers_per_district: int = 12
    iterations: int = 2
    transactions_per_iteration: int = 300
    orderlines_per_order: int = 4
    delivery_batch: int = 6
    seed: int = 1234
    btree_degree: int = 4

    # Bugs (paper defaults: all present in the original benchmark).
    leak_order_table: bool = False
    leak_last_order: bool = False
    drag_old_company: bool = False

    # Assertion placements.
    assert_dead_orders: bool = False
    assert_ownedby_orders: bool = False
    assert_instances_company: bool = False
    region_payments: bool = False

    # Transaction mix (weights; JBB is NewOrder-heavy).
    mix: dict = field(
        default_factory=lambda: {"new_order": 10, "payment": 10, "delivery": 3}
    )

    #: Force one full GC at each iteration boundary (while the Company is
    #: still rooted), giving deterministic assertion-checking points for
    #: the case studies.  Benchmarks instead rely on allocation-triggered
    #: collections, like the paper.
    gc_per_iteration: bool = False

    @classmethod
    def paper_scale(cls) -> "JbbConfig":
        """A configuration sized so per-GC assertion volumes approach §3.1.2
        (hundreds of live ownee Orders per GC, tens of thousands of
        assert-ownedby calls over a run)."""
        return cls(
            warehouses=2,
            districts_per_warehouse=3,
            customers_per_district=30,
            iterations=4,
            transactions_per_iteration=3000,
            delivery_batch=8,
        )


@dataclass
class JbbResult:
    transactions: int = 0
    new_orders: int = 0
    payments: int = 0
    deliveries: int = 0
    orders_destroyed: int = 0
    iterations: int = 0
    violations: int = 0


class PseudoJbb:
    """One pseudojbb run against a VM."""

    def __init__(self, vm: VirtualMachine, config: JbbConfig):
        self.vm = vm
        self.config = config
        self.rng = random.Random(config.seed)
        self.result = JbbResult()
        entities.define_jbb_classes(vm)
        if config.assert_instances_company and vm.assertions is not None:
            vm.assertions.assert_instances(entities.COMPANY, 1)

    # -- transactions -----------------------------------------------------------------

    def _pick_district(self, company) -> object:
        districts = districts_of(company)
        return self.rng.choice(districts)

    def _pick_customer(self, district) -> object:
        customers = district["customers"]
        return customers[self.rng.randrange(len(customers))]

    def do_new_order(self, company) -> None:
        """NewOrderTransaction: create an Order, add it to the orderTable."""
        vm = self.vm
        district = self._pick_district(company)
        customer = self._pick_customer(district)
        order = new_order(vm, district, customer, self.config.orderlines_per_order)
        table = order_table_of(district)
        table.insert(order["id"], order)
        # "we instrumented the District.addOrder() method and asserted that
        # each Order added is owned by its orderTable" (§3.2.1).
        if self.config.assert_ownedby_orders and vm.assertions is not None:
            vm.assertions.assert_ownedby(
                table.handle, order, site="District.addOrder"
            )
        customer["lastOrder"] = order
        self.result.new_orders += 1

    def do_payment(self, company) -> None:
        """PaymentTransaction: allocation-neutral servicing code."""
        vm = self.vm
        assertions = vm.assertions
        use_region = self.config.region_payments and assertions is not None
        if use_region:
            assertions.start_region(vm.current_thread, label="payment")
        district = self._pick_district(company)
        customer = self._pick_customer(district)
        # Temporary history records: all dead once the payment completes.
        amount = float(self.rng.randrange(1, 500))
        with vm.scope("payment-temporaries"):
            history = vm.new_array(vm.classes.get(entities.ORDERLINE), 2)
            for i in range(2):
                history[i] = vm.new(
                    entities.ORDERLINE, item=i, qty=1, amount=amount / 2.0
                )
        customer["balance"] = customer["balance"] + amount
        if use_region:
            assertions.assert_alldead(vm.current_thread, site="payment region")
        self.result.payments += 1

    def do_delivery(self, company) -> None:
        """DeliveryTransaction: process and destroy the oldest orders.

        The paper's assert-dead placement: "we placed an assert-dead
        assertion for the Order object at the end of
        DeliveryTransaction.process()."
        """
        vm = self.vm
        district = self._pick_district(company)
        table = order_table_of(district)
        for order_id in table.first_keys(self.config.delivery_batch):
            order = table.get(order_id)
            if order is None or order["status"] == STATUS_DESTROYED:
                # Leaked table entries may hold already-destroyed orders.
                if not self.config.leak_order_table:
                    table.remove(order_id)
                continue
            process_order(order)
            if not self.config.leak_order_table:
                table.remove(order_id)
            destroy_order(order, clear_last_order=not self.config.leak_last_order)
            if self.config.assert_dead_orders and vm.assertions is not None:
                vm.assertions.assert_dead(
                    order, site="DeliveryTransaction.process() end"
                )
            self.result.orders_destroyed += 1
        self.result.deliveries += 1

    # -- main loop -----------------------------------------------------------------------

    def run(self) -> JbbResult:
        vm = self.vm
        config = self.config
        frame = vm.current_thread.push_frame("pseudojbb.main")
        try:
            choices = [name for name, w in config.mix.items() for _ in range(w)]
            for _iteration in range(config.iterations):
                with vm.scope("company-construction"):
                    company = build_company(
                        vm,
                        config.warehouses,
                        config.districts_per_warehouse,
                        config.customers_per_district,
                        btree_degree=config.btree_degree,
                    )
                    frame.set_ref("company", company.address)
                for _tx in range(config.transactions_per_iteration):
                    kind = self.rng.choice(choices)
                    if kind == "new_order":
                        self.do_new_order(company)
                    elif kind == "payment":
                        self.do_payment(company)
                    else:
                        self.do_delivery(company)
                    self.result.transactions += 1
                if config.gc_per_iteration:
                    vm.gc(reason="pseudojbb iteration boundary")
                # End of iteration: destroy the Company (factory pattern).
                company["destroyed"] = True
                if config.assert_dead_orders and vm.assertions is not None:
                    vm.assertions.assert_dead(company, site="Company.destroy()")
                if config.drag_old_company:
                    # The §3.2.1 drag: previous Company stays in a visible
                    # local for the whole next iteration.
                    frame.set_ref("oldCompany", company.address)
                else:
                    frame.clear_ref("oldCompany")
                frame.clear_ref("company")
                self.result.iterations += 1
            if vm.engine is not None:
                self.result.violations = len(vm.engine.log)
            return self.result
        finally:
            vm.current_thread.pop_frame()


def run_pseudojbb(vm: VirtualMachine, config: JbbConfig | None = None) -> JbbResult:
    """Run pseudojbb on ``vm`` and return its result counters."""
    return PseudoJbb(vm, config or JbbConfig()).run()
