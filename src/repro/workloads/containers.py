"""Heap-backed container library shared by the benchmark workloads.

These are real data structures allocated *in the simulated heap* (every
node, bucket array, and element reference is a traced heap object), so the
collector — and therefore the assertion machinery — sees exactly the object
graphs a Java program would build.  The containers mirror the ones the
paper's benchmarks lean on: ``java.util.Vector`` (spec ``_209_db`` stores
``Entry`` objects in one), a chained hash table (lusearch's term
dictionary), and an int vector for posting lists.

Each container class interns its heap classes per VM on first use.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.errors import RuntimeFault
from repro.heap.object_model import FieldKind
from repro.runtime.handles import Handle
from repro.runtime.vm import VirtualMachine

#: Default initial capacity for growable containers.
DEFAULT_CAPACITY = 8


def _ensure_class(vm: VirtualMachine, name: str, fields) -> None:
    if vm.classes.maybe(name) is None:
        vm.define_class(name, fields)


class Vector:
    """A growable reference vector (``java.util.Vector`` analog).

    Heap shape: one ``Vector`` object with a ``data`` reference to an
    ``Object[]`` backing array and an ``int`` size field.
    """

    CLASS = "Vector"

    def __init__(self, vm: VirtualMachine, handle: Handle):
        self.vm = vm
        self.handle = handle

    @classmethod
    def new(cls, vm: VirtualMachine, capacity: int = DEFAULT_CAPACITY) -> "Vector":
        _ensure_class(vm, cls.CLASS, [("data", FieldKind.REF), ("size", FieldKind.INT)])
        with vm.scope("Vector.new"):
            handle = vm.new(cls.CLASS)
            backing = vm.new_array(vm.classes.object_class, max(1, capacity))
            handle["data"] = backing
            handle["size"] = 0
        return cls(vm, handle)

    @classmethod
    def wrap(cls, vm: VirtualMachine, handle: Handle) -> "Vector":
        return cls(vm, handle)

    def __len__(self) -> int:
        return self.handle["size"]

    def _data(self) -> Handle:
        return self.handle["data"]

    def _grow(self) -> None:
        old = self._data()
        new = self.vm.new_array(self.vm.classes.object_class, len(old) * 2)
        for i in range(self.handle["size"]):
            new[i] = old[i]
        self.handle["data"] = new

    def append(self, value: Optional[Handle]) -> None:
        size = self.handle["size"]
        if size >= len(self._data()):
            # Growing allocates; keep the (possibly otherwise-unrooted)
            # value alive across a potential collection.
            with self.vm.scope("Vector.append") as scope:
                if value is not None:
                    scope.register(value.address)
                self._grow()
        self._data()[size] = value
        self.handle["size"] = size + 1

    def get(self, index: int) -> Optional[Handle]:
        if not 0 <= index < self.handle["size"]:
            raise RuntimeFault(f"Vector index {index} out of range {self.handle['size']}")
        return self._data()[index]

    def set(self, index: int, value: Optional[Handle]) -> None:
        if not 0 <= index < self.handle["size"]:
            raise RuntimeFault(f"Vector index {index} out of range {self.handle['size']}")
        self._data()[index] = value

    def pop(self) -> Optional[Handle]:
        size = self.handle["size"]
        if size == 0:
            raise RuntimeFault("pop from an empty Vector")
        value = self._data()[size - 1]
        self._data()[size - 1] = None
        self.handle["size"] = size - 1
        return value

    def remove_at(self, index: int) -> Optional[Handle]:
        """Remove and return the element at ``index``, shifting the tail."""
        size = self.handle["size"]
        if not 0 <= index < size:
            raise RuntimeFault(f"Vector index {index} out of range {size}")
        data = self._data()
        value = data[index]
        for i in range(index, size - 1):
            data[i] = data[i + 1]
        data[size - 1] = None
        self.handle["size"] = size - 1
        return value

    def clear(self) -> None:
        data = self._data()
        for i in range(self.handle["size"]):
            data[i] = None
        self.handle["size"] = 0

    def __iter__(self) -> Iterator[Optional[Handle]]:
        for i in range(self.handle["size"]):
            yield self._data()[i]

    def index_of(self, value: Handle) -> int:
        for i in range(self.handle["size"]):
            element = self._data()[i]
            if element is not None and element == value:
                return i
        return -1


class IntVector:
    """A growable scalar int vector (posting lists, id sets)."""

    CLASS = "IntVector"

    def __init__(self, vm: VirtualMachine, handle: Handle):
        self.vm = vm
        self.handle = handle

    @classmethod
    def new(cls, vm: VirtualMachine, capacity: int = DEFAULT_CAPACITY) -> "IntVector":
        _ensure_class(vm, cls.CLASS, [("data", FieldKind.REF), ("size", FieldKind.INT)])
        with vm.scope("IntVector.new"):
            handle = vm.new(cls.CLASS)
            handle["data"] = vm.new_array(FieldKind.INT, max(1, capacity))
            handle["size"] = 0
        return cls(vm, handle)

    def __len__(self) -> int:
        return self.handle["size"]

    def append(self, value: int) -> None:
        size = self.handle["size"]
        data = self.handle["data"]
        if size >= len(data):
            new = self.vm.new_array(FieldKind.INT, len(data) * 2)
            for i in range(size):
                new[i] = data[i]
            self.handle["data"] = new
            data = new
        data[size] = value
        self.handle["size"] = size + 1

    def get(self, index: int) -> int:
        if not 0 <= index < self.handle["size"]:
            raise RuntimeFault(f"IntVector index {index} out of range")
        return self.handle["data"][index]

    def __iter__(self) -> Iterator[int]:
        data = self.handle["data"]
        for i in range(self.handle["size"]):
            yield data[i]


class HashTable:
    """A chained hash table mapping string keys to heap references.

    Heap shape: a ``HashTable`` object → ``Object[]`` bucket array →
    ``HashNode`` chains (``key: str``, ``value: REF``, ``next: REF``).
    """

    CLASS = "HashTable"
    NODE_CLASS = "HashNode"

    def __init__(self, vm: VirtualMachine, handle: Handle):
        self.vm = vm
        self.handle = handle

    @classmethod
    def new(cls, vm: VirtualMachine, buckets: int = 64) -> "HashTable":
        _ensure_class(vm, cls.CLASS, [("buckets", FieldKind.REF), ("size", FieldKind.INT)])
        _ensure_class(
            vm,
            cls.NODE_CLASS,
            [("key", FieldKind.STR), ("value", FieldKind.REF), ("next", FieldKind.REF)],
        )
        with vm.scope("HashTable.new"):
            handle = vm.new(cls.CLASS)
            handle["buckets"] = vm.new_array(vm.classes.object_class, max(1, buckets))
            handle["size"] = 0
        return cls(vm, handle)

    @staticmethod
    def _hash(key: str, nbuckets: int) -> int:
        h = 0
        for ch in key:
            h = (h * 31 + ord(ch)) & 0x7FFFFFFF
        return h % nbuckets

    def __len__(self) -> int:
        return self.handle["size"]

    def put(self, key: str, value: Optional[Handle]) -> bool:
        """Insert or update; returns True if the key was new."""
        buckets = self.handle["buckets"]
        idx = self._hash(key, len(buckets))
        node = buckets[idx]
        while node is not None:
            if node["key"] == key:
                node["value"] = value
                return False
            node = node["next"]
        # Allocating the node may collect; root the value across it.
        with self.vm.scope("HashTable.put") as scope:
            if value is not None:
                scope.register(value.address)
            node = self.vm.new(self.NODE_CLASS)
            node["key"] = key
            node["value"] = value
            node["next"] = buckets[idx]
            buckets[idx] = node
        self.handle["size"] = self.handle["size"] + 1
        return True

    def get(self, key: str) -> Optional[Handle]:
        buckets = self.handle["buckets"]
        node = buckets[self._hash(key, len(buckets))]
        while node is not None:
            if node["key"] == key:
                return node["value"]
            node = node["next"]
        return None

    def contains(self, key: str) -> bool:
        buckets = self.handle["buckets"]
        node = buckets[self._hash(key, len(buckets))]
        while node is not None:
            if node["key"] == key:
                return True
            node = node["next"]
        return False

    def remove(self, key: str) -> Optional[Handle]:
        buckets = self.handle["buckets"]
        idx = self._hash(key, len(buckets))
        node = buckets[idx]
        prev: Optional[Handle] = None
        while node is not None:
            if node["key"] == key:
                value = node["value"]
                if prev is None:
                    buckets[idx] = node["next"]
                else:
                    prev["next"] = node["next"]
                self.handle["size"] = self.handle["size"] - 1
                return value
            prev, node = node, node["next"]
        return None

    def keys(self) -> Iterator[str]:
        buckets = self.handle["buckets"]
        for i in range(len(buckets)):
            node = buckets[i]
            while node is not None:
                yield node["key"]
                node = node["next"]

    def values(self) -> Iterator[Optional[Handle]]:
        buckets = self.handle["buckets"]
        for i in range(len(buckets)):
            node = buckets[i]
            while node is not None:
                yield node["value"]
                node = node["next"]
