"""Service-level telemetry: per-tenant aggregation and serving SLOs.

Every tenant session fans its GC events and violations into one
:class:`ServiceMetrics` aggregator, which

* keeps per-tenant counters (sessions, collections, violations, drops)
  rendered as ``tenant``-labelled Prometheus families,
* forwards GC events into a shared :class:`~repro.monitor.timeseries.MonitorHub`
  so the PR-6 MMU/utilization timelines see cross-tenant load, and
* tracks two *service-level* objectives through the burn-rate machinery:
  **admission latency** (open-frame receipt to admission decision) and
  **violation-delivery lag** (violation enqueued to bytes written).

The serving SLOs reuse :class:`~repro.monitor.slo.BurnRateRule` directly
— its ``observe(good, seq, wall_time)`` state machine is event-source
agnostic; only :class:`~repro.monitor.slo.SloSet` couples it to GC
events, so the service feeds rules itself rather than going through a
hub-attached SloSet.

Both SLO observers take *monotonic span stamps* — a pair of
``time.perf_counter()`` readings bracketing the measured interval — and
compute the latency themselves.  Wall-clock time never enters the
measurement (an NTP step or DST jump cannot burn the error budget); the
``wall_time`` argument is carried on alerts for display only.  Each
observation may also carry the request's distributed ``trace_id``,
which the burn-rate rule attaches to firing alerts as the exemplar.
"""

from __future__ import annotations

import threading
from typing import Optional

from repro.monitor.slo import BurnRateRule, SloObjective
from repro.monitor.timeseries import MonitorHub
from repro.telemetry.events import GcEvent
from repro.telemetry.histogram import LogHistogram
from repro.telemetry.sinks import ExpositionWriter


class TenantStats:
    """Deterministic per-tenant counters (everything the label fans over)."""

    __slots__ = (
        "sessions_opened", "sessions_completed", "sessions_evicted",
        "sessions_killed", "collections", "violations",
        "frames_dropped", "frames_discarded",
    )

    def __init__(self) -> None:
        for field in self.__slots__:
            setattr(self, field, 0)


def _service_slos(
    admission_latency_slo_s: float, delivery_lag_slo_s: float
) -> tuple[BurnRateRule, BurnRateRule]:
    """The two serving objectives, budgeted at 1-in-100 (p99-shaped).

    The probes are placeholders — the service scores good/bad itself and
    calls ``rule.observe`` directly, so the probe is never consulted.
    """
    def _unused_probe(hub, event) -> bool:
        raise AssertionError("service SLO probes are fed directly, never probed")

    admission = BurnRateRule(
        SloObjective(
            name="admission-latency",
            description=(
                f"Session admission decided within "
                f"{admission_latency_slo_s * 1e3:.0f}ms of the open frame."
            ),
            budget=0.01,
            probe=_unused_probe,
            severity="page",
        ),
        long_window=200, short_window=40,
    )
    delivery = BurnRateRule(
        SloObjective(
            name="violation-delivery-lag",
            description=(
                f"Violation frames written to the client within "
                f"{delivery_lag_slo_s * 1e3:.0f}ms of detection."
            ),
            budget=0.01,
            probe=_unused_probe,
            severity="ticket",
        ),
        long_window=200, short_window=40,
    )
    return admission, delivery


class ServiceMetrics:
    """One lock, every cross-tenant aggregate."""

    def __init__(
        self,
        admission_latency_slo_s: float = 0.050,
        delivery_lag_slo_s: float = 0.200,
        hub: Optional[MonitorHub] = None,
    ):
        self.admission_latency_slo_s = admission_latency_slo_s
        self.delivery_lag_slo_s = delivery_lag_slo_s
        #: Shared monitor hub (``hub.vm`` stays None: it aggregates every
        #: tenant's events rather than attaching to one VM).
        self.hub = hub or MonitorHub(slos=None)
        self.tenants: dict[str, TenantStats] = {}
        self.admission_latency = LogHistogram(1e-6, 10.0)
        self.delivery_lag = LogHistogram(1e-6, 10.0)
        self.slo_admission, self.slo_delivery = _service_slos(
            admission_latency_slo_s, delivery_lag_slo_s
        )
        self.alerts: list = []
        self._slo_seq = 0
        self._lock = threading.Lock()

    def _tenant(self, tenant: str) -> TenantStats:
        # Caller holds the lock.
        stats = self.tenants.get(tenant)
        if stats is None:
            stats = self.tenants[tenant] = TenantStats()
        return stats

    # -- ingestion ----------------------------------------------------------------------

    def observe_event(self, tenant: str, event) -> None:
        """Fan one tenant VM's telemetry event into the shared hub."""
        with self._lock:
            if isinstance(event, GcEvent):
                self._tenant(tenant).collections += 1
            self.hub.emit(event)

    def observe_violation(self, tenant: str, violation) -> None:
        with self._lock:
            self._tenant(tenant).violations += 1

    def aggregate(self, tenant: str, item: tuple) -> None:
        """Session-sink callback: ``("event", ev)`` or ``("violation", v)``."""
        what, payload = item
        if what == "event":
            self.observe_event(tenant, payload)
        elif what == "violation":
            self.observe_violation(tenant, payload)

    def session_opened(self, tenant: str) -> None:
        with self._lock:
            self._tenant(tenant).sessions_opened += 1

    def session_evicted(self, tenant: str, session) -> None:
        with self._lock:
            stats = self._tenant(tenant)
            stats.sessions_evicted += 1
            if session.outcome == "completed":
                stats.sessions_completed += 1
            elif session.outcome == "killed":
                stats.sessions_killed += 1
            stats.frames_dropped += session.queue.dropped_frames
            stats.frames_discarded += session.discarded_frames

    def observe_admission_latency(
        self,
        received_mono: float,
        decided_mono: float,
        wall_time: float,
        trace_id: Optional[str] = None,
    ) -> None:
        """Score one open→decision interval from perf_counter stamps."""
        seconds = max(0.0, decided_mono - received_mono)
        with self._lock:
            self.admission_latency.record(seconds)
            self._slo_seq += 1
            alert = self.slo_admission.observe(
                seconds <= self.admission_latency_slo_s,
                self._slo_seq, wall_time, exemplar=trace_id,
            )
            if alert is not None:
                self.alerts.append(alert)

    def observe_delivery_lag(
        self,
        enqueued_mono: float,
        written_mono: float,
        wall_time: float,
        trace_id: Optional[str] = None,
    ) -> None:
        """Score one violation enqueue→write interval from perf_counter stamps."""
        seconds = max(0.0, written_mono - enqueued_mono)
        with self._lock:
            self.delivery_lag.record(seconds)
            self._slo_seq += 1
            alert = self.slo_delivery.observe(
                seconds <= self.delivery_lag_slo_s,
                self._slo_seq, wall_time, exemplar=trace_id,
            )
            if alert is not None:
                self.alerts.append(alert)

    # -- reporting ----------------------------------------------------------------------

    def slo_status(self) -> dict:
        with self._lock:
            rules = (self.slo_admission, self.slo_delivery)
            return {
                "schema": "repro-slo/1",
                "healthy": not any(r.firing for r in rules),
                "firing": [r.objective.name for r in rules if r.firing],
                "objectives": [
                    {
                        "name": r.objective.name,
                        "description": r.objective.description,
                        "observations": r.total,
                        "bad": r.bad,
                        "budget_remaining": r.budget_remaining(),
                        "firing": r.firing,
                        "exemplar": r.last_bad_exemplar if r.firing else None,
                    }
                    for r in rules
                ],
            }

    def render(self, admission, namespace: str = "repro") -> str:
        """The service's Prometheus families (``admission`` = the controller)."""
        snap = admission.snapshot()
        with self._lock:
            writer = ExpositionWriter(namespace)
            metric, sample = writer.metric, writer.sample

            full = metric("service_sessions_active", "gauge",
                          "Tenant sessions currently admitted or running.")
            sample(full, snap["active_sessions"])
            full = metric("service_sessions_peak", "gauge",
                          "High-water mark of concurrent tenant sessions.")
            sample(full, snap["peak_sessions"])
            full = metric("service_heap_committed_bytes", "gauge",
                          "Heap bytes committed against the admission budget.")
            sample(full, snap["committed_bytes"])
            full = metric("service_heap_budget_bytes", "gauge",
                          "Configured aggregate heap budget.")
            sample(full, snap["budget_bytes"])

            full = metric("service_admission_total", "counter",
                          "Admission decisions, by outcome.")
            sample(full, snap["admitted_total"], {"decision": "admitted"})
            for reason, count in sorted(snap["rejected_by_reason"].items()):
                sample(full, count, {"decision": f"rejected-{reason}"})

            full = metric("service_tenant_sessions_total", "counter",
                          "Sessions per tenant, by lifecycle outcome.")
            for tenant, stats in sorted(self.tenants.items()):
                sample(full, stats.sessions_opened,
                       {"tenant": tenant, "outcome": "opened"})
                sample(full, stats.sessions_completed,
                       {"tenant": tenant, "outcome": "completed"})
                sample(full, stats.sessions_killed,
                       {"tenant": tenant, "outcome": "killed"})
                sample(full, stats.sessions_evicted,
                       {"tenant": tenant, "outcome": "evicted"})
            full = metric("service_tenant_gc_collections_total", "counter",
                          "GC collections observed per tenant.")
            for tenant, stats in sorted(self.tenants.items()):
                sample(full, stats.collections, {"tenant": tenant})
            full = metric("service_tenant_violations_total", "counter",
                          "Assertion violations streamed per tenant.")
            for tenant, stats in sorted(self.tenants.items()):
                sample(full, stats.violations, {"tenant": tenant})
            full = metric("service_tenant_frames_dropped_total", "counter",
                          "Outbound frames shed per tenant (slow consumer + "
                          "severed connections).")
            for tenant, stats in sorted(self.tenants.items()):
                sample(full, stats.frames_dropped + stats.frames_discarded,
                       {"tenant": tenant})

            full = metric("service_admission_latency_seconds", "histogram",
                          "Open-frame receipt to admission decision.")
            writer.histogram(full, self.admission_latency)
            full = metric("service_delivery_lag_seconds", "histogram",
                          "Violation detection to client write.")
            writer.histogram(full, self.delivery_lag)

            full = metric("service_slo_firing", "gauge",
                          "1 while the serving objective's burn-rate alert fires.")
            for rule in (self.slo_admission, self.slo_delivery):
                sample(full, 1 if rule.firing else 0,
                       {"objective": rule.objective.name})

            return writer.render()
