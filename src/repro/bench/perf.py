"""Hot-path microbenchmarks and the eager-vs-lazy pause comparison.

``python -m repro bench`` drives four measurements and writes the
machine-readable record ``BENCH_perf.json`` (schema ``repro-bench-perf/1``):

* **trace** — the same prepared heap traced by the generic per-edge drain
  (``Tracer(specialized=False)``, the pre-overhaul loop kept for exactly
  this purpose) and by the fused specialized drain; reported as
  edges-traced/second and their ratio.
* **alloc** — allocation throughput with the run cache disabled (the
  pre-overhaul ``space.allocate`` path) and enabled; reported as
  allocations/second and the fast-path hit rate.
* **pauses** — full workloads (lusearch, pseudojbb) run twice, under
  ``sweep_mode="eager"`` and ``"lazy"``; reported as pause percentiles plus
  the deterministic work counters, which must be identical between modes
  (the lazy sweep changes *when* reclamation happens, never *what* is
  reclaimed).
* **abl-snapshot** — one workload run with piggybacked heap-snapshot
  capture on every collection vs off; reported as the GC-time ratio (the
  subsystem's ≤15% acceptance bar) with, again, identical work counters
  required.
* **abl-tracing** — the same shape for span tracing: one workload run with
  the in-pause span recorder on vs off; reported as the GC-time ratio with
  identical work counters required (spans observe phases, they must never
  change what the collector does).
* **abl-faults** — the fault-injection hook cost: one workload run with an
  *armed but empty-plan* :class:`~repro.faults.FaultInjector` attached vs
  without; the injector's standing cost is one allocation-counter
  increment plus a list check, so the ratio must sit at ~1.00 with
  bit-identical work counters and zero recovery activity.
* **abl-paranoid** — the paranoid wellformedness walker: one workload run
  with ``--paranoid`` per-GC heap/allocator walks vs without; the walk is
  allowed to be expensive but must be purely observational — bit-identical
  work counters and zero verification errors on a clean workload.
* **abl-dtrace** — the end-to-end tracing increment: one tenant run
  through a tracing-enabled server (trace context on every frame,
  request-lifecycle spans, merged multi-track export) vs a direct VM with
  tracing off; the counters must be bit-identical and the export must
  validate as a Chrome trace.
* **par-mark** — the zone-sharded parallel-mark scaling curve: one
  workload run sequentially and at 1/2/4/8 mark workers; reported as
  mark-phase edges/s, p99 pause, the deterministic zone-balance speedup
  bound, and a ``machine`` record (cores, GIL) so the curve can be
  normalized against available parallelism.  Work counters must be
  bit-identical across every leg.

Wall-clock numbers from a Python simulator are noisy; the counters are the
ground truth (``counters_match`` gates CI), the rates are the trend.
"""

from __future__ import annotations

import json
import platform
import random
import time
from typing import Optional

from repro.gc.stats import GcStats
from repro.gc.tracer import Tracer
from repro.heap import header as hdr
from repro.heap.object_model import FieldKind
from repro.runtime.vm import VirtualMachine
from repro.workloads.suite import build_suite

#: Workloads used for the eager-vs-lazy pause comparison.
PAUSE_WORKLOADS = ("lusearch", "pseudojbb")


# -- trace microbenchmark --------------------------------------------------------------


def _build_trace_heap(n_nodes: int) -> VirtualMachine:
    """A deterministic object graph: list spines, a tree, and ref arrays."""
    vm = VirtualMachine(
        heap_bytes=64 << 20, assertions=False, telemetry=False
    )
    node = vm.define_class(
        "BenchNode",
        [("next", FieldKind.REF), ("other", FieldKind.REF), ("value", FieldKind.INT)],
    )
    rng = random.Random(0xBEEF)
    addresses: list[int] = []
    prev = None
    for i in range(n_nodes):
        obj = vm.collector.allocate(node)
        obj.slots[2] = i
        addresses.append(obj.address)
        if prev is not None:
            prev.slots[0] = obj.address
        # Cross links make the repeat-encounter path non-trivial.
        obj.slots[1] = addresses[rng.randrange(len(addresses))]
        prev = obj
    array_cls = vm.array_class(node)
    for start in range(0, n_nodes, 64):
        chunk = addresses[start : start + 64]
        arr = vm.collector.allocate(array_cls, len(chunk))
        arr.slots[:] = chunk
        vm.statics.set_ref(f"bench-arr-{start}", arr.address)
    vm.statics.set_ref("bench-head", addresses[0])
    return vm


def _clear_marks(vm: VirtualMachine) -> None:
    clear_mask = ~(hdr.MARK_BIT | hdr.OWNED_BIT)
    for obj in vm.heap:
        obj.status &= clear_mask


class _PathDepthProbe:
    """A minimal engine exercising the cheap path API during a drain.

    Uses :meth:`Tracer.path_depth` and :meth:`Tracer.current_path_addresses`
    — the no-object-materialization variants — the way a sampling profiler
    would: every object visit reads the depth, an occasional visit takes the
    whole address chain.
    """

    def __init__(self, sample_every: int = 1024):
        self.max_depth = 0
        self.sampled_paths = 0
        self._visits = 0
        self._sample_every = sample_every

    def gc_begin(self, collector) -> None: ...
    def pre_mark(self, collector, tracer) -> None: ...
    def post_mark(self, collector, tracer) -> None: ...
    def gc_end(self, collector, freed) -> None: ...
    def purge(self, freed) -> None: ...
    def finalize(self, collector) -> None: ...
    def apply_forwarding(self, fwd) -> None: ...
    def on_repeat_encounter(self, obj, tracer, parent) -> None: ...

    def on_first_encounter(self, obj, tracer, parent) -> None:
        depth = tracer.path_depth()
        if depth > self.max_depth:
            self.max_depth = depth
        self._visits += 1
        if self._visits % self._sample_every == 0:
            chain = tracer.current_path_addresses(obj.address)
            self.sampled_paths += 1
            assert chain and chain[-1] == obj.address


def bench_trace(n_nodes: int = 20_000, trials: int = 5) -> dict:
    """Generic vs specialized drain over one prepared heap."""
    vm = _build_trace_heap(n_nodes)
    heap = vm.heap
    roots = list(vm.root_entries())
    results: dict[str, dict] = {}
    for variant, specialized in (("generic", False), ("specialized", True)):
        best = float("inf")
        stats = GcStats()
        for _ in range(trials):
            _clear_marks(vm)
            stats = GcStats()
            tracer = Tracer(heap, stats, None, track_paths=True, specialized=specialized)
            start = time.perf_counter()
            tracer.trace(roots)
            best = min(best, time.perf_counter() - start)
        results[variant] = {
            "objects_traced": stats.objects_traced,
            "edges_traced": stats.edges_traced,
            "path_entries_tagged": stats.path_entries_tagged,
            "best_seconds": best,
            "edges_per_second": stats.edges_traced / best if best else 0.0,
        }
    # One instrumented pass with the cheap path API (engine specialization).
    _clear_marks(vm)
    probe = _PathDepthProbe()
    tracer = Tracer(heap, GcStats(), probe, track_paths=True)
    tracer.trace(roots)
    _clear_marks(vm)
    generic, specialized = results["generic"], results["specialized"]
    return {
        "nodes": n_nodes,
        "trials": trials,
        "generic": generic,
        "specialized": specialized,
        "speedup": (
            specialized["edges_per_second"] / generic["edges_per_second"]
            if generic["edges_per_second"]
            else 0.0
        ),
        "counters_match": (
            generic["objects_traced"] == specialized["objects_traced"]
            and generic["edges_traced"] == specialized["edges_traced"]
            and generic["path_entries_tagged"] == specialized["path_entries_tagged"]
        ),
        "path_probe": {
            "max_depth": probe.max_depth,
            "sampled_paths": probe.sampled_paths,
        },
    }


# -- allocation microbenchmark ----------------------------------------------------------


def bench_alloc(n_allocs: int = 50_000, trials: int = 5) -> dict:
    """Allocation throughput with the run cache disabled vs enabled.

    Measured in the regime the cache targets: allocation out of recycled
    free-list cells (prefill, collect, then time allocations that pop the
    freed cells).  On a fresh bump frontier the cache is near-neutral — one
    refill per ``RUN_CACHE_CELLS`` bump carves instead of one carve per
    allocation.
    """
    results: dict[str, dict] = {}
    for variant in ("uncached", "cached"):
        best = float("inf")
        fast_hits = 0
        for _ in range(trials):
            vm = VirtualMachine(
                heap_bytes=64 << 20, assertions=False, telemetry=False
            )
            cls = vm.define_class(
                "AllocBench", [("a", FieldKind.INT), ("b", FieldKind.REF)]
            )
            collector = vm.collector
            if variant == "uncached":
                collector._alloc_cache = None  # pre-overhaul space.allocate path
            allocate = collector.allocate
            for _ in range(n_allocs):
                allocate(cls)  # unrooted prefill ...
            vm.gc("populate the free lists")  # ... freed: cells now recycled
            hits_before = collector.stats.alloc_fast_hits
            start = time.perf_counter()
            for _ in range(n_allocs):
                allocate(cls)
            best = min(best, time.perf_counter() - start)
            fast_hits = collector.stats.alloc_fast_hits - hits_before
        results[variant] = {
            "best_seconds": best,
            "allocs_per_second": n_allocs / best if best else 0.0,
            "alloc_fast_hits": fast_hits,
        }
    uncached, cached = results["uncached"], results["cached"]
    return {
        "allocations": n_allocs,
        "trials": trials,
        "uncached": uncached,
        "cached": cached,
        "speedup": (
            cached["allocs_per_second"] / uncached["allocs_per_second"]
            if uncached["allocs_per_second"]
            else 0.0
        ),
        "fast_hit_rate": cached["alloc_fast_hits"] / n_allocs if n_allocs else 0.0,
    }


# -- snapshot-capture ablation ----------------------------------------------------------


def bench_snapshot(workload: str = "pseudojbb", trials: int = 3) -> dict:
    """GC time with piggybacked snapshot capture on every collection vs off.

    The acceptance bar for the snapshot subsystem: capturing on *every*
    full collection (``every_n_gcs=1``, the worst case) must add no more
    than ~15% to GC time, and the deterministic work counters must be
    identical — capture observes marking, it must never change it.
    Serialization cost lands on the mutator (after the pause timer
    closes), so ``gc_seconds`` isolates exactly the in-pause row-append
    overhead.  Best-of-``trials`` per leg to shave scheduler noise.
    """
    import shutil
    import tempfile

    from repro.snapshot import SnapshotPolicy

    suite = build_suite()
    entry = suite[workload]
    results: dict[str, dict] = {}
    for variant in ("off", "capture"):
        best_gc = float("inf")
        stats = None
        snapshots = 0
        for _ in range(trials):
            vm = VirtualMachine(
                heap_bytes=entry.heap_bytes, assertions=False, telemetry=False
            )
            tmpdir = None
            if variant == "capture":
                tmpdir = tempfile.mkdtemp(prefix="repro-bench-snap-")
                policy = SnapshotPolicy(tmpdir, every_n_gcs=1).attach(vm)
            try:
                entry.run(vm)
                vm.collector.sweep_all()
                if vm.stats.gc_seconds < best_gc:
                    best_gc = vm.stats.gc_seconds
                    stats = vm.stats
                if variant == "capture":
                    snapshots = len(policy.captured)
            finally:
                if tmpdir is not None:
                    shutil.rmtree(tmpdir, ignore_errors=True)
        results[variant] = {
            "best_gc_seconds": best_gc,
            "collections": stats.collections,
            "snapshots_written": snapshots,
            "counters": {
                "objects_traced": stats.objects_traced,
                "edges_traced": stats.edges_traced,
                "objects_freed": stats.objects_freed,
                "bytes_freed": stats.bytes_freed,
            },
        }
    off, capture = results["off"], results["capture"]
    return {
        "workload": workload,
        "trials": trials,
        "off": off,
        "capture": capture,
        "gc_time_ratio": (
            capture["best_gc_seconds"] / off["best_gc_seconds"]
            if off["best_gc_seconds"]
            else 0.0
        ),
        "counters_match": off["counters"] == capture["counters"],
    }


# -- span-tracing ablation --------------------------------------------------------------


def bench_tracing(workload: str = "pseudojbb", trials: int = 3) -> dict:
    """GC time with in-pause span tracing on vs off.

    The tracing subsystem's acceptance bar: recording every phase span and
    counter must stay within a few percent of GC time, and the
    deterministic work counters must be identical — spans observe the
    phases, they must never change collector behaviour.  (With tracing
    *off* the hooks cost one attribute load per phase; that leg is the
    baseline here, so the ratio prices exactly the recorder.)
    Best-of-``trials`` per leg to shave scheduler noise.
    """
    from repro.tracing.spans import SpanTracer

    suite = build_suite()
    entry = suite[workload]
    results: dict[str, dict] = {}
    for variant in ("off", "trace"):
        best_gc = float("inf")
        stats = None
        spans = 0
        for _ in range(trials):
            vm = VirtualMachine(
                heap_bytes=entry.heap_bytes,
                assertions=False,
                telemetry=False,
                tracing=(variant == "trace"),
            )
            entry.run(vm)
            vm.collector.sweep_all()
            if vm.stats.gc_seconds < best_gc:
                best_gc = vm.stats.gc_seconds
                stats = vm.stats
            if variant == "trace":
                spans = vm.span_tracer.spans_ended
        results[variant] = {
            "best_gc_seconds": best_gc,
            "collections": stats.collections,
            "spans_recorded": spans,
            "counters": {
                "objects_traced": stats.objects_traced,
                "edges_traced": stats.edges_traced,
                "objects_freed": stats.objects_freed,
                "bytes_freed": stats.bytes_freed,
            },
        }
    off, trace = results["off"], results["trace"]
    return {
        "workload": workload,
        "trials": trials,
        "off": off,
        "trace": trace,
        "gc_time_ratio": (
            trace["best_gc_seconds"] / off["best_gc_seconds"]
            if off["best_gc_seconds"]
            else 0.0
        ),
        "counters_match": off["counters"] == trace["counters"],
    }


# -- fault-injection ablation -----------------------------------------------------------


def bench_faults(workload: str = "pseudojbb", trials: int = 3) -> dict:
    """GC + mutator time with an armed (empty-plan) fault injector vs off.

    The robustness layer's acceptance bar: with no faults scheduled, the
    injector's only standing cost is the allocation-count shim (one
    integer increment and an empty-list check per allocation) plus one
    inert GC observer.  The GC-time ratio must sit at ~1.00, every
    deterministic work counter must be bit-identical to the uninstrumented
    run, and the recovery counters must stay at zero — an armed injector
    that changes *anything* before its first fault fires is a bug.
    Best-of-``trials`` per leg to shave scheduler noise.
    """
    from repro.faults import FaultInjector, FaultPlan

    suite = build_suite()
    entry = suite[workload]
    results: dict[str, dict] = {}
    recovery_total = 0
    for variant in ("off", "armed"):
        best_gc = float("inf")
        stats = None
        for _ in range(trials):
            vm = VirtualMachine(
                heap_bytes=entry.heap_bytes, assertions=False, telemetry=False
            )
            injector = None
            if variant == "armed":
                injector = FaultInjector(vm, FaultPlan()).attach()
            entry.run(vm)
            vm.collector.sweep_all()
            if vm.stats.gc_seconds < best_gc:
                best_gc = vm.stats.gc_seconds
                stats = vm.stats
            if variant == "armed":
                recovery_total = vm.collector.recovery.total()
                injector.detach()
        results[variant] = {
            "best_gc_seconds": best_gc,
            "collections": stats.collections,
            "counters": {
                "objects_traced": stats.objects_traced,
                "edges_traced": stats.edges_traced,
                "objects_freed": stats.objects_freed,
                "bytes_freed": stats.bytes_freed,
            },
        }
    off, armed = results["off"], results["armed"]
    return {
        "workload": workload,
        "trials": trials,
        "off": off,
        "armed": armed,
        "gc_time_ratio": (
            armed["best_gc_seconds"] / off["best_gc_seconds"]
            if off["best_gc_seconds"]
            else 0.0
        ),
        "counters_match": off["counters"] == armed["counters"],
        "recovery_activity": recovery_total,
    }


# -- paranoid-walker ablation -----------------------------------------------------------


def bench_paranoid(workload: str = "pseudojbb", trials: int = 3) -> dict:
    """GC + mutator time with the paranoid wellformedness walker on vs off.

    The verification layer's acceptance bar: ``--paranoid`` walks the full
    heap and every allocator structure before and after each collection,
    so its GC-time ratio is allowed to be large — but it must be *purely
    observational*.  Every deterministic work counter must be bit-identical
    to the walker-free run (the walk count lives outside ``GcStats`` for
    exactly this reason), and a clean workload must complete with zero
    :class:`~repro.gc.verify.HeapVerificationError` raises.
    Best-of-``trials`` per leg to shave scheduler noise.
    """
    suite = build_suite()
    entry = suite[workload]
    results: dict[str, dict] = {}
    paranoid_walks = 0
    for variant in ("off", "paranoid"):
        best_wall = float("inf")
        stats = None
        for _ in range(trials):
            vm = VirtualMachine(
                heap_bytes=entry.heap_bytes,
                assertions=False,
                telemetry=False,
                paranoid=(variant == "paranoid"),
            )
            start = time.perf_counter()
            entry.run(vm)
            vm.collector.sweep_all()
            wall = time.perf_counter() - start
            if wall < best_wall:
                best_wall = wall
                stats = vm.stats
            if variant == "paranoid":
                paranoid_walks = vm.collector.paranoid_walks
        results[variant] = {
            # The walks run mutator-side (outside the gc_seconds pause
            # timer, like the sentinel), so wall time is the honest basis.
            "best_wall_seconds": best_wall,
            "collections": stats.collections,
            "counters": {
                "objects_traced": stats.objects_traced,
                "edges_traced": stats.edges_traced,
                "objects_freed": stats.objects_freed,
                "bytes_freed": stats.bytes_freed,
            },
        }
    off, paranoid = results["off"], results["paranoid"]
    return {
        "workload": workload,
        "trials": trials,
        "off": off,
        "paranoid": paranoid,
        "wall_time_ratio": (
            paranoid["best_wall_seconds"] / off["best_wall_seconds"]
            if off["best_wall_seconds"]
            else 0.0
        ),
        "counters_match": off["counters"] == paranoid["counters"],
        "paranoid_walks": paranoid_walks,
    }


# -- continuous-monitoring ablation -----------------------------------------------------


def bench_monitor(workload: str = "pseudojbb", trials: int = 3) -> dict:
    """GC time with the continuous-monitoring hub armed vs telemetry alone.

    The monitoring layer's acceptance bar: with a hub and the full stock
    SLO catalog attached, GC time must stay within ~5% of the same VM
    running telemetry without a monitor, and every deterministic work
    counter must be bit-identical — the hub is a sink, it observes
    collections and must never change them.  Both legs run telemetry so
    the ratio prices exactly the monitor increment (time-series appends,
    MMU evaluation, SLO probes per collection), not telemetry itself.
    Best-of-``trials`` per leg to shave scheduler noise.
    """
    from repro.monitor import MonitorHub, default_slos

    suite = build_suite()
    entry = suite[workload]
    results: dict[str, dict] = {}
    alerts_seen = 0
    for variant in ("off", "armed"):
        best_gc = float("inf")
        stats = None
        for _ in range(trials):
            vm = VirtualMachine(
                heap_bytes=entry.heap_bytes, assertions=False, telemetry=True
            )
            hub = None
            if variant == "armed":
                hub = MonitorHub(default_slos()).attach(vm)
            entry.run(vm)
            vm.collector.sweep_all()
            if vm.stats.gc_seconds < best_gc:
                best_gc = vm.stats.gc_seconds
                stats = vm.stats
            if variant == "armed":
                alerts_seen = len(hub.alerts)
        results[variant] = {
            "best_gc_seconds": best_gc,
            "collections": stats.collections,
            "counters": {
                "objects_traced": stats.objects_traced,
                "edges_traced": stats.edges_traced,
                "objects_freed": stats.objects_freed,
                "bytes_freed": stats.bytes_freed,
            },
        }
    off, armed = results["off"], results["armed"]
    return {
        "workload": workload,
        "trials": trials,
        "off": off,
        "armed": armed,
        "gc_time_ratio": (
            armed["best_gc_seconds"] / off["best_gc_seconds"]
            if off["best_gc_seconds"]
            else 0.0
        ),
        "counters_match": off["counters"] == armed["counters"],
        "alerts_seen": alerts_seen,
    }


def bench_service(workload: str = "pseudojbb", trials: int = 3) -> dict:
    """One tenant through the session server vs the same VM run directly.

    The serving layer's acceptance bar: a workload submitted over the
    ``repro-wire/1`` protocol must produce **bit-identical** GC/assertion
    counters and violation sets to a direct VM run with the same
    configuration — the server adds transport and streaming, never GC
    work.  Both legs use the hardened tenant configuration (OOM ladder,
    2× growth ceiling) so the comparison prices exactly the service
    increment: session bookkeeping, the telemetry fan-in sink, and the
    violation-streaming reaction handler.  Best-of-``trials`` per leg.
    """
    from repro.service import AssertionService, ServiceClient, ServiceConfig
    from repro.service.session import resolve_workload

    heap_bytes, runner = resolve_workload(workload, asserted=True)

    def direct_leg() -> dict:
        best = None
        for _ in range(trials):
            vm = VirtualMachine(
                heap_bytes=heap_bytes,
                assertions=True,
                telemetry=True,
                hardened=True,
                max_heap_bytes=heap_bytes * 2,
            )
            runner(vm)
            vm.collector.sweep_all()
            if best is None or vm.stats.gc_seconds < best["best_gc_seconds"]:
                best = {
                    "best_gc_seconds": vm.stats.gc_seconds,
                    "collections": vm.stats.collections,
                    "counters": vm.stats.snapshot()["counters"],
                    "violations": len(vm.violation_lines()),
                    "violation_lines": vm.violation_lines(),
                }
        return best

    def server_leg() -> dict:
        best = None
        with AssertionService(ServiceConfig(http_port=None)) as service:
            for _ in range(trials):
                with ServiceClient("127.0.0.1", service.port) as client:
                    client.hello()
                    opened = client.open("bench", workload)
                    streamed: list = []
                    result = client.submit(opened["session"], collect=streamed)
                    client.close_session(opened["session"], collect=streamed)
                if best is None or result["gc_seconds"] < best["best_gc_seconds"]:
                    best = {
                        "best_gc_seconds": result["gc_seconds"],
                        "collections": result["counters"]["collections"],
                        "counters": result["counters"],
                        "violations": len(result["violations"]),
                        "violation_lines": result["violations"],
                        "violation_frames_streamed": sum(
                            1 for f in streamed if f.get("type") == "violation"
                        ),
                    }
        return best

    direct = direct_leg()
    served = server_leg()
    counters_match = (
        direct["counters"] == served["counters"]
        and direct["violation_lines"] == served["violation_lines"]
    )
    # The line sets are compared, then dropped from the payload: hundreds
    # of rendered reports would dwarf the record.
    direct.pop("violation_lines")
    served.pop("violation_lines")
    return {
        "workload": workload,
        "trials": trials,
        "direct": direct,
        "served": served,
        "gc_time_ratio": (
            served["best_gc_seconds"] / direct["best_gc_seconds"]
            if direct["best_gc_seconds"]
            else 0.0
        ),
        "counters_match": counters_match,
    }


def bench_dtrace(workload: str = "pseudojbb", trials: int = 3) -> dict:
    """One tenant through the server with end-to-end tracing on vs direct.

    The distributed-tracing acceptance bar: a *traced* served run — trace
    context stamped on every wire frame, request-lifecycle spans recorded
    around admission and execution, the tenant VM's span stream
    re-parented under the request — must stay **bit-identical** in
    GC/assertion counters and violation lines to a direct VM run with
    tracing off entirely.  The merged multi-track export must also pass
    :func:`~repro.tracing.export.validate_chrome_trace`; a malformed
    artifact fails the cell even when the counters agree.
    """
    from repro.service import AssertionService, ServiceClient, ServiceConfig
    from repro.service.session import resolve_workload
    from repro.tracing.distributed import TraceContext, request_rows
    from repro.tracing.export import validate_chrome_trace

    heap_bytes, runner = resolve_workload(workload, asserted=True)

    def direct_leg() -> dict:
        best = None
        for _ in range(trials):
            vm = VirtualMachine(
                heap_bytes=heap_bytes,
                assertions=True,
                telemetry=True,
                hardened=True,
                max_heap_bytes=heap_bytes * 2,
            )
            runner(vm)
            vm.collector.sweep_all()
            if best is None or vm.stats.gc_seconds < best["best_gc_seconds"]:
                best = {
                    "best_gc_seconds": vm.stats.gc_seconds,
                    "counters": vm.stats.snapshot()["counters"],
                    "violation_lines": vm.violation_lines(),
                }
        return best

    def traced_leg() -> tuple[dict, dict, list]:
        best = None
        with AssertionService(ServiceConfig(http_port=None, tracing=True)) as service:
            for _ in range(trials):
                ctx = TraceContext.new()
                with ServiceClient("127.0.0.1", service.port, trace=ctx) as client:
                    client.hello()
                    opened = client.open("bench", workload)
                    result = client.submit(opened["session"])
                    client.close_session(opened["session"])
                if best is None or result["gc_seconds"] < best["best_gc_seconds"]:
                    best = {
                        "best_gc_seconds": result["gc_seconds"],
                        "counters": result["counters"],
                        "violation_lines": result["violations"],
                        "trace_id": opened["trace_id"],
                    }
            payload = service.merged_trace_payload()
            rows = request_rows(service.tracer)
        return best, payload, rows

    direct = direct_leg()
    traced, payload, rows = traced_leg()
    counters_match = (
        direct["counters"] == traced["counters"]
        and direct["violation_lines"] == traced["violation_lines"]
    )
    direct.pop("violation_lines")
    traced.pop("violation_lines")
    return {
        "workload": workload,
        "trials": trials,
        "direct": direct,
        "traced": traced,
        "gc_time_ratio": (
            traced["best_gc_seconds"] / direct["best_gc_seconds"]
            if direct["best_gc_seconds"]
            else 0.0
        ),
        "counters_match": counters_match,
        "trace_valid": validate_chrome_trace(payload) == [],
        "trace_events": len(payload["traceEvents"]),
        "request_spans": len(rows),
        "max_delivery_lag_ms": max(
            [row["max_delivery_lag_s"] * 1e3 for row in rows] or [0.0]
        ),
    }


def bench_loadgen(sessions: int = 50, rate: float = 200.0, seed: int = 0) -> dict:
    """The serving top line: open-loop load against a self-hosted service.

    Poisson arrivals at ``rate`` sessions/s over the default workload
    mix; the committed record carries completion counts, admission peaks,
    and the client-observed latency percentiles (open latency, session
    duration) that make serving regressions visible in review diffs.
    """
    from repro.service import LoadgenConfig, run_loadgen

    report = run_loadgen(LoadgenConfig(sessions=sessions, rate=rate, seed=seed))
    payload = report.as_dict()
    payload["ok"] = report.ok
    return payload


# -- parallel-mark scaling curve --------------------------------------------------------


def bench_par_mark(workload: str = "lusearch", worker_counts=(1, 2, 4, 8)) -> dict:
    """Zone-sharded parallel marking: worker-count scaling curve vs sequential.

    One sequential leg (``gc_workers`` unset — the unsharded space and the
    classic fused drain) plus one leg per worker count on the zoned heap.
    Acceptance bar: every leg's deterministic work counters are bit-identical
    to the sequential run — zone sharding changes *where* objects live and
    *who* traces them, never what is traced or freed.

    Two scaling numbers are recorded per leg:

    * ``mark_edges_per_second`` — measured wall-clock rate over the mark
      phase.  On a GIL build this cannot exceed the sequential rate (the
      interpreter serializes the drains); the ``machine`` record (cores,
      GIL) is committed alongside so readers normalize expectations.
    * ``zone_balance_speedup`` — the deterministic bound: per-zone edge
      loads LPT-packed onto ``workers`` bins, total work over the busiest
      bin.  A pure function of the heap partition — bit-identical across
      runs and machines — so CI can gate the scaling curve without trusting
      wall clocks.
    """
    import os
    import sys

    suite = build_suite()
    entry = suite[workload]

    def run_leg(gc_workers: Optional[int]) -> tuple[dict, object]:
        vm = VirtualMachine(
            heap_bytes=entry.heap_bytes,
            assertions=False,
            gc_workers=gc_workers,
        )
        entry.run(vm)
        vm.collector.sweep_all()
        stats = vm.stats
        hist = vm.telemetry.pause_hist
        mark_s = stats.mark_seconds
        leg = {
            "collections": stats.collections,
            "mark_seconds": mark_s,
            "mark_edges_per_second": stats.edges_traced / mark_s if mark_s else 0.0,
            "pause_p99_ms": hist.percentile(99) * 1e3 if hist.count else 0.0,
            "counters": {
                "objects_traced": stats.objects_traced,
                "edges_traced": stats.edges_traced,
                "objects_freed": stats.objects_freed,
                "bytes_freed": stats.bytes_freed,
            },
        }
        return leg, vm.collector.last_parallel_mark

    sequential, _ = run_leg(None)
    base_rate = sequential["mark_edges_per_second"]
    curve: dict[str, dict] = {}
    matches = []
    for workers in worker_counts:
        leg, report = run_leg(workers)
        leg["workers"] = workers
        leg["zones"] = report.zones
        leg["zone_edges"] = list(report.zone_edges)
        leg["zone_balance_speedup"] = report.zone_balance_speedup()
        leg["packets_sent"] = report.packets_sent
        leg["edges_routed"] = report.edges_routed
        leg["measured_speedup"] = (
            leg["mark_edges_per_second"] / base_rate if base_rate else 0.0
        )
        matches.append(leg["counters"] == sequential["counters"])
        curve[str(workers)] = leg
    return {
        "workload": workload,
        "machine": {
            "cores": os.cpu_count(),
            "gil": bool(getattr(sys, "_is_gil_enabled", lambda: True)()),
        },
        "sequential": sequential,
        "curve": curve,
        "counters_match": all(matches),
    }


# -- eager vs lazy pause comparison -----------------------------------------------------


def _run_pause_leg(entry, sweep_mode: str) -> dict:
    vm = VirtualMachine(
        heap_bytes=entry.heap_bytes,
        assertions=False,
        sweep_mode=sweep_mode,
    )
    entry.run(vm)
    # Lazy mode may still owe sweep work; finish it so the work counters
    # compare like-for-like (same reclaimed set, different timing).
    vm.collector.sweep_all()
    stats = vm.stats
    hist = vm.telemetry.pause_hist
    full_events = [e for e in vm.telemetry.events if e.kind == "full"]
    return {
        "sweep_mode": sweep_mode,
        "collections": stats.collections,
        "full_collections": stats.full_collections,
        "pause_p50_ms": hist.percentile(50) * 1e3 if hist.count else 0.0,
        "pause_p99_ms": hist.percentile(99) * 1e3 if hist.count else 0.0,
        "pause_max_ms": hist.max_value * 1e3 if hist.count else 0.0,
        "mean_sweep_debt_chunks": (
            sum(e.sweep_debt_chunks for e in full_events) / len(full_events)
            if full_events
            else 0.0
        ),
        "gc_seconds": stats.gc_seconds,
        "lazy_sweep_seconds": stats.lazy_sweep_seconds,
        "counters": {
            "objects_traced": stats.objects_traced,
            "edges_traced": stats.edges_traced,
            "objects_freed": stats.objects_freed,
            "objects_swept": stats.objects_swept,
            "bytes_freed": stats.bytes_freed,
        },
    }


def bench_pauses(workloads=PAUSE_WORKLOADS) -> dict:
    """Run each workload under both sweep modes; compare pauses and work."""
    suite = build_suite()
    out: dict[str, dict] = {}
    for name in workloads:
        entry = suite[name]
        eager = _run_pause_leg(entry, "eager")
        lazy = _run_pause_leg(entry, "lazy")
        drift_keys = ("objects_traced", "edges_traced", "objects_freed")
        out[name] = {
            "eager": eager,
            "lazy": lazy,
            "pause_p99_ratio": (
                lazy["pause_p99_ms"] / eager["pause_p99_ms"]
                if eager["pause_p99_ms"]
                else 0.0
            ),
            "counters_match": all(
                eager["counters"][k] == lazy["counters"][k] for k in drift_keys
            ),
        }
    return out


# -- payload / CLI ---------------------------------------------------------------------


def perf_payload(quick: bool = False) -> dict:
    """Run all three benchmarks; machine-readable with provenance."""
    if quick:
        trace = bench_trace(n_nodes=4_000, trials=3)
        alloc = bench_alloc(n_allocs=10_000, trials=2)
        pauses = bench_pauses(("pseudojbb",))
        snapshot = bench_snapshot(trials=2)
        tracing = bench_tracing(trials=2)
        faults = bench_faults(trials=2)
        paranoid = bench_paranoid(trials=2)
        monitor = bench_monitor(trials=2)
        par_mark = bench_par_mark(worker_counts=(1, 2, 4, 8))
        service = bench_service(trials=2)
        dtrace = bench_dtrace(trials=2)
        loadgen = bench_loadgen(sessions=12)
    else:
        trace = bench_trace()
        alloc = bench_alloc()
        pauses = bench_pauses()
        snapshot = bench_snapshot()
        tracing = bench_tracing()
        faults = bench_faults()
        paranoid = bench_paranoid()
        monitor = bench_monitor()
        par_mark = bench_par_mark()
        service = bench_service()
        dtrace = bench_dtrace()
        loadgen = bench_loadgen()
    counters_match = (
        trace["counters_match"]
        and snapshot["counters_match"]
        and tracing["counters_match"]
        and faults["counters_match"]
        and paranoid["counters_match"]
        and monitor["counters_match"]
        and par_mark["counters_match"]
        and service["counters_match"]
        and dtrace["counters_match"]
        and dtrace["trace_valid"]
        and all(row["counters_match"] for row in pauses.values())
    )
    return {
        "schema": "repro-bench-perf/1",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform.python_version(),
        "quick": quick,
        "trace": trace,
        "alloc": alloc,
        "pauses": pauses,
        "abl-snapshot": snapshot,
        "abl-tracing": tracing,
        "abl-faults": faults,
        "abl-paranoid": paranoid,
        "abl-monitor": monitor,
        "abl-service": service,
        "abl-dtrace": dtrace,
        "par-mark": par_mark,
        "service-loadgen": loadgen,
        "counters_match": counters_match,
    }


def dump_perf(payload: dict, path: str = "BENCH_perf.json") -> str:
    """Write :func:`perf_payload` as JSON; returns the path written."""
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def render_perf(payload: dict) -> str:
    """Human-readable summary of a perf payload."""
    trace, alloc = payload["trace"], payload["alloc"]
    lines = [
        "trace microbench (generic -> specialized drain):",
        f"  edges/s: {trace['generic']['edges_per_second']:,.0f} -> "
        f"{trace['specialized']['edges_per_second']:,.0f} "
        f"({trace['speedup']:.2f}x, {trace['generic']['edges_traced']} edges, "
        f"counters {'match' if trace['counters_match'] else 'DRIFT'})",
        f"  path probe: max depth {trace['path_probe']['max_depth']}, "
        f"{trace['path_probe']['sampled_paths']} cheap paths sampled",
        "alloc microbench (uncached -> run cache):",
        f"  allocs/s: {alloc['uncached']['allocs_per_second']:,.0f} -> "
        f"{alloc['cached']['allocs_per_second']:,.0f} "
        f"({alloc['speedup']:.2f}x, fast-hit rate {alloc['fast_hit_rate']:.1%})",
        "pause comparison (eager vs lazy sweep):",
    ]
    for name, row in sorted(payload["pauses"].items()):
        eager, lazy = row["eager"], row["lazy"]
        lines.append(
            f"  {name:10} p99 {eager['pause_p99_ms']:.3f}ms -> "
            f"{lazy['pause_p99_ms']:.3f}ms "
            f"({row['pause_p99_ratio']:.2f}x), "
            f"{eager['full_collections']} full GCs, "
            f"mean debt {lazy['mean_sweep_debt_chunks']:.1f} chunks, "
            f"counters {'match' if row['counters_match'] else 'DRIFT'}"
        )
    snap = payload.get("abl-snapshot")
    if snap is not None:
        lines.append("snapshot-capture ablation (off -> every-GC capture):")
        lines.append(
            f"  {snap['workload']:10} gc time "
            f"{snap['off']['best_gc_seconds'] * 1e3:.1f}ms -> "
            f"{snap['capture']['best_gc_seconds'] * 1e3:.1f}ms "
            f"({snap['gc_time_ratio']:.2f}x), "
            f"{snap['capture']['snapshots_written']} snapshots, "
            f"counters {'match' if snap['counters_match'] else 'DRIFT'}"
        )
    spans = payload.get("abl-tracing")
    if spans is not None:
        lines.append("span-tracing ablation (off -> every-phase spans):")
        lines.append(
            f"  {spans['workload']:10} gc time "
            f"{spans['off']['best_gc_seconds'] * 1e3:.1f}ms -> "
            f"{spans['trace']['best_gc_seconds'] * 1e3:.1f}ms "
            f"({spans['gc_time_ratio']:.2f}x), "
            f"{spans['trace']['spans_recorded']} spans, "
            f"counters {'match' if spans['counters_match'] else 'DRIFT'}"
        )
    faults = payload.get("abl-faults")
    if faults is not None:
        lines.append("fault-injection ablation (off -> armed empty-plan injector):")
        lines.append(
            f"  {faults['workload']:10} gc time "
            f"{faults['off']['best_gc_seconds'] * 1e3:.1f}ms -> "
            f"{faults['armed']['best_gc_seconds'] * 1e3:.1f}ms "
            f"({faults['gc_time_ratio']:.2f}x), "
            f"recovery activity {faults['recovery_activity']}, "
            f"counters {'match' if faults['counters_match'] else 'DRIFT'}"
        )
    paranoid = payload.get("abl-paranoid")
    if paranoid is not None:
        lines.append("paranoid-walker ablation (off -> per-GC wellformedness walks):")
        lines.append(
            f"  {paranoid['workload']:10} wall time "
            f"{paranoid['off']['best_wall_seconds'] * 1e3:.1f}ms -> "
            f"{paranoid['paranoid']['best_wall_seconds'] * 1e3:.1f}ms "
            f"({paranoid['wall_time_ratio']:.2f}x), "
            f"{paranoid['paranoid_walks']} walks, "
            f"counters {'match' if paranoid['counters_match'] else 'DRIFT'}"
        )
    monitor = payload.get("abl-monitor")
    if monitor is not None:
        lines.append("monitoring ablation (telemetry-only -> hub + SLO catalog):")
        lines.append(
            f"  {monitor['workload']:10} gc time "
            f"{monitor['off']['best_gc_seconds'] * 1e3:.1f}ms -> "
            f"{monitor['armed']['best_gc_seconds'] * 1e3:.1f}ms "
            f"({monitor['gc_time_ratio']:.2f}x), "
            f"{monitor['alerts_seen']} alert transitions, "
            f"counters {'match' if monitor['counters_match'] else 'DRIFT'}"
        )
    service = payload.get("abl-service")
    if service is not None:
        lines.append("service ablation (direct VM -> through the session server):")
        lines.append(
            f"  {service['workload']:10} gc time "
            f"{service['direct']['best_gc_seconds'] * 1e3:.1f}ms -> "
            f"{service['served']['best_gc_seconds'] * 1e3:.1f}ms "
            f"({service['gc_time_ratio']:.2f}x), "
            f"{service['served']['violations']} violations "
            f"({service['served'].get('violation_frames_streamed', 0)} streamed), "
            f"counters {'match' if service['counters_match'] else 'DRIFT'}"
        )
    dtrace = payload.get("abl-dtrace")
    if dtrace is not None:
        lines.append("distributed-tracing ablation (direct VM -> traced server):")
        lines.append(
            f"  {dtrace['workload']:10} gc time "
            f"{dtrace['direct']['best_gc_seconds'] * 1e3:.1f}ms -> "
            f"{dtrace['traced']['best_gc_seconds'] * 1e3:.1f}ms "
            f"({dtrace['gc_time_ratio']:.2f}x), "
            f"{dtrace['trace_events']} events / {dtrace['request_spans']} request "
            f"spans exported ({'valid' if dtrace['trace_valid'] else 'INVALID'}), "
            f"max delivery lag {dtrace['max_delivery_lag_ms']:.2f}ms, "
            f"counters {'match' if dtrace['counters_match'] else 'DRIFT'}"
        )
    loadgen = payload.get("service-loadgen")
    if loadgen is not None:
        lines.append("service load generator (open-loop Poisson arrivals):")
        lines.append(
            f"  {loadgen['completed']}/{loadgen['sessions']} sessions completed, "
            f"{loadgen['rejected']} rejected, peak {loadgen['peak_concurrent']} "
            f"concurrent in {loadgen['wall_s']:.2f}s"
        )
        lines.append(
            f"  open p50/p99 {loadgen['open_latency_s']['p50'] * 1e3:.2f}/"
            f"{loadgen['open_latency_s']['p99'] * 1e3:.2f}ms, "
            f"session p50/p99 {loadgen['session_duration_s']['p50'] * 1e3:.2f}/"
            f"{loadgen['session_duration_s']['p99'] * 1e3:.2f}ms, "
            f"{loadgen['violation_frames']} violation frames streamed"
        )
    par = payload.get("par-mark")
    if par is not None:
        machine = par["machine"]
        lines.append(
            f"parallel-mark scaling ({par['workload']}, "
            f"{machine['cores']} cores, gil={'on' if machine['gil'] else 'off'}):"
        )
        seq = par["sequential"]
        lines.append(
            f"  sequential: {seq['mark_edges_per_second']:,.0f} edges/s, "
            f"p99 {seq['pause_p99_ms']:.3f}ms"
        )
        for workers, leg in sorted(par["curve"].items(), key=lambda kv: int(kv[0])):
            lines.append(
                f"  workers={workers}: {leg['mark_edges_per_second']:,.0f} edges/s "
                f"({leg['measured_speedup']:.2f}x measured, "
                f"{leg['zone_balance_speedup']:.2f}x zone-balance bound), "
                f"p99 {leg['pause_p99_ms']:.3f}ms, "
                f"{leg['edges_routed']} edges routed in {leg['packets_sent']} packets"
            )
        lines.append(
            "  counters " + ("match" if par["counters_match"] else "DRIFT")
        )
    lines.append(
        "work counters identical across modes: "
        + ("yes" if payload["counters_match"] else "NO — investigate")
    )
    return "\n".join(lines)
